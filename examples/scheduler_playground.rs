//! Playground for the `nds-sched` cycle-stealing scheduler, built
//! through the unified `Sim` builder.
//!
//! Run with `cargo run --example scheduler_playground`.
//!
//! Three vignettes:
//! 1. the degenerate configuration that reproduces the paper's model,
//! 2. an eviction-policy shootout on a busy pool,
//! 3. a starved pool rescued by raising the admission threshold.

use nds::cluster::{JobRunner, OwnerWorkload};
use nds::core::sim::{closed, single_job, Backend, Sim};
use nds::sched::{EvictionPolicy, JobSpec, PlacementKind, QueueDiscipline};

fn main() {
    let owner = OwnerWorkload::continuous_exponential(10.0, 0.10).unwrap();

    // 1. Degenerate configuration: full-size pool, one task per
    //    machine, suspend-resume => the paper's model, bit-for-bit.
    //    Force the scheduler engine (Backend::Auto would already take
    //    the JobRunner fast path) to show the equivalence for real.
    let w = 8;
    let demand = 300.0;
    let seed = 0x5EED;
    let report = Sim::pool(w)
        .owners(&owner)
        .workload(single_job(w, demand))
        .seed(seed)
        .backend(Backend::Sched)
        .run()
        .unwrap();
    let baseline = JobRunner::new(seed).run_continuous_job(&owner, demand, w, 0);
    println!("1) degenerate config vs JobRunner");
    println!("   scheduler makespan : {:.6}", report.mean_makespan());
    println!("   JobRunner job time : {:.6}", baseline.job_time());
    println!(
        "   difference         : {:.2e}\n",
        (report.mean_makespan() - baseline.job_time()).abs()
    );

    // 2. Eviction shootout: 4 jobs x 16 tasks on 16 stations at 20%
    //    owner utilization.
    println!("2) eviction policies on a busy pool (W=16, U=20%)");
    let busy = OwnerWorkload::continuous_exponential(10.0, 0.20).unwrap();
    for eviction in [
        EvictionPolicy::SuspendResume,
        EvictionPolicy::Restart,
        EvictionPolicy::Migrate { overhead: 5.0 },
        EvictionPolicy::Checkpoint {
            interval: 30.0,
            overhead: 1.0,
        },
    ] {
        let report = Sim::pool(16)
            .owners(&busy)
            .workload(closed(JobSpec::stream(4, 16, 120.0, 50.0)))
            .eviction(eviction)
            .placement(PlacementKind::LeastLoaded)
            .discipline(QueueDiscipline::SjfBackfill)
            .calibration(10_000.0)
            .run()
            .unwrap();
        let m = &report.runs[0];
        println!(
            "   {:<22} makespan {:>7.0}  goodput {:>5.1}%  wasted {:>6.0}  evictions {:>4}",
            eviction.label(),
            m.makespan,
            100.0 * m.goodput_fraction(),
            m.wasted,
            m.evictions
        );
        assert!(report.is_consistent());
    }

    // 3. Admission threshold: a mixed pool where hot machines are
    //    fenced out, then admitted.
    println!("\n3) admission threshold on a mixed pool (8 cool + 8 hot machines)");
    let cool = OwnerWorkload::continuous_exponential(10.0, 0.03).unwrap();
    let hot = OwnerWorkload::continuous_exponential(10.0, 0.45).unwrap();
    let owners: Vec<OwnerWorkload> = (0..16)
        .map(|i| if i < 8 { cool.clone() } else { hot.clone() })
        .collect();
    for threshold in [0.2, 1.0] {
        let report = Sim::pool(16)
            .owners(owners.clone())
            .workload(single_job(32, 60.0))
            .eviction(EvictionPolicy::Restart)
            .admission_threshold(threshold)
            .calibration(20_000.0)
            .run()
            .unwrap();
        let m = &report.runs[0];
        println!(
            "   threshold {:>4}: makespan {:>7.0}  wasted {:>6.0}  restarts {:>4}",
            threshold, m.makespan, m.wasted, m.restarts
        );
    }
    println!("   (fencing hot machines trades pool size for fewer lost executions)");
}
