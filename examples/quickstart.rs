//! Quickstart: is *your* cluster worth stealing cycles from?
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a [`FeasibilityAnalyzer`] for a concrete pool + job, prints
//! the paper's metrics, the feasibility verdict, and the design
//! guidance (required task ratio, maximum useful pool size).

use nds::core::prelude::*;

fn main() {
    // A pool of 60 workstations whose owners keep them 10% busy with
    // ~10-second bursts, and a job that needs 2 dedicated CPU-hours.
    let analyzer = FeasibilityAnalyzer::builder()
        .workstations(60)
        .owner_demand(10.0)
        .owner_utilization(0.10)
        .job_demand(2.0 * 3600.0)
        .build()
        .expect("valid configuration");

    let a = analyzer.assess().expect("assessment succeeds");
    let m = &a.metrics;

    println!("== configuration ==");
    println!("workstations        : 60");
    println!("owner utilization   : {:.0}%", m.owner_utilization * 100.0);
    println!("job demand          : 7200 s (per-task {} s)", 7200 / 60);
    println!("task ratio (T/O)    : {:.1}", m.task_ratio);
    println!();
    println!("== predicted performance (paper eqs. 3-8) ==");
    println!("E[task time]        : {:.1} s", m.expected_task_time);
    println!("E[job time]         : {:.1} s", m.expected_job_time);
    println!("p95 job time        : {:.1} s", a.job_time_p95);
    println!("worst case          : {:.1} s", a.job_time_worst_case);
    println!("speedup             : {:.1} (of 60 possible)", m.speedup);
    println!("weighted speedup    : {:.1}", m.weighted_speedup);
    println!("efficiency          : {:.1}%", m.efficiency * 100.0);
    println!(
        "weighted efficiency : {:.1}%",
        m.weighted_efficiency * 100.0
    );
    println!();
    println!("== verdict ==");
    println!(
        "feasible at the paper's 80% bar? {}",
        if a.feasible { "YES" } else { "NO" }
    );
    println!(
        "task ratio needed on this pool : {:.1} (you have {:.1})",
        a.required_task_ratio, m.task_ratio
    );
    match a.max_useful_workstations {
        Some(w) => println!("largest useful pool for this job: {w} workstations"),
        None => println!("this job cannot meet the target on any pool size"),
    }
}
