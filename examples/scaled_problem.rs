//! Scaled-problem study (the paper's §3.2 / Figure 9).
//!
//! ```sh
//! cargo run --example scaled_problem
//! ```
//!
//! Memory-bounded scaleup: the job grows with the pool (`J = T₀·W`), so
//! the task ratio stays fixed and the non-dedicated pool scales
//! gracefully — the paper's most optimistic conclusion, reproduced with
//! its +14/30/44/71% inflation numbers.

use nds::core::report::Table;
use nds::model::params::OwnerParams;
use nds::model::scaled::scaled_sweep;

fn main() {
    let t0 = 100.0;
    let pools = [1u32, 10, 25, 50, 75, 100];
    let utilizations = [0.01, 0.05, 0.10, 0.20];

    let mut table = Table::new(format!(
        "Scaled problem (J = {t0}*W): E[job time] and inflation vs dedicated T0"
    ))
    .headers({
        let mut h = vec!["W".to_string(), "J".to_string()];
        h.extend(utilizations.iter().map(|u| format!("U={}%", u * 100.0)));
        h
    });

    let sweeps: Vec<_> = utilizations
        .iter()
        .map(|&u| {
            let owner = OwnerParams::from_utilization(10.0, u).expect("valid owner");
            scaled_sweep(t0, &pools, owner).expect("valid sweep")
        })
        .collect();

    for (i, &w) in pools.iter().enumerate() {
        let mut row = vec![w.to_string(), format!("{}", (t0 as u64) * u64::from(w))];
        for sweep in &sweeps {
            let p = &sweep[i];
            row.push(format!(
                "{:6.1}s (+{:4.1}%)",
                p.expected_job_time,
                p.inflation * 100.0
            ));
        }
        table.row(row);
    }
    print!("{}", table.render());
    println!();
    println!("paper's §3.2 anchors at W = 100: +14% (U=1%), +30% (5%), +44% (10%), +71% (20%)");
    println!("scale the problem with the pool and the task ratio never shrinks:");
    println!("100x the work for a fraction of the response-time cost.");
}
