//! An **open** system on the pool: Poisson job arrivals with
//! steady-state response-time confidence intervals.
//!
//! ```sh
//! cargo run --release --example open_stream
//! ```
//!
//! The paper's model is closed — one job, measured by its makespan.
//! This example shows the workload its §5 future work asks for: jobs
//! arrive forever at rate λ, and the question becomes *what response
//! time does a submitted job see in steady state?* The `Sim` builder
//! expresses it in one chain, and the report carries the paper's own
//! §2.2 batch-means procedure (warm-up deletion, Student-t interval
//! over batch means, lag-1 independence diagnostic) applied to per-job
//! response times.

use nds::cluster::OwnerWorkload;
use nds::core::report::Table;
use nds::core::sim::{poisson, JobShape, Sim};
use nds::sched::EvictionPolicy;

fn main() {
    let owner = OwnerWorkload::continuous_exponential(10.0, 0.10).expect("valid owner");
    let shape = JobShape::new(4, 60.0); // 4 tasks x 60 s => 240 CPU-s per job

    // Sweep the arrival rate toward the pool's spare capacity
    // (16 stations x 90% idle = 14.4 CPU-s/s; one job offers 240 CPU-s).
    let mut table = Table::new(
        "Poisson job stream on a 16-station pool (U = 10%, 2000 jobs, 200 warm-up, \
         checkpoint eviction)",
    )
    .headers([
        "λ (jobs/s)",
        "offered load",
        "mean response",
        "90% CI",
        "rel. width",
        "lag-1 ok",
    ]);
    for rate in [0.01, 0.02, 0.04, 0.05] {
        let report = Sim::pool(16)
            .owners(&owner)
            .eviction(EvictionPolicy::Checkpoint {
                interval: 30.0,
                overhead: 1.0,
            })
            .calibration(10_000.0)
            .workload(poisson(rate, shape).jobs(2_000).warmup(200))
            .seed(2_024)
            .run()
            .expect("open run completes");
        assert!(report.is_consistent(), "work conservation violated");
        let ss = report
            .steady_state
            .expect("open workloads report steady state");
        table.row([
            format!("{rate}"),
            format!("{:.2}", rate * shape.total_demand() / (16.0 * 0.90)),
            format!("{:.1}", ss.response.mean),
            format!("[{:.1}, {:.1}]", ss.response.lower(), ss.response.upper()),
            format!("{:.4}", ss.response.relative_half_width()),
            if ss.diagnostic.acceptable {
                "yes"
            } else {
                "no"
            }
            .into(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nresponse time is flat while the pool absorbs the stream, then\n\
         queueing takes over as offered load nears the spare capacity —\n\
         the curve the closed model cannot draw. The CI comes from the\n\
         paper's batch-means procedure applied to per-job responses\n\
         (20 batches over the post-warm-up sequence)."
    );
}
