//! A tour of the flight recorder: trace one run, then walk every
//! artifact it produces — the structured event log, the sim-time
//! metrics registry, per-machine owner activity, and the host-time
//! profile per event class.
//!
//! ```sh
//! cargo run --release --example trace_tour
//! ```
//!
//! The same artifacts are written to disk by the CLI
//! (`nds trace sched --out traces`, or `--trace DIR` on any
//! simulation subcommand); this example shows the underlying API:
//! [`Sim::run_flight`] returns one [`Flight`] per replication, each
//! carrying the untouched `SchedMetrics` plus a `FlightRecorder`
//! whose records reconcile with those metrics exactly.

use nds::cluster::OwnerWorkload;
use nds::core::sim::{poisson, JobShape, Sim};
use nds::sched::{EventClass, EvictionPolicy};
use std::collections::BTreeMap;

fn main() {
    let owner = OwnerWorkload::continuous_exponential(10.0, 0.12).expect("valid owner");

    // A small open stream on 8 stations: enough owner interference to
    // see preemptions and evictions in the trace, small enough to read.
    let sim = Sim::pool(8)
        .owners(owner)
        .workload(poisson(0.02, JobShape::new(3, 45.0)).jobs(30).warmup(0))
        .eviction(EvictionPolicy::Checkpoint {
            interval: 30.0,
            overhead: 1.0,
        })
        .seed(42)
        .metrics_every(250.0)
        .build()
        .expect("valid configuration");

    let flights = sim.run_flight().expect("simulation completes");
    let flight = &flights[0];

    println!("== flight ==");
    println!("replication        {}", flight.replication);
    println!("events executed    {}", flight.events);
    println!("records captured   {}", flight.recorder.events().len());
    println!("makespan           {:.1}", flight.metrics.makespan);
    println!("goodput            {:.1}", flight.metrics.goodput);

    // 1. The structured event log: (sim time, record) pairs. Tally the
    //    record mix, then show the first few lines of the JSONL export.
    let mut mix: BTreeMap<&'static str, usize> = BTreeMap::new();
    for (_, record) in flight.recorder.events() {
        *mix.entry(record.kind_name()).or_default() += 1;
    }
    println!("\n== record mix ==");
    for (kind, n) in &mix {
        println!("{kind:<20} {n:>6}");
    }
    println!("\n== first JSONL lines ==");
    for line in flight.to_jsonl().lines().take(5) {
        println!("{line}");
    }

    // 2. The metrics registry: every series is sampled on one shared
    //    sim-time grid, so the time-series line up column by column.
    let registry = flight.recorder.registry();
    println!("\n== metrics grid ==");
    println!(
        "{} ticks every 250 sim-s, ending at the makespan ({:.1})",
        registry.ticks().len(),
        registry.ticks().last().copied().unwrap_or(0.0),
    );
    let last = flight.recorder.final_sample().expect("sampled run");
    println!(
        "closing state: queue={} free={} pending={} goodput={:.1} wasted={:.1}",
        last.queue_depth, last.free_machines, last.pending_events, last.goodput, last.wasted
    );
    assert!(
        (last.goodput - flight.metrics.goodput).abs() < 1e-9,
        "trace must reconcile with the engine's accounting"
    );

    // 3. Per-machine owner activity: who interfered, and where the
    //    evictions landed.
    println!("\n== per-machine owner activity ==");
    let arrivals = flight.recorder.owner_arrivals();
    let evictions = flight.recorder.evictions_by_machine();
    for (m, (a, e)) in arrivals.iter().zip(evictions).enumerate() {
        println!("machine {m}: {a:>4} owner arrivals, {e:>3} evictions");
    }

    // 4. The host-time profile: where the engine itself spent wall
    //    clock, attributed per event class.
    println!("\n== host-time profile ==");
    let profiler = flight.recorder.profiler();
    for class in EventClass::ALL {
        let count = profiler.count(class);
        if count > 0 {
            println!(
                "{:<20} {:>6} events  {:>8} ns total",
                class.name(),
                count,
                profiler.nanos(class)
            );
        }
    }

    // 5. Chrome/Perfetto export: paste into chrome://tracing or
    //    ui.perfetto.dev. (Here we just show it is one JSON object.)
    let chrome = flight.to_chrome_json();
    println!(
        "\nchrome trace: {} bytes, {} span begins",
        chrome.len(),
        chrome.matches("\"ph\":\"B\"").count()
    );
}
