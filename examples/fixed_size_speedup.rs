//! Fixed-size speedup study (the paper's §3.1 / Figures 1–4 workload).
//!
//! ```sh
//! cargo run --example fixed_size_speedup
//! ```
//!
//! Sweeps pool size for a fixed 1000-unit job at several owner
//! utilizations, printing speedup and weighted efficiency, and marks
//! where each configuration stops meeting the paper's 80% feasibility
//! bar — the "concave increasing" effect of §3.1 made concrete.

use nds::core::prelude::*;
use nds::core::report::Table;

fn main() {
    let job_demand = 1000.0;
    let owner_demand = 10.0;
    let utilizations = [0.01, 0.05, 0.10, 0.20];
    let pools: Vec<u32> = [1u32, 5, 10, 20, 40, 60, 80, 100].to_vec();

    let mut table = Table::new(format!(
        "Fixed-size job J = {job_demand}, O = {owner_demand}: speedup (weighted efficiency)"
    ))
    .headers({
        let mut h = vec!["W".to_string()];
        h.extend(utilizations.iter().map(|u| format!("U={}%", u * 100.0)));
        h
    });

    for &w in &pools {
        let mut row = vec![w.to_string()];
        for &u in &utilizations {
            let inputs = ModelInputs::from_utilization(job_demand, w, owner_demand, u)
                .expect("valid inputs");
            let m = evaluate(&inputs);
            let feasible = m.weighted_efficiency >= 0.80;
            row.push(format!(
                "{:6.1} ({:4.1}%){}",
                m.speedup,
                m.weighted_efficiency * 100.0,
                if feasible { " " } else { "*" }
            ));
        }
        table.row(row);
    }
    print!("{}", table.render());
    println!("\n* = below the paper's 80% weighted-efficiency feasibility bar");
    println!("note how every curve bends away from perfect speedup as W grows:");
    println!("the task ratio T/O = J/(W*O) shrinks with W, so owner bursts");
    println!("loom ever larger against each task — the paper's core insight.");
}
