//! Gang scheduling vs independent-task scheduling on the paper's
//! workload.
//!
//! Run with `cargo run --example gang` (optionally
//! `-- --min-running F` to pick the partial-gang floor of vignette 4;
//! default 4).
//!
//! The paper's parallel job is barrier-synchronized: it only makes
//! progress while *all* tasks run at once. Its model nevertheless lets
//! each task finish on its own clock and takes the max — fine for the
//! one-job, one-task-per-station case, but silent about what
//! co-allocation costs once jobs queue for the pool. Four vignettes
//! make the difference concrete:
//!
//! 1. the paper's own workload (one job, one task per station) under
//!    both regimes — gang scheduling pays a barrier premium even here,
//! 2. a queued multi-job mix, where co-allocation also waits for enough
//!    simultaneously-free machines and fragments the pool,
//! 3. migrate-all as the middle ground: the gang moves as a unit
//!    instead of sleeping in place,
//! 4. partial gangs (Ousterhout-style co-scheduling): the job keeps
//!    computing at a degraded rate while at least `min_running` members
//!    hold machines — the bridge between 1's two extremes.

use nds::core::prelude::*;
use nds::core::sim::closed;

fn main() {
    // `--min-running F` sets vignette 4's co-scheduling floor
    // (clamped to >= 1, like every other surface; default 4).
    let args: Vec<String> = std::env::args().collect();
    let min_running: u32 = args
        .iter()
        .position(|a| a == "--min-running")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(1);
    let w = 16u32;
    let owner = OwnerWorkload::continuous_exponential(10.0, 0.10).unwrap();

    // 1. The paper's workload: one job, one task per station.
    let single: Vec<JobSpec> = vec![JobSpec::at_zero(w, 300.0)];
    let run = |gang: GangPolicy, jobs: &[JobSpec]| {
        let report = Sim::pool(w)
            .owners(&owner)
            .gang(gang)
            .workload(closed(jobs.to_vec()))
            .backend(Backend::Sched)
            .seed(0x5EED)
            .replications(5)
            .run()
            .unwrap();
        assert!(report.is_consistent());
        assert!(report.runs.iter().all(|m| m.gang.lockstep_violations == 0));
        report
    };
    let independent = run(GangPolicy::Off, &single);
    let gang = run(GangPolicy::SuspendAll, &single);
    println!("1) the paper's workload (1 job x {w} tasks x 300, U=10%)");
    println!(
        "   independent tasks : makespan {:>6.1}  (each task finishes on its own clock)",
        independent.mean_makespan()
    );
    println!(
        "   gang suspend-all  : makespan {:>6.1}  (any owner return freezes all {w} tasks)",
        gang.mean_makespan()
    );
    println!(
        "   barrier premium   : {:.2}x, {:.0} member-time units stalled behind the barrier\n",
        gang.mean_makespan() / independent.mean_makespan(),
        gang.mean_barrier_stall()
    );

    // 2. A queued mix: 6 gangs of 8 on 16 stations.
    let mix = JobSpec::stream(6, 8, 90.0, 40.0);
    let independent = run(GangPolicy::Off, &mix);
    let gang = run(GangPolicy::SuspendAll, &mix);
    println!("2) queued gangs (6 jobs x 8 tasks x 90, arrivals every 40)");
    println!(
        "   independent tasks : makespan {:>6.1}  response {:>6.1}",
        independent.mean_makespan(),
        independent.mean_over(|m| m.mean_response_time())
    );
    println!(
        "   gang suspend-all  : makespan {:>6.1}  response {:>6.1}",
        gang.mean_makespan(),
        gang.mean_over(|m| m.mean_response_time())
    );
    println!(
        "   co-allocation wait {:.1}/gang, fragmentation {:.0} machine-time units\n",
        gang.mean_coalloc_wait(),
        gang.mean_fragmentation()
    );

    // 3. Migrate-all: the gang moves as a unit instead of sleeping.
    let migrate = run(GangPolicy::MigrateAll { overhead: 3.0 }, &mix);
    println!("3) migrate-all (setup 3.0/task) on the same mix");
    println!(
        "   makespan {:>6.1}, {:.1} whole-gang migrations/run, wasted CPU {:>5.1}",
        migrate.mean_makespan(),
        migrate.mean_over(|m| m.gang.gang_migrations as f64),
        migrate.mean_wasted()
    );
    println!(
        "   (suspend-all loses no work but strands every member behind one\n\
          \x20   owner; migrate-all pays setup tolls to chase free machines)\n"
    );

    // 4. Partial gangs: keep computing above a min_running floor.
    let partial = run(GangPolicy::Partial { min_running }, &mix);
    assert!(partial.runs.iter().all(|m| m.gang.floor_violations == 0));
    println!("4) partial gang (min_running {min_running} of 8) on the same mix");
    println!(
        "   makespan {:>6.1}  response {:>6.1}  (suspend-all: {:.1} / {:.1})",
        partial.mean_makespan(),
        partial.mean_over(|m| m.mean_response_time()),
        gang.mean_makespan(),
        gang.mean_over(|m| m.mean_response_time())
    );
    println!(
        "   degraded-mode time {:.1}/run, effective parallelism {:.2},\n\
         \x20   {:.1} whole-gang suspensions/run (vs {:.1} under suspend-all)",
        partial.mean_degraded_time(),
        partial.mean_effective_parallelism(),
        partial.mean_over(|m| m.gang.gang_suspensions as f64),
        gang.mean_over(|m| m.gang.gang_suspensions as f64)
    );
    println!(
        "   (an owner return now shaves the rate instead of freezing the\n\
         \x20   job; only dropping below the floor suspends the gang, so the\n\
         \x20   barrier premium shrinks toward the independent-task cost)"
    );
}
