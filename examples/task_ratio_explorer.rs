//! Task-ratio design explorer (the paper's §5 guidance, generalized).
//!
//! ```sh
//! cargo run --example task_ratio_explorer
//! ```
//!
//! The paper's conclusion is a design rule: keep the task ratio above a
//! utilization-dependent threshold. This example computes the exact
//! threshold surface — required ratio by utilization and pool size —
//! and translates it into minimum job demands.

use nds::core::report::Table;
use nds::model::params::OwnerParams;
use nds::model::solver::{required_job_demand, required_task_ratio};

fn main() {
    let utilizations = [0.01, 0.03, 0.05, 0.10, 0.15, 0.20, 0.30];
    let pools = [2u32, 8, 20, 60, 100, 250];
    let owner_demand = 10.0;

    let mut ratio_table =
        Table::new("Required task ratio (T/O) for 80% weighted efficiency".to_string()).headers({
            let mut h = vec!["U".to_string()];
            h.extend(pools.iter().map(|w| format!("W={w}")));
            h
        });
    let mut demand_table = Table::new(format!(
        "Equivalent minimum job demand J (seconds, O = {owner_demand})"
    ))
    .headers({
        let mut h = vec!["U".to_string()];
        h.extend(pools.iter().map(|w| format!("W={w}")));
        h
    });

    for &u in &utilizations {
        let owner = OwnerParams::from_utilization(owner_demand, u).expect("valid owner");
        let mut r_row = vec![format!("{:.0}%", u * 100.0)];
        let mut d_row = vec![format!("{:.0}%", u * 100.0)];
        for &w in &pools {
            let ratio = required_task_ratio(w, owner, 0.80).expect("solvable");
            let demand = required_job_demand(w, owner, 0.80).expect("solvable");
            r_row.push(format!("{ratio:.1}"));
            d_row.push(format!("{demand:.0}"));
        }
        ratio_table.row(r_row);
        demand_table.row(d_row);
    }
    print!("{}", ratio_table.render());
    println!();
    print!("{}", demand_table.render());
    println!();
    println!("paper's §5 rule of thumb (thresholds 8/13/20 at U = 5/10/20%)");
    println!("sits in the W = 100 column; smaller pools are more forgiving,");
    println!("and the thresholds grow roughly linearly with utilization.");
}
