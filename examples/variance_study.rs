//! Owner-demand variance study (the paper's §5 caveat, simulated).
//!
//! ```sh
//! cargo run --example variance_study
//! ```
//!
//! The paper warns its deterministic-demand model is optimistic because
//! real owner processes "experience a much larger variance" (Sauer &
//! Chandy). This example holds mean demand and utilization fixed while
//! sweeping the demand's squared coefficient of variation, using the
//! continuous-time simulator the model cannot reach.

use nds::cluster::job::JobRunner;
use nds::cluster::owner::OwnerWorkload;
use nds::core::report::Table;

fn main() {
    let reps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let w = 12u32;
    let task_demand = 600.0;
    let utilization = 0.10;
    let cv2s = [1.0, 2.0, 4.0, 8.0, 16.0];

    let mut table = Table::new(format!(
        "Owner-demand variance vs job time (W = {w}, T = {task_demand}, U = {utilization}, {reps} reps)"
    ))
    .headers(["service CV^2", "mean job time", "p95 job time", "slowdown"]);

    // Model prediction with deterministic demands, for reference.
    let model_like = OwnerWorkload::paper_from_utilization(10.0, utilization).unwrap();
    println!(
        "deterministic-demand owner utilization check: {:.3}\n",
        model_like.utilization()
    );

    for &cv2 in &cv2s {
        let owner = OwnerWorkload::high_variance(10.0, utilization, cv2).expect("valid owner");
        let runner = JobRunner::new(4242);
        let mut times: Vec<f64> = (0..reps)
            .map(|r| {
                runner
                    .run_continuous_job(&owner, task_demand, w, r)
                    .job_time()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let mean = times.iter().sum::<f64>() / reps as f64;
        let p95 = times[(times.len() * 95 / 100).min(times.len() - 1)];
        table.row([
            format!("{cv2:.0}"),
            format!("{mean:.1}"),
            format!("{p95:.1}"),
            format!("{:.3}x", mean / task_demand),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("same mean interference, heavier tails: variance alone degrades");
    println!("the max-of-W job time — the paper's optimism caveat, quantified.");
}
