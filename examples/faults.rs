//! Machine failure injection: what crashes cost each eviction policy.
//!
//! Run with `cargo run --example faults` (optionally `-- --mtbf M`
//! to pick the crash rate; default 120).
//!
//! The paper's owner returns are benign — a suspend-resume guest
//! sleeps through the reclaim and loses nothing, which is why
//! suspend-resume wins every owner-only comparison. Crashes break that
//! logic: a power cycle destroys whatever progress the policy left
//! unprotected, *whatever* the policy. Three vignettes:
//!
//! 1. the same workload with and without a failure model — and the
//!    no-failures run is bit-identical to an engine that has never
//!    heard of failures (the failure process draws from its own RNG
//!    streams);
//! 2. the eviction-policy panel under crashes: suspend-resume and
//!    restart lose everything a crash touches, checkpointing bounds the
//!    loss to one interval, adaptive eviction protects only tasks with
//!    enough invested progress to be worth the overhead;
//! 3. availability vs goodput as MTBF degrades: the pool's uptime
//!    fraction is set by MTBF/(MTBF+MTTR) alone, but how much of that
//!    uptime survives as goodput is the policy's choice.

use nds::core::prelude::*;
use nds::core::sim::closed;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mtbf = args
        .iter()
        .position(|a| a == "--mtbf")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(120.0)
        .max(1.0);
    let mttr = 15.0;
    let w = 16u32;
    let owner = OwnerWorkload::continuous_exponential(10.0, 0.10).unwrap();
    let jobs: Vec<JobSpec> = JobSpec::stream(4, w, 120.0, 50.0);

    let run = |failures: Option<FailureModel>, eviction: EvictionPolicy| {
        let mut sim = Sim::pool(w)
            .owners(&owner)
            .eviction(eviction)
            .workload(closed(jobs.clone()))
            .backend(Backend::Sched)
            .seed(0xFA17)
            .replications(5);
        if let Some(model) = failures {
            sim = sim.failures(model);
        }
        let report = sim.run().unwrap();
        assert!(report.is_consistent());
        report
    };

    // 1. Failures on vs off, same seed: the crash price in isolation.
    let model = FailureModel::exponential(mtbf, mttr).unwrap();
    let clean = run(None, EvictionPolicy::SuspendResume);
    let faulty = run(Some(model), EvictionPolicy::SuspendResume);
    println!("1) suspend-resume, 4 jobs x {w} tasks x 120, U=10%");
    println!(
        "   no failures:  makespan {:7.1}, goodput fraction {:.3}",
        clean.mean_makespan(),
        clean.mean_goodput_fraction()
    );
    println!(
        "   {} (availability {:.3}):",
        model.label(),
        model.availability()
    );
    println!(
        "                 makespan {:7.1}, goodput fraction {:.3}, {:.0} crashes, {:.0} CPU destroyed",
        faulty.mean_makespan(),
        faulty.mean_goodput_fraction(),
        faulty.mean_over(|m| m.crashes as f64),
        faulty.mean_over(|m| m.crash_lost)
    );

    // 2. The policy panel under the same crash process.
    println!("\n2) eviction policies under {}", model.label());
    let policies = [
        EvictionPolicy::SuspendResume,
        EvictionPolicy::Restart,
        EvictionPolicy::Checkpoint {
            interval: 30.0,
            overhead: 1.0,
        },
        EvictionPolicy::Adaptive {
            threshold: 60.0,
            interval: 30.0,
            overhead: 1.0,
        },
    ];
    for policy in policies {
        let report = run(Some(model), policy);
        println!(
            "   {:<26} makespan {:7.1}, goodput fraction {:.3}, crash-destroyed {:6.0}, ckpt overhead {:5.0}",
            policy.label(),
            report.mean_makespan(),
            report.mean_goodput_fraction(),
            report.mean_over(|m| m.crash_lost),
            report.mean_over(|m| m.checkpoint_overhead)
        );
    }

    // 3. Availability vs goodput as the pool degrades.
    println!("\n3) checkpoint(i=30, c=1) as MTBF degrades (mttr {mttr})");
    let ckpt = EvictionPolicy::Checkpoint {
        interval: 30.0,
        overhead: 1.0,
    };
    for m in [6_000.0, 600.0, 120.0, 60.0] {
        let model = FailureModel::exponential(m, mttr).unwrap();
        let report = run(Some(model), ckpt);
        let observed = report.mean_over(|metrics| {
            if metrics.makespan == 0.0 {
                1.0
            } else {
                1.0 - metrics.downtime / (f64::from(w) * metrics.makespan)
            }
        });
        println!(
            "   MTBF {m:>6}: steady-state availability {:.4}, observed {:.4}, goodput/makespan {:5.2}",
            model.availability(),
            observed,
            report.mean_over(nds::sched::SchedMetrics::goodput_rate)
        );
    }
    println!(
        "\nAvailability is the failure process's number; goodput is the\n\
         policy's. Crashes price the protection that benign owner returns\n\
         never charged for."
    );
}
