//! Trace-driven workloads: synthesize a datacenter day, serialize it,
//! reload it, and stream it through the engine in bounded chunks.
//!
//! ```sh
//! cargo run --release --example trace_replay [OUT.csv]
//! ```
//!
//! The paper's workloads are parametric (one closed job, a Poisson
//! stream). Real pools are driven by *traces*: a recorded or
//! synthesized sequence of `(arrival, tasks, task_demand)` rows. This
//! example walks the whole loop:
//!
//! 1. generate one synthetic day — diurnal sinusoid arrivals,
//!    bounded-Pareto job sizes, hot/cool owner machines
//!    (`SyntheticTrace`);
//! 2. serialize it to CSV and parse it back, byte-exactly
//!    (`TraceWorkload`) — pass a path argument to keep the file (the
//!    committed fixture `tests/data/datacenter_small.csv` was written
//!    by exactly this program);
//! 3. replay it through `Sim` with `.stream_chunk(..)`, which pulls
//!    the trace lazily in O(chunk) memory, and check the streamed
//!    report matches the materialized run.

use nds::core::report::Table;
use nds::core::sim::{Sim, SyntheticTrace, TraceWorkload, Workload};

const SEED: u64 = 7;

fn main() {
    // 1. One synthetic day of a small pool: 8 machines, 60 jobs.
    let generator = SyntheticTrace::datacenter(8, 60).warmup(6);
    let owners = generator.owners(SEED, 0).expect("valid owner mix");
    let trace = generator.to_trace(SEED, 0).expect("valid generator");

    // 2. Round-trip through the CSV interchange format.
    let csv = trace.to_csv_string();
    let reloaded = TraceWorkload::from_csv_str(&csv).expect("own output parses");
    assert_eq!(
        trace.jobs(),
        reloaded.jobs(),
        "serialize -> parse is exact (shortest-representation floats)"
    );
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &csv).expect("fixture path is writable");
        println!("wrote {} trace rows to {path}\n", trace.jobs().len());
    }

    // 3. Stream the reloaded trace vs materialize it: same report.
    let run = |chunk: usize| {
        let mut sim = Sim::pool(generator.machines())
            .owners(owners.clone())
            .workload(reloaded.clone().warmup(6))
            .batches(6)
            .seed(SEED);
        if chunk > 0 {
            sim = sim.stream_chunk(chunk);
        }
        sim.run().expect("replay completes")
    };
    let materialized = run(0);
    let streamed = run(16);
    assert_eq!(
        materialized.response, streamed.response,
        "streaming is a pure execution strategy: identical statistics"
    );
    assert_eq!(materialized.steady_state, streamed.steady_state);

    let mut table = Table::new(format!(
        "one synthetic day replayed from CSV ({}, streamed in chunks of 16)",
        generator.label()
    ))
    .headers(["metric", "value"]);
    let ss = streamed.steady_state.as_ref().expect("traces are open");
    table.row(["trace rows", &trace.jobs().len().to_string()]);
    table.row([
        "steady-state mean response",
        &format!("{:.1}", ss.response.mean),
    ]);
    table.row([
        "90% CI",
        &format!("[{:.1}, {:.1}]", ss.response.lower(), ss.response.upper()),
    ]);
    table.row(["mean makespan", &format!("{:.1}", streamed.mean_makespan())]);
    table.row([
        "goodput fraction",
        &format!("{:.4}", streamed.mean_goodput_fraction()),
    ]);
    print!("{}", table.render());

    println!(
        "\nThe streamed replay never held more than 16 job specs in memory,\n\
         yet its report is byte-identical to the materialized run — the\n\
         property that lets `nds replay` and `ext_trace` push million-job\n\
         traces through the engine."
    );
}
