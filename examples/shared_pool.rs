//! Beyond the paper: sharing the pool.
//!
//! ```sh
//! cargo run --example shared_pool
//! ```
//!
//! Three of the paper's §5 open problems in one study: several parallel
//! jobs co-scheduled on the same workstations, synchronized multi-round
//! codes, and multiprocessor workstations — all built on the same
//! preemptive-priority substrate as the paper's model.

use nds::cluster::multi::{JobSpec, MultiJobExperiment};
use nds::cluster::owner::OwnerWorkload;
use nds::cluster::smp::SmpWorkstation;
use nds::core::report::Table;
use nds::stats::rng::Xoshiro256StarStar;

fn main() {
    let owner = OwnerWorkload::continuous_exponential(10.0, 0.05).expect("valid owner");

    // 1. Two jobs arriving 100 s apart on an 8-station pool.
    let exp = MultiJobExperiment {
        jobs: vec![
            JobSpec {
                task_demand: 300.0,
                arrival: 0.0,
            },
            JobSpec {
                task_demand: 300.0,
                arrival: 100.0,
            },
        ],
        workstations: 8,
        owner: owner.clone(),
        seed: 99,
    };
    let means = exp.mean_response_times(20);
    let mut t1 = Table::new("Two co-scheduled jobs, 8 stations, U = 5%").headers([
        "job",
        "arrival",
        "mean response",
        "slowdown vs dedicated",
    ]);
    for (i, &resp) in means.iter().enumerate() {
        t1.row([
            format!("job {}", i + 1),
            format!("{:.0}", if i == 0 { 0.0 } else { 100.0 }),
            format!("{resp:.1}"),
            format!("{:.2}x", resp / 300.0),
        ]);
    }
    print!("{}", t1.render());
    println!("the later job queues behind the first on every station.\n");

    // 2. SMP workstations: how many CPUs until owners are invisible?
    let mut t2 = Table::new("Task slowdown on a k-CPU workstation (one 20% owner, T = 300)")
        .headers(["CPUs", "slowdown"]);
    for cpus in [1usize, 2, 4] {
        let ws = SmpWorkstation::new(
            cpus,
            OwnerWorkload::continuous_exponential(10.0, 0.20).expect("valid"),
        );
        let mut rng = Xoshiro256StarStar::new(5);
        let mean: f64 = (0..100)
            .map(|_| ws.run_task(300.0, &mut rng).execution_time)
            .sum::<f64>()
            / 100.0;
        t2.row([cpus.to_string(), format!("{:.3}x", mean / 300.0)]);
    }
    print!("{}", t2.render());
    println!("a single spare CPU absorbs the owner entirely — the paper's");
    println!("preemption penalty is specific to single-CPU workstations.");
}
