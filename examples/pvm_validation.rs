//! PVM-style experimental validation (the paper's §4 / Figures 10–11).
//!
//! ```sh
//! cargo run --example pvm_validation           # quick (3 reps)
//! cargo run --example pvm_validation -- 10     # paper's 10 reps
//! ```
//!
//! Runs the master/worker "local computation" program on a simulated
//! 1–12-workstation pool at 3% owner utilization (the paper's measured
//! `uptime` value) and compares the mean maximum task execution time
//! against the analytical model.

use nds::core::prelude::*;
use nds::core::report::Table;
use nds::model::expectation::expected_job_time;
use nds::model::params::OwnerParams;

fn main() {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let harness = ValidationHarness {
        utilization: 0.03,
        owner_demand: 10.0,
        replications: reps,
        seed: 1993,
    };
    let owner = OwnerParams::from_utilization(10.0, 0.03).expect("valid owner");
    let demands = [1u32, 4, 16];
    let pools = [1u32, 2, 4, 8, 12];

    let mut table = Table::new(format!(
        "PVM validation: mean max task time, measured vs analytic ({reps} reps, U = 3%)"
    ))
    .headers({
        let mut h = vec!["W".to_string()];
        for d in demands {
            h.push(format!("meas {d}m"));
            h.push(format!("model {d}m"));
        }
        h
    });

    for &w in &pools {
        let mut row = vec![w.to_string()];
        for &d in &demands {
            let point = harness.run_point(w, d).expect("valid point");
            let t = f64::from(d) * 60.0 / f64::from(w);
            let analytic = expected_job_time(t, w, owner);
            row.push(format!("{:7.1}", point.mean_max_task_time));
            row.push(format!("{analytic:7.1}"));
        }
        table.row(row);
    }
    print!("{}", table.render());
    println!();
    println!("speedup (demand = 16 min), measured:");
    let pts = harness.run_grid(&pools, &[16]).expect("grid runs");
    for (w, _, s) in ValidationHarness::speedups(&pts).expect("baseline present") {
        println!("  W = {w:>2}: {s:5.2} (perfect would be {w})");
    }
    println!();
    println!("as in the paper's Figure 11, small demands lose more speedup:");
    println!("a 1-minute job split 12 ways has task ratio 0.5 — owner bursts");
    println!("rival whole tasks. The 16-minute job keeps a healthy ratio.");
}
