//! Gang scheduling / co-allocation: all-or-nothing and partial gangs.
//!
//! The paper's parallel jobs are barrier-synchronized: a job only makes
//! progress while *all* of its tasks are simultaneously running, so a
//! single owner reclaiming a workstation stalls the whole gang. The
//! independent-task engine ([`crate::simulator`]) ignores that coupling
//! — each task runs and finishes on its own clock. This module supplies
//! the missing semantics, including the Ousterhout-style middle ground
//! between the two extremes:
//!
//! * [`GangPolicy`] — the co-allocation knob on
//!   [`crate::SchedConfig`]: `Off` keeps the independent-task engine
//!   (bit-for-bit), `SuspendAll` suspends the entire gang in place when
//!   any member's owner returns, `MigrateAll` pulls the whole gang back
//!   into the queue and re-places it as a unit, and `Partial` keeps the
//!   gang computing — at a degraded rate proportional to its running
//!   member count — as long as at least `min_running` members still
//!   hold owner-free machines.
//! * [`GangQueue`] — job-level queue admission: a gang leaves the queue
//!   only when enough machines are free for its *floor* — every task at
//!   once for the all-or-nothing policies, `min_running` of them under
//!   `Partial` (strict head-of-line FCFS, or smallest-fitting-gang
//!   backfill under [`QueueDiscipline::SjfBackfill`]).
//! * [`GangStats`] — the co-allocation metrics: wait for co-allocation,
//!   gang fragmentation (free machine-time the waiting gangs could not
//!   use), barrier-stall time (member-time frozen behind a peer's owner
//!   while the member's own machine was free), and the degraded-mode
//!   metrics of partial gangs (degraded-mode time and the
//!   effective-parallelism integral).
//!
//! # Relation to the independent engine
//!
//! With `tasks = 1` every gang degenerates to a single task:
//! co-allocation is ordinary placement, suspend-all is suspend-resume,
//! a `min_running` floor of one is vacuous, and the engine reproduces
//! the independent-task scheduler bit-for-bit (the workspace's
//! `gang_invariants` tests enforce this). With `GangPolicy::Off` the
//! gang paths are never entered at all, and with the floor at the full
//! gang width `Partial` collapses to `SuspendAll` — again bit-for-bit.

use crate::queue::QueueDiscipline;
use std::collections::VecDeque;

/// How a job's tasks are co-scheduled.
///
/// The enum is `#[non_exhaustive]`: more job-level policies are
/// planned (see the workspace ROADMAP), so downstream matches must
/// carry a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum GangPolicy {
    /// Independent-task scheduling — the engine's original semantics;
    /// every task is placed, run, and evicted on its own.
    #[default]
    Off,
    /// All-or-nothing co-allocation; when any member's owner returns
    /// the entire gang suspends in place (no work is ever lost, but
    /// every member stalls) and resumes once every member's owner is
    /// away again.
    SuspendAll,
    /// All-or-nothing co-allocation; when any member's owner returns
    /// the whole gang is pulled back into the queue with its progress
    /// intact and re-placed as a unit, each task paying `overhead` CPU
    /// time of setup before the gang computes again.
    MigrateAll {
        /// Per-task migration setup cost in CPU time units.
        overhead: f64,
    },
    /// Ousterhout-style partial gang (co-scheduling with a floor): the
    /// job keeps computing, at a rate proportional to its running
    /// member count, as long as at least `min_running` of its tasks
    /// hold owner-free machines; it suspends as a whole only when
    /// membership drops below the floor. A gang is admitted from the
    /// queue once `min_running` machines are free and grows toward its
    /// full width as machines free up.
    Partial {
        /// Minimum simultaneously-running members for the job to make
        /// progress. Clamped per job to `[1, tasks]` — `1` is
        /// independent-task semantics with a shared clock, `tasks` is
        /// exactly `SuspendAll`.
        min_running: u32,
    },
    /// [`GangPolicy::Partial`] with the floor expressed as a fraction
    /// of the gang width: `min_running = ceil(frac * tasks)`, clamped
    /// to `[1, tasks]`. Useful when one sweep covers gangs of
    /// different widths.
    PartialFrac {
        /// Fraction of the gang width that must run, in `(0, 1]`.
        min_running_frac: f64,
    },
}

impl GangPolicy {
    /// Whether gang semantics are active.
    pub fn is_on(&self) -> bool {
        !matches!(self, Self::Off)
    }

    /// Whether this is a partial-gang policy (degraded-rate execution
    /// above a `min_running` floor).
    pub fn is_partial(&self) -> bool {
        matches!(self, Self::Partial { .. } | Self::PartialFrac { .. })
    }

    /// The co-scheduling floor resolved for a gang of `tasks` members:
    /// how many members must simultaneously hold owner-free machines
    /// for the job to progress. The all-or-nothing policies floor at
    /// the full width; the partial policies clamp their floor into
    /// `[1, tasks]`.
    pub fn floor_for(&self, tasks: u32) -> u32 {
        let k = tasks.max(1);
        match *self {
            Self::Partial { min_running } => min_running.clamp(1, k),
            Self::PartialFrac { min_running_frac } => {
                let raw = (min_running_frac * f64::from(k)).ceil();
                if raw.is_finite() && raw >= 1.0 {
                    (raw as u32).clamp(1, k)
                } else {
                    1
                }
            }
            _ => k,
        }
    }

    /// Short stable name for tables and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::SuspendAll => "suspend-all",
            Self::MigrateAll { .. } => "migrate-all",
            Self::Partial { .. } => "partial",
            Self::PartialFrac { .. } => "partial-frac",
        }
    }

    /// Human-readable label including parameters.
    pub fn label(&self) -> String {
        match self {
            Self::Off => "off".into(),
            Self::SuspendAll => "suspend-all".into(),
            Self::MigrateAll { overhead } => format!("migrate-all(c={overhead})"),
            Self::Partial { min_running } => format!("partial(min={min_running})"),
            Self::PartialFrac { min_running_frac } => {
                format!("partial(min={min_running_frac}k)")
            }
        }
    }

    /// Parse a CLI-style name (the `MigrateAll` overhead and the
    /// `Partial` floor come from separate flags; `min_running` clamps
    /// up to one). [`GangPolicy::PartialFrac`] is deliberately not
    /// parseable here — its floor is an `f64`, so callers with a
    /// fractional flag (e.g. `nds gang --min-running-frac`) construct
    /// it directly.
    pub fn parse(s: &str, overhead: f64, min_running: u32) -> Option<Self> {
        match s {
            "off" => Some(Self::Off),
            "suspend-all" | "suspend" => Some(Self::SuspendAll),
            "migrate-all" | "migrate" => Some(Self::MigrateAll { overhead }),
            "partial" | "min-running" => Some(Self::Partial {
                min_running: min_running.max(1),
            }),
            _ => None,
        }
    }

    /// Validate policy parameters.
    pub fn validate(&self) -> Result<(), (&'static str, String)> {
        match *self {
            Self::Off | Self::SuspendAll => Ok(()),
            Self::MigrateAll { overhead } => {
                if overhead.is_finite() && overhead >= 0.0 {
                    Ok(())
                } else {
                    Err((
                        "gang migrate-all overhead",
                        format!("{overhead} not finite >= 0"),
                    ))
                }
            }
            Self::Partial { min_running } => {
                if min_running >= 1 {
                    Ok(())
                } else {
                    Err((
                        "gang partial min_running",
                        "must be at least one running member".into(),
                    ))
                }
            }
            Self::PartialFrac { min_running_frac } => {
                if min_running_frac.is_finite() && min_running_frac > 0.0 && min_running_frac <= 1.0
                {
                    Ok(())
                } else {
                    Err((
                        "gang partial min_running_frac",
                        format!("{min_running_frac} not in (0, 1]"),
                    ))
                }
            }
        }
    }
}

/// Co-allocation metrics accumulated by one scheduler run. All zero
/// when [`GangPolicy::Off`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GangStats {
    /// Atomic gang starts (initial co-allocations plus re-placements).
    pub gang_starts: u64,
    /// Whole-gang suspensions: a member reclaim dropped the running
    /// membership below the policy floor (any reclaim, under
    /// [`GangPolicy::SuspendAll`]).
    pub gang_suspensions: u64,
    /// Whole-gang migrations back to the queue
    /// ([`GangPolicy::MigrateAll`]).
    pub gang_migrations: u64,
    /// Total time gangs spent waiting for co-allocation (job-level:
    /// each queue stay contributes once, not once per task).
    pub coalloc_wait: f64,
    /// Member-time stalled behind the barrier: the time-integral, over
    /// suspended gangs, of members whose own machine was owner-free but
    /// who could not run because the gang sat below its floor (under
    /// the all-or-nothing policies, because a peer's machine was
    /// reclaimed).
    pub barrier_stall: f64,
    /// Gang fragmentation: the time-integral of free machines while at
    /// least one gang waited in the queue — capacity the scheduler
    /// could not use because no waiting gang fit into it.
    pub fragmentation: f64,
    /// Events at which an all-or-nothing gang's members disagreed on
    /// their run/suspend state. Always zero: every state flip goes
    /// through one choke point that updates all members together, and
    /// at every gang event the engine re-verifies the invariant for
    /// the gang that event touched — the only gang whose state can
    /// have changed (debug builds additionally sweep every gang). The
    /// workspace's property tests assert this stays zero.
    pub lockstep_violations: u64,
    /// Time-integral of gangs running in degraded mode — with fewer
    /// running members than the gang's full width. Zero under the
    /// all-or-nothing policies, which only ever run complete.
    pub degraded_time: f64,
    /// Effective-parallelism integral: running members integrated over
    /// time across all work segments (setup excluded). Because a gang
    /// of width `k` progresses each task at rate `running/k`, this
    /// integral equals the total demand exactly when every job
    /// completes — the conservation law `tests/rate_invariants.rs`
    /// pins to 1e-9.
    pub parallelism_integral: f64,
    /// Events at which a gang was observed running with fewer members
    /// than its `min_running` floor (or more than its width). Always
    /// zero: the engine suspends the whole gang before membership can
    /// drop through the floor, and re-verifies the touched gang at
    /// every gang event (debug builds sweep every gang).
    pub floor_violations: u64,
}

/// One gang waiting for co-allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingGang {
    /// Index of the job this gang realizes.
    pub job: usize,
    /// Full gang width: machines the gang wants (and, under the
    /// all-or-nothing policies, needs) at once.
    pub tasks: u32,
    /// Machines that must be simultaneously free for admission — equal
    /// to `tasks` for the all-or-nothing policies, the `min_running`
    /// floor under [`GangPolicy::Partial`].
    pub min_tasks: u32,
    /// Original per-task demand.
    pub demand: f64,
    /// Per-task work still owed.
    pub remaining: f64,
    /// Per-task setup owed before computing (migration restore cost).
    pub setup: f64,
    /// When this entry joined the queue.
    pub enqueued_at: f64,
}

impl PendingGang {
    /// Total outstanding work of the gang (setup included), the
    /// quantity shortest-job backfill orders by. This is CPU *work*,
    /// not wall time — a partial gang running degraded takes longer on
    /// the wall clock but owes exactly this much machine time, so the
    /// backfill estimate stays rate-independent.
    pub fn total_outstanding(&self) -> f64 {
        f64::from(self.tasks) * (self.remaining + self.setup)
    }
}

/// Job-level queue admission: gangs leave only when they fit.
///
/// Under [`QueueDiscipline::Fcfs`] admission is strict — if the head
/// gang does not fit, nothing is dispatched (head-of-line blocking is
/// the price of co-allocation fairness, and what the fragmentation
/// metric prices). Under [`QueueDiscipline::SjfBackfill`] the smallest
/// fitting gang (by total outstanding work) jumps ahead; ties on the
/// key fall back to arrival order (stable FCFS tie-breaking — the
/// ordering uses [`f64::total_cmp`], so it is total and panic-free
/// even for pathological keys).
#[derive(Debug, Clone, Default)]
pub struct GangQueue {
    gangs: VecDeque<PendingGang>,
}

impl GangQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of waiting gangs.
    pub fn len(&self) -> usize {
        self.gangs.len()
    }

    /// Whether no gang is waiting.
    pub fn is_empty(&self) -> bool {
        self.gangs.is_empty()
    }

    /// Append a gang (arrival-order position).
    pub fn push(&mut self, gang: PendingGang) {
        self.gangs.push_back(gang);
    }

    /// Remove and return the next gang whose admission floor
    /// (`min_tasks`) fits into `free` machines under `discipline`, or
    /// `None` if nothing dispatchable.
    pub fn pop_fitting(&mut self, discipline: QueueDiscipline, free: usize) -> Option<PendingGang> {
        match discipline {
            QueueDiscipline::Fcfs => {
                let head = self.gangs.front()?;
                if head.min_tasks.max(1) as usize <= free {
                    self.gangs.pop_front()
                } else {
                    None
                }
            }
            QueueDiscipline::SjfBackfill => {
                // Iterator::min_by keeps the first of equally-minimum
                // elements, so equal outstanding-work keys preserve
                // arrival order.
                let best = self
                    .gangs
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.min_tasks.max(1) as usize <= free)
                    .min_by(|(_, a), (_, b)| {
                        a.total_outstanding().total_cmp(&b.total_outstanding())
                    })
                    .map(|(i, _)| i)?;
                self.gangs.remove(best)
            }
        }
    }

    /// Total remaining work queued across gangs (setup excluded).
    pub fn backlog(&self) -> f64 {
        self.gangs
            .iter()
            .map(|g| f64::from(g.tasks) * g.remaining)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gang(job: usize, tasks: u32, remaining: f64) -> PendingGang {
        PendingGang {
            job,
            tasks,
            min_tasks: tasks,
            demand: remaining,
            remaining,
            setup: 0.0,
            enqueued_at: 0.0,
        }
    }

    #[test]
    fn policy_names_parse_and_validate() {
        assert_eq!(GangPolicy::parse("off", 0.0, 1), Some(GangPolicy::Off));
        assert_eq!(
            GangPolicy::parse("suspend-all", 0.0, 1),
            Some(GangPolicy::SuspendAll)
        );
        assert_eq!(
            GangPolicy::parse("migrate-all", 3.0, 1),
            Some(GangPolicy::MigrateAll { overhead: 3.0 })
        );
        assert_eq!(
            GangPolicy::parse("partial", 0.0, 2),
            Some(GangPolicy::Partial { min_running: 2 })
        );
        assert_eq!(
            GangPolicy::parse("partial", 0.0, 0),
            Some(GangPolicy::Partial { min_running: 1 }),
            "the floor clamps up to one"
        );
        assert_eq!(GangPolicy::parse("nope", 0.0, 1), None);
        for p in [
            GangPolicy::Off,
            GangPolicy::SuspendAll,
            GangPolicy::MigrateAll { overhead: 3.0 },
            GangPolicy::Partial { min_running: 2 },
            GangPolicy::PartialFrac {
                min_running_frac: 0.5,
            },
        ] {
            assert!(p.validate().is_ok());
            assert!(p
                .label()
                .starts_with(p.name().split(['(', '-']).next().unwrap()));
        }
        assert!(GangPolicy::MigrateAll { overhead: -1.0 }
            .validate()
            .is_err());
        assert!(GangPolicy::MigrateAll { overhead: f64::NAN }
            .validate()
            .is_err());
        assert!(GangPolicy::Partial { min_running: 0 }.validate().is_err());
        assert!(GangPolicy::PartialFrac {
            min_running_frac: 0.0
        }
        .validate()
        .is_err());
        assert!(GangPolicy::PartialFrac {
            min_running_frac: 1.5
        }
        .validate()
        .is_err());
        assert!(GangPolicy::PartialFrac {
            min_running_frac: f64::NAN
        }
        .validate()
        .is_err());
        assert!(!GangPolicy::Off.is_on());
        assert!(GangPolicy::SuspendAll.is_on());
        assert!(GangPolicy::Partial { min_running: 1 }.is_on());
        assert!(GangPolicy::Partial { min_running: 1 }.is_partial());
        assert!(!GangPolicy::SuspendAll.is_partial());
        assert_eq!(GangPolicy::default(), GangPolicy::Off);
    }

    #[test]
    fn floors_resolve_per_gang_width() {
        // All-or-nothing policies floor at the full width.
        assert_eq!(GangPolicy::Off.floor_for(8), 8);
        assert_eq!(GangPolicy::SuspendAll.floor_for(8), 8);
        assert_eq!(GangPolicy::MigrateAll { overhead: 1.0 }.floor_for(8), 8);
        // Partial clamps into [1, tasks].
        assert_eq!(GangPolicy::Partial { min_running: 3 }.floor_for(8), 3);
        assert_eq!(GangPolicy::Partial { min_running: 3 }.floor_for(2), 2);
        assert_eq!(GangPolicy::Partial { min_running: 0 }.floor_for(8), 1);
        assert_eq!(
            GangPolicy::Partial {
                min_running: u32::MAX
            }
            .floor_for(5),
            5
        );
        // Fractional floors take the ceiling.
        let frac = |f| GangPolicy::PartialFrac {
            min_running_frac: f,
        };
        assert_eq!(frac(0.5).floor_for(8), 4);
        assert_eq!(frac(0.5).floor_for(7), 4);
        assert_eq!(frac(1.0).floor_for(8), 8);
        assert_eq!(frac(0.01).floor_for(8), 1);
        assert_eq!(frac(0.26).floor_for(4), 2);
    }

    #[test]
    fn fcfs_admission_is_strict_head_of_line() {
        let mut q = GangQueue::new();
        q.push(gang(0, 4, 50.0));
        q.push(gang(1, 1, 10.0));
        // Head needs 4; only 2 free: nothing dispatches, even though
        // the second gang would fit.
        assert_eq!(q.pop_fitting(QueueDiscipline::Fcfs, 2), None);
        assert_eq!(q.len(), 2);
        // 4 free: the head goes first.
        assert_eq!(q.pop_fitting(QueueDiscipline::Fcfs, 4).unwrap().job, 0);
        assert_eq!(q.pop_fitting(QueueDiscipline::Fcfs, 4).unwrap().job, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn partial_floor_admits_below_full_width() {
        let mut q = GangQueue::new();
        let mut wide = gang(0, 6, 50.0);
        wide.min_tasks = 2; // partial floor
        q.push(wide);
        // Two machines free: the 6-wide gang is admitted on its floor.
        let popped = q.pop_fitting(QueueDiscipline::Fcfs, 2).unwrap();
        assert_eq!(popped.job, 0);
        assert_eq!(popped.tasks, 6);
        // But one machine is below the floor.
        let mut q = GangQueue::new();
        let mut wide = gang(0, 6, 50.0);
        wide.min_tasks = 2;
        q.push(wide);
        assert_eq!(q.pop_fitting(QueueDiscipline::Fcfs, 1), None);
    }

    #[test]
    fn backfill_admits_the_smallest_fitting_gang() {
        let mut q = GangQueue::new();
        q.push(gang(0, 4, 50.0)); // 200 outstanding, does not fit
        q.push(gang(1, 2, 30.0)); // 60 outstanding, fits
        q.push(gang(2, 2, 10.0)); // 20 outstanding, fits — smallest
        assert_eq!(
            q.pop_fitting(QueueDiscipline::SjfBackfill, 2).unwrap().job,
            2
        );
        assert_eq!(
            q.pop_fitting(QueueDiscipline::SjfBackfill, 2).unwrap().job,
            1
        );
        assert_eq!(q.pop_fitting(QueueDiscipline::SjfBackfill, 2), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn backfill_counts_setup_toward_outstanding_work() {
        let mut q = GangQueue::new();
        let mut a = gang(0, 2, 10.0);
        a.setup = 25.0; // 70 total
        q.push(a);
        q.push(gang(1, 2, 30.0)); // 60 total
        assert_eq!(
            q.pop_fitting(QueueDiscipline::SjfBackfill, 2).unwrap().job,
            1
        );
    }

    #[test]
    fn backfill_ties_preserve_fcfs_order() {
        // Regression for the partial_cmp ordering: equal (NaN-free)
        // outstanding-work keys must dispatch in arrival order, run
        // after run — the SJF comparator is total and stable.
        let mut q = GangQueue::new();
        q.push(gang(5, 2, 30.0));
        q.push(gang(6, 2, 30.0));
        q.push(gang(7, 3, 20.0)); // same 60.0 key, third arrival
        assert_eq!(
            q.pop_fitting(QueueDiscipline::SjfBackfill, 4).unwrap().job,
            5
        );
        assert_eq!(
            q.pop_fitting(QueueDiscipline::SjfBackfill, 4).unwrap().job,
            6
        );
        assert_eq!(
            q.pop_fitting(QueueDiscipline::SjfBackfill, 4).unwrap().job,
            7
        );
    }

    #[test]
    fn backlog_sums_per_task_remaining() {
        let mut q = GangQueue::new();
        q.push(gang(0, 4, 50.0));
        q.push(gang(1, 2, 10.0));
        assert_eq!(q.backlog(), 220.0);
    }
}
