//! Gang scheduling / co-allocation: all-or-nothing jobs.
//!
//! The paper's parallel jobs are barrier-synchronized: a job only makes
//! progress while *all* of its tasks are simultaneously running, so a
//! single owner reclaiming a workstation stalls the whole gang. The
//! independent-task engine ([`crate::simulator`]) ignores that coupling
//! — each task runs and finishes on its own clock. This module supplies
//! the missing semantics:
//!
//! * [`GangPolicy`] — the co-allocation knob on
//!   [`crate::SchedConfig`]: `Off` keeps the independent-task engine
//!   (bit-for-bit), `SuspendAll` suspends the entire gang in place when
//!   any member's owner returns, `MigrateAll` pulls the whole gang back
//!   into the queue and re-places it as a unit.
//! * [`GangQueue`] — job-level queue admission: a gang leaves the queue
//!   only when enough machines are free for *every* task at once
//!   (strict head-of-line FCFS, or smallest-fitting-gang backfill under
//!   [`QueueDiscipline::SjfBackfill`]).
//! * [`GangStats`] — the co-allocation metrics: wait for co-allocation,
//!   gang fragmentation (free machine-time the waiting gangs could not
//!   use), and barrier-stall time (member-time frozen behind a peer's
//!   owner while the member's own machine was free).
//!
//! # Relation to the independent engine
//!
//! With `tasks = 1` every gang degenerates to a single task:
//! co-allocation is ordinary placement, suspend-all is suspend-resume,
//! and the engine reproduces the independent-task scheduler bit-for-bit
//! (the workspace's `gang_invariants` tests enforce this). With
//! `GangPolicy::Off` the gang paths are never entered at all.

use crate::queue::QueueDiscipline;
use std::collections::VecDeque;

/// How a job's tasks are co-scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GangPolicy {
    /// Independent-task scheduling — the engine's original semantics;
    /// every task is placed, run, and evicted on its own.
    #[default]
    Off,
    /// All-or-nothing co-allocation; when any member's owner returns
    /// the entire gang suspends in place (no work is ever lost, but
    /// every member stalls) and resumes once every member's owner is
    /// away again.
    SuspendAll,
    /// All-or-nothing co-allocation; when any member's owner returns
    /// the whole gang is pulled back into the queue with its progress
    /// intact and re-placed as a unit, each task paying `overhead` CPU
    /// time of setup before the gang computes again.
    MigrateAll {
        /// Per-task migration setup cost in CPU time units.
        overhead: f64,
    },
}

impl GangPolicy {
    /// Whether gang semantics are active.
    pub fn is_on(&self) -> bool {
        !matches!(self, Self::Off)
    }

    /// Short stable name for tables and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::SuspendAll => "suspend-all",
            Self::MigrateAll { .. } => "migrate-all",
        }
    }

    /// Human-readable label including parameters.
    pub fn label(&self) -> String {
        match self {
            Self::Off => "off".into(),
            Self::SuspendAll => "suspend-all".into(),
            Self::MigrateAll { overhead } => format!("migrate-all(c={overhead})"),
        }
    }

    /// Parse a CLI-style name (the `MigrateAll` overhead comes from a
    /// separate flag).
    pub fn parse(s: &str, overhead: f64) -> Option<Self> {
        match s {
            "off" => Some(Self::Off),
            "suspend-all" | "suspend" => Some(Self::SuspendAll),
            "migrate-all" | "migrate" => Some(Self::MigrateAll { overhead }),
            _ => None,
        }
    }

    /// Validate policy parameters.
    pub fn validate(&self) -> Result<(), (&'static str, String)> {
        match *self {
            Self::Off | Self::SuspendAll => Ok(()),
            Self::MigrateAll { overhead } => {
                if overhead.is_finite() && overhead >= 0.0 {
                    Ok(())
                } else {
                    Err((
                        "gang migrate-all overhead",
                        format!("{overhead} not finite >= 0"),
                    ))
                }
            }
        }
    }
}

/// Co-allocation metrics accumulated by one scheduler run. All zero
/// when [`GangPolicy::Off`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GangStats {
    /// Atomic gang starts (initial co-allocations plus re-placements).
    pub gang_starts: u64,
    /// Whole-gang suspensions (an owner reclaimed a member under
    /// [`GangPolicy::SuspendAll`]).
    pub gang_suspensions: u64,
    /// Whole-gang migrations back to the queue
    /// ([`GangPolicy::MigrateAll`]).
    pub gang_migrations: u64,
    /// Total time gangs spent waiting for co-allocation (job-level:
    /// each queue stay contributes once, not once per task).
    pub coalloc_wait: f64,
    /// Member-time stalled behind the barrier: the time-integral, over
    /// suspended gangs, of members whose own machine was owner-free but
    /// who could not run because a peer's machine was reclaimed.
    pub barrier_stall: f64,
    /// Gang fragmentation: the time-integral of free machines while at
    /// least one gang waited in the queue — capacity the scheduler
    /// could not use because no waiting gang fit into it.
    pub fragmentation: f64,
    /// Events at which some gang's members disagreed on their
    /// run/suspend state. Always zero: every state flip goes through
    /// one choke point that updates all members together, and the
    /// engine re-verifies the invariant at every gang event. The
    /// workspace's property tests assert this stays zero.
    pub lockstep_violations: u64,
}

/// One gang waiting for co-allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingGang {
    /// Index of the job this gang realizes.
    pub job: usize,
    /// Number of machines the gang needs at once.
    pub tasks: u32,
    /// Original per-task demand.
    pub demand: f64,
    /// Per-task work still owed.
    pub remaining: f64,
    /// Per-task setup owed before computing (migration restore cost).
    pub setup: f64,
    /// When this entry joined the queue.
    pub enqueued_at: f64,
}

impl PendingGang {
    /// Total outstanding work of the gang (setup included), the
    /// quantity shortest-job backfill orders by.
    pub fn total_outstanding(&self) -> f64 {
        f64::from(self.tasks) * (self.remaining + self.setup)
    }
}

/// Job-level queue admission: gangs leave only when they fit.
///
/// Under [`QueueDiscipline::Fcfs`] admission is strict — if the head
/// gang does not fit, nothing is dispatched (head-of-line blocking is
/// the price of co-allocation fairness, and what the fragmentation
/// metric prices). Under [`QueueDiscipline::SjfBackfill`] the smallest
/// fitting gang (by total outstanding work) jumps ahead.
#[derive(Debug, Clone, Default)]
pub struct GangQueue {
    gangs: VecDeque<PendingGang>,
}

impl GangQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of waiting gangs.
    pub fn len(&self) -> usize {
        self.gangs.len()
    }

    /// Whether no gang is waiting.
    pub fn is_empty(&self) -> bool {
        self.gangs.is_empty()
    }

    /// Append a gang (arrival-order position).
    pub fn push(&mut self, gang: PendingGang) {
        self.gangs.push_back(gang);
    }

    /// Remove and return the next gang that fits into `free` machines
    /// under `discipline`, or `None` if nothing dispatchable.
    pub fn pop_fitting(&mut self, discipline: QueueDiscipline, free: usize) -> Option<PendingGang> {
        match discipline {
            QueueDiscipline::Fcfs => {
                let head = self.gangs.front()?;
                if head.tasks as usize <= free {
                    self.gangs.pop_front()
                } else {
                    None
                }
            }
            QueueDiscipline::SjfBackfill => {
                let best = self
                    .gangs
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.tasks as usize <= free)
                    .min_by(|(_, a), (_, b)| {
                        a.total_outstanding()
                            .partial_cmp(&b.total_outstanding())
                            .expect("demands are finite")
                    })
                    .map(|(i, _)| i)?;
                self.gangs.remove(best)
            }
        }
    }

    /// Total remaining work queued across gangs (setup excluded).
    pub fn backlog(&self) -> f64 {
        self.gangs
            .iter()
            .map(|g| f64::from(g.tasks) * g.remaining)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gang(job: usize, tasks: u32, remaining: f64) -> PendingGang {
        PendingGang {
            job,
            tasks,
            demand: remaining,
            remaining,
            setup: 0.0,
            enqueued_at: 0.0,
        }
    }

    #[test]
    fn policy_names_parse_and_validate() {
        assert_eq!(GangPolicy::parse("off", 0.0), Some(GangPolicy::Off));
        assert_eq!(
            GangPolicy::parse("suspend-all", 0.0),
            Some(GangPolicy::SuspendAll)
        );
        assert_eq!(
            GangPolicy::parse("migrate-all", 3.0),
            Some(GangPolicy::MigrateAll { overhead: 3.0 })
        );
        assert_eq!(GangPolicy::parse("nope", 0.0), None);
        for p in [
            GangPolicy::Off,
            GangPolicy::SuspendAll,
            GangPolicy::MigrateAll { overhead: 3.0 },
        ] {
            assert!(p.validate().is_ok());
            assert!(p.label().starts_with(p.name().split('(').next().unwrap()));
        }
        assert!(GangPolicy::MigrateAll { overhead: -1.0 }
            .validate()
            .is_err());
        assert!(GangPolicy::MigrateAll { overhead: f64::NAN }
            .validate()
            .is_err());
        assert!(!GangPolicy::Off.is_on());
        assert!(GangPolicy::SuspendAll.is_on());
        assert_eq!(GangPolicy::default(), GangPolicy::Off);
    }

    #[test]
    fn fcfs_admission_is_strict_head_of_line() {
        let mut q = GangQueue::new();
        q.push(gang(0, 4, 50.0));
        q.push(gang(1, 1, 10.0));
        // Head needs 4; only 2 free: nothing dispatches, even though
        // the second gang would fit.
        assert_eq!(q.pop_fitting(QueueDiscipline::Fcfs, 2), None);
        assert_eq!(q.len(), 2);
        // 4 free: the head goes first.
        assert_eq!(q.pop_fitting(QueueDiscipline::Fcfs, 4).unwrap().job, 0);
        assert_eq!(q.pop_fitting(QueueDiscipline::Fcfs, 4).unwrap().job, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn backfill_admits_the_smallest_fitting_gang() {
        let mut q = GangQueue::new();
        q.push(gang(0, 4, 50.0)); // 200 outstanding, does not fit
        q.push(gang(1, 2, 30.0)); // 60 outstanding, fits
        q.push(gang(2, 2, 10.0)); // 20 outstanding, fits — smallest
        assert_eq!(
            q.pop_fitting(QueueDiscipline::SjfBackfill, 2).unwrap().job,
            2
        );
        assert_eq!(
            q.pop_fitting(QueueDiscipline::SjfBackfill, 2).unwrap().job,
            1
        );
        assert_eq!(q.pop_fitting(QueueDiscipline::SjfBackfill, 2), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn backfill_counts_setup_toward_outstanding_work() {
        let mut q = GangQueue::new();
        let mut a = gang(0, 2, 10.0);
        a.setup = 25.0; // 70 total
        q.push(a);
        q.push(gang(1, 2, 30.0)); // 60 total
        assert_eq!(
            q.pop_fitting(QueueDiscipline::SjfBackfill, 2).unwrap().job,
            1
        );
    }

    #[test]
    fn backlog_sums_per_task_remaining() {
        let mut q = GangQueue::new();
        q.push(gang(0, 4, 50.0));
        q.push(gang(1, 2, 10.0));
        assert_eq!(q.backlog(), 220.0);
    }
}
