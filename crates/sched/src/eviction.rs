//! Owner-return (eviction) policies.
//!
//! The paper's model fixes one policy: the task is suspended beneath the
//! owner and resumed afterwards, losing no work. Real cycle-stealing
//! systems of the era (Condor being the canonical one) had to choose,
//! because a suspended guest still occupies the owner's memory:
//!
//! * [`EvictionPolicy::Restart`] — kill the task; all progress is lost
//!   and it restarts from scratch elsewhere (early Condor without
//!   checkpointing).
//! * [`EvictionPolicy::SuspendResume`] — the paper's assumption: the
//!   task sleeps on the machine and resumes in place.
//! * [`EvictionPolicy::Migrate`] — the live task moves to another idle
//!   machine, keeping its progress but paying a fixed migration
//!   overhead before it computes again.
//! * [`EvictionPolicy::Checkpoint`] — the task checkpoints every
//!   `interval` units of *progress* at a cost of `overhead` CPU time per
//!   checkpoint; on eviction it restarts elsewhere from the last
//!   checkpoint, losing only the work since.
//! * [`EvictionPolicy::Adaptive`] — restart-like while the invested
//!   progress is below `threshold`, checkpointing once it crosses:
//!   cheap tasks are not worth a checkpoint's overhead, long tasks
//!   are (the trade-off machine crashes make observable).
//!
//! [`on_eviction`] is the pure accounting rule: given a policy and the
//! task's progress state at the eviction instant it reports what is
//! lost, what remains, and what setup cost the next placement pays. The
//! simulator applies it; the unit tests pin the semantics down.
//!
//! These policies act on one task at a time. When a
//! [`crate::gang::GangPolicy`] is active the gang policy supersedes
//! them: the whole gang suspends in place or migrates as a unit on any
//! member's owner return.

/// Smallest accepted checkpoint interval; values at or below the
/// simulator's work-completion epsilon cannot make forward progress.
pub const MIN_CHECKPOINT_INTERVAL: f64 = 1e-9;

/// What a workstation does to a guest task when its owner returns.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum EvictionPolicy {
    /// Kill the task and requeue it from scratch.
    Restart,
    /// Suspend in place, resume when the owner leaves (the paper's
    /// model; no work is ever lost).
    SuspendResume,
    /// Move the live task to the queue with progress intact; its next
    /// placement pays `overhead` CPU time of setup before computing.
    Migrate {
        /// Migration setup cost in CPU time units.
        overhead: f64,
    },
    /// Periodic checkpointing: every `interval` units of progress the
    /// task pays `overhead` CPU time to checkpoint; eviction loses only
    /// the progress since the last completed checkpoint.
    Checkpoint {
        /// Progress between checkpoints (work units, > 0).
        interval: f64,
        /// CPU cost of writing one checkpoint (>= 0).
        overhead: f64,
    },
    /// Invest-then-protect: behave like [`EvictionPolicy::Restart`]
    /// while the task's invested progress (`demand - remaining`) is
    /// below `threshold`, then switch to
    /// [`EvictionPolicy::Checkpoint`]-style periodic checkpointing.
    /// The first checkpoint is written as soon as the threshold is
    /// crossed (the accumulated progress immediately exceeds the
    /// interval), so crossing the threshold makes the investment
    /// durable.
    Adaptive {
        /// Invested progress at which checkpointing switches on
        /// (work units, >= 0; 0 checkpoints from the start).
        threshold: f64,
        /// Progress between checkpoints once protecting (> 0).
        interval: f64,
        /// CPU cost of writing one checkpoint (>= 0).
        overhead: f64,
    },
}

impl EvictionPolicy {
    /// Short stable name for tables and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Restart => "restart",
            Self::SuspendResume => "suspend-resume",
            Self::Migrate { .. } => "migrate",
            Self::Checkpoint { .. } => "checkpoint",
            Self::Adaptive { .. } => "adaptive",
        }
    }

    /// Human-readable label including parameters.
    pub fn label(&self) -> String {
        match self {
            Self::Restart => "restart".into(),
            Self::SuspendResume => "suspend-resume".into(),
            Self::Migrate { overhead } => format!("migrate(c={overhead})"),
            Self::Checkpoint { interval, overhead } => {
                format!("checkpoint(i={interval}, c={overhead})")
            }
            Self::Adaptive {
                threshold,
                interval,
                overhead,
            } => format!("adaptive(t={threshold}, i={interval}, c={overhead})"),
        }
    }

    /// Validate policy parameters.
    pub fn validate(&self) -> Result<(), (&'static str, String)> {
        match *self {
            Self::Restart | Self::SuspendResume => Ok(()),
            Self::Migrate { overhead } => {
                if overhead.is_finite() && overhead >= 0.0 {
                    Ok(())
                } else {
                    Err(("migrate overhead", format!("{overhead} not finite >= 0")))
                }
            }
            Self::Checkpoint { interval, overhead } => {
                // Intervals at or below the simulator's work epsilon would
                // make every Work segment zero-length and livelock the
                // checkpoint-write loop, so reject them outright.
                if !(interval.is_finite() && interval > MIN_CHECKPOINT_INTERVAL) {
                    Err((
                        "checkpoint interval",
                        format!("{interval} not finite > {MIN_CHECKPOINT_INTERVAL}"),
                    ))
                } else if !(overhead.is_finite() && overhead >= 0.0) {
                    Err(("checkpoint overhead", format!("{overhead} not finite >= 0")))
                } else {
                    Ok(())
                }
            }
            Self::Adaptive {
                threshold,
                interval,
                overhead,
            } => {
                if !(threshold.is_finite() && threshold >= 0.0) {
                    Err(("adaptive threshold", format!("{threshold} not finite >= 0")))
                } else {
                    // Once protecting, the parameters are a checkpoint
                    // policy and share its constraints.
                    Self::Checkpoint { interval, overhead }.validate()
                }
            }
        }
    }
}

/// The accounting consequences of one eviction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvictionOutcome {
    /// Whether the task leaves the machine for the central queue
    /// (`false` only for [`EvictionPolicy::SuspendResume`]).
    pub requeue: bool,
    /// Progress destroyed by this eviction (counted as wasted work).
    pub lost: f64,
    /// Work the task still owes after the eviction.
    pub new_remaining: f64,
    /// Setup CPU time its next placement must serve before computing.
    pub setup: f64,
}

/// Apply `policy` to a task with total `demand`, `remaining` work at the
/// eviction instant, and `since_checkpoint` progress not yet covered by
/// a checkpoint.
///
/// For policies without checkpointing, pass the progress made in the
/// current placement as `since_checkpoint`; under
/// [`EvictionPolicy::Restart`] semantics it is ignored (everything is
/// lost anyway).
///
/// # Crash-path accounting
///
/// This rule covers *owner reclaims* only. A machine **crash**
/// (fault injection via [`crate::failure::FailureModel`]) is handled by
/// the simulator with harsher semantics that ignore the suspend option:
///
/// * [`EvictionPolicy::SuspendResume`] victims — and any guest already
///   suspended in place when the machine dies — lose *all* progress and
///   requeue with `new_remaining == demand` (suspension state does not
///   survive a power cycle);
/// * [`EvictionPolicy::Restart`], [`EvictionPolicy::Migrate`] and the
///   pre-threshold phase of [`EvictionPolicy::Adaptive`] likewise lose
///   everything (a crash can't hand over a live image, so Migrate's
///   keep-progress path doesn't apply);
/// * [`EvictionPolicy::Checkpoint`] (and post-threshold `Adaptive`)
///   victims roll back to the last *durable* checkpoint: work since it
///   is lost, and a checkpoint write in flight at the crash instant is
///   itself lost (its served CPU counts as checkpoint overhead but the
///   checkpoint does not commit).
///
/// Crash-destroyed progress is accounted in `SchedMetrics::wasted`
/// like eviction losses, with the crash-attributed share broken out in
/// `SchedMetrics::crash_lost`.
pub fn on_eviction(
    policy: EvictionPolicy,
    demand: f64,
    remaining: f64,
    since_checkpoint: f64,
) -> EvictionOutcome {
    match policy {
        EvictionPolicy::Restart => EvictionOutcome {
            requeue: true,
            lost: demand - remaining,
            new_remaining: demand,
            setup: 0.0,
        },
        EvictionPolicy::SuspendResume => EvictionOutcome {
            requeue: false,
            lost: 0.0,
            new_remaining: remaining,
            setup: 0.0,
        },
        EvictionPolicy::Migrate { overhead } => EvictionOutcome {
            requeue: true,
            lost: 0.0,
            new_remaining: remaining,
            setup: overhead,
        },
        EvictionPolicy::Checkpoint { .. } => EvictionOutcome {
            requeue: true,
            lost: since_checkpoint,
            new_remaining: remaining + since_checkpoint,
            setup: 0.0,
        },
        EvictionPolicy::Adaptive { threshold, .. } => {
            if demand - remaining < threshold {
                // Not yet worth protecting: plain restart.
                EvictionOutcome {
                    requeue: true,
                    lost: demand - remaining,
                    new_remaining: demand,
                    setup: 0.0,
                }
            } else {
                // Protecting: roll back to the last durable checkpoint.
                EvictionOutcome {
                    requeue: true,
                    lost: since_checkpoint,
                    new_remaining: remaining + since_checkpoint,
                    setup: 0.0,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_loses_everything() {
        let out = on_eviction(EvictionPolicy::Restart, 100.0, 30.0, 12.0);
        assert!(out.requeue);
        assert_eq!(out.lost, 70.0);
        assert_eq!(out.new_remaining, 100.0);
        assert_eq!(out.setup, 0.0);
    }

    #[test]
    fn suspend_loses_nothing_and_stays() {
        let out = on_eviction(EvictionPolicy::SuspendResume, 100.0, 30.0, 12.0);
        assert!(!out.requeue);
        assert_eq!(out.lost, 0.0);
        assert_eq!(out.new_remaining, 30.0);
    }

    #[test]
    fn migrate_keeps_progress_but_pays_setup() {
        let out = on_eviction(EvictionPolicy::Migrate { overhead: 5.0 }, 100.0, 30.0, 12.0);
        assert!(out.requeue);
        assert_eq!(out.lost, 0.0);
        assert_eq!(out.new_remaining, 30.0);
        assert_eq!(out.setup, 5.0);
    }

    #[test]
    fn checkpoint_rolls_back_to_last_checkpoint() {
        let policy = EvictionPolicy::Checkpoint {
            interval: 25.0,
            overhead: 1.0,
        };
        // 70 done, 12 of those since the last checkpoint.
        let out = on_eviction(policy, 100.0, 30.0, 12.0);
        assert!(out.requeue);
        assert_eq!(out.lost, 12.0);
        assert_eq!(out.new_remaining, 42.0);
        assert_eq!(out.setup, 0.0);
    }

    #[test]
    fn adaptive_restarts_below_threshold_and_rolls_back_above() {
        let policy = EvictionPolicy::Adaptive {
            threshold: 50.0,
            interval: 25.0,
            overhead: 1.0,
        };
        // Invested 20 < 50: restart semantics.
        let out = on_eviction(policy, 100.0, 80.0, 20.0);
        assert!(out.requeue);
        assert_eq!(out.lost, 20.0);
        assert_eq!(out.new_remaining, 100.0);
        // Invested 70 >= 50: checkpoint semantics.
        let out = on_eviction(policy, 100.0, 30.0, 12.0);
        assert!(out.requeue);
        assert_eq!(out.lost, 12.0);
        assert_eq!(out.new_remaining, 42.0);
        // Exactly at the threshold the task is already protecting.
        let out = on_eviction(policy, 100.0, 50.0, 5.0);
        assert_eq!(out.lost, 5.0);
    }

    #[test]
    fn conservation_demand_is_preserved() {
        // For every policy: retained progress + new_remaining == demand.
        for (policy, since) in [
            (EvictionPolicy::Restart, 12.0),
            (EvictionPolicy::SuspendResume, 12.0),
            (EvictionPolicy::Migrate { overhead: 3.0 }, 12.0),
            (
                EvictionPolicy::Checkpoint {
                    interval: 25.0,
                    overhead: 1.0,
                },
                12.0,
            ),
            (
                EvictionPolicy::Adaptive {
                    threshold: 50.0,
                    interval: 25.0,
                    overhead: 1.0,
                },
                12.0,
            ),
            (
                EvictionPolicy::Adaptive {
                    threshold: 90.0,
                    interval: 25.0,
                    overhead: 1.0,
                },
                12.0,
            ),
        ] {
            let (demand, remaining) = (100.0, 30.0);
            let out = on_eviction(policy, demand, remaining, since);
            let retained = demand - remaining - out.lost;
            assert!(
                (retained + out.new_remaining - demand).abs() < 1e-12,
                "{policy:?}"
            );
        }
    }

    #[test]
    fn names_and_labels() {
        assert_eq!(EvictionPolicy::Restart.name(), "restart");
        assert_eq!(
            EvictionPolicy::Checkpoint {
                interval: 10.0,
                overhead: 0.5
            }
            .label(),
            "checkpoint(i=10, c=0.5)"
        );
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(EvictionPolicy::Restart.validate().is_ok());
        assert!(EvictionPolicy::Migrate { overhead: -1.0 }
            .validate()
            .is_err());
        assert!(EvictionPolicy::Checkpoint {
            interval: 0.0,
            overhead: 1.0
        }
        .validate()
        .is_err());
        // Sub-epsilon intervals would livelock the checkpoint-write loop.
        assert!(EvictionPolicy::Checkpoint {
            interval: 1e-13,
            overhead: 1.0
        }
        .validate()
        .is_err());
        assert!(EvictionPolicy::Checkpoint {
            interval: 10.0,
            overhead: f64::NAN
        }
        .validate()
        .is_err());
        assert!(EvictionPolicy::Adaptive {
            threshold: -1.0,
            interval: 10.0,
            overhead: 0.5
        }
        .validate()
        .is_err());
        assert!(EvictionPolicy::Adaptive {
            threshold: 5.0,
            interval: 0.0,
            overhead: 0.5
        }
        .validate()
        .is_err());
        assert!(EvictionPolicy::Adaptive {
            threshold: 5.0,
            interval: 10.0,
            overhead: 0.5
        }
        .validate()
        .is_ok());
    }
}
