//! Machine failure injection: per-machine crash/repair processes.
//!
//! The paper's model reclaims workstations benignly — an owner returns,
//! the guest suspends, no work is destroyed. Real cycle-stealing fleets
//! also lose machines outright: a crash kills the running guest
//! regardless of eviction policy, destroys any suspended-in-place
//! guest's progress, invalidates a checkpoint mid-write, and removes
//! the machine from the pool until repair. [`FailureModel`] describes
//! that process: each machine alternates between *up* intervals drawn
//! from the MTBF lifetime and *down* intervals drawn from the MTTR
//! lifetime, independently of the owner's think/use cycle.
//!
//! Crash semantics (distinct from owner reclaim — see
//! [`crate::eviction::on_eviction`] for the reclaim-side accounting):
//!
//! * a guest running or suspended-in-place on the crashed machine loses
//!   **all** progress and restarts from zero, whatever the eviction
//!   policy — suspension state does not survive a power cycle;
//! * a [`crate::EvictionPolicy::Checkpoint`] guest rolls back to its
//!   last *durable* checkpoint: work since that checkpoint is lost, and
//!   a checkpoint still being written when the crash lands is itself
//!   lost (the write interval is charged as overhead but does not
//!   commit);
//! * a gang member's crash routes through the gang policy's reclaim
//!   path, exactly like an owner arrival on that member;
//! * the machine leaves the pool's candidate index and availability
//!   integral until repair, and the down machine-time accumulates in
//!   [`crate::SchedMetrics::downtime`].

use nds_stats::{
    BoundedPareto, Distribution, Exponential, StatsError, Weibull, Xoshiro256StarStar,
};

/// A positively supported lifetime distribution for machine uptime
/// (MTBF) or repair time (MTTR) draws.
///
/// Each variant wraps a validated [`nds_stats`] distribution, so every
/// reachable value samples finite positive lifetimes. Sampling consumes
/// exactly one uniform per draw for every variant, which keeps failure
/// streams aligned across eviction policies.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Lifetime {
    /// Memoryless lifetimes (constant hazard) — the classic MTBF model.
    Exponential(Exponential),
    /// Weibull lifetimes: shape < 1 infant mortality, shape > 1 wear-out.
    Weibull(Weibull),
    /// Heavy-tailed lifetimes (rare, very long intervals).
    BoundedPareto(BoundedPareto),
}

impl Lifetime {
    /// Memoryless lifetime with the given `mean > 0`.
    pub fn exponential(mean: f64) -> Result<Self, StatsError> {
        Exponential::with_mean(mean).map(Self::Exponential)
    }

    /// Weibull lifetime with `shape > 0` and target `mean > 0`.
    pub fn weibull(shape: f64, mean: f64) -> Result<Self, StatsError> {
        Weibull::with_mean(shape, mean).map(Self::Weibull)
    }

    /// Heavy-tailed lifetime on `[low, high)` with tail index `alpha`.
    pub fn bounded_pareto(alpha: f64, low: f64, high: f64) -> Result<Self, StatsError> {
        BoundedPareto::new(alpha, low, high).map(Self::BoundedPareto)
    }

    /// Expected lifetime.
    pub fn mean(&self) -> f64 {
        match self {
            Self::Exponential(d) => d.mean(),
            Self::Weibull(d) => d.mean(),
            Self::BoundedPareto(d) => d.mean(),
        }
    }

    /// Draw one lifetime; consumes exactly one uniform.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        match self {
            Self::Exponential(d) => d.sample(rng),
            Self::Weibull(d) => d.sample(rng),
            Self::BoundedPareto(d) => d.sample(rng),
        }
    }

    /// Short human label for figure axes and `Sim::label`.
    pub fn label(&self) -> String {
        match self {
            Self::Exponential(d) => format!("exp({:.4})", d.mean()),
            Self::Weibull(d) => format!("weibull(k={:.4}, mean {:.4})", d.shape(), self.mean()),
            Self::BoundedPareto(d) => {
                format!(
                    "pareto(a={:.4}, [{:.4}, {:.4}))",
                    d.alpha(),
                    d.low(),
                    d.high()
                )
            }
        }
    }

    /// Re-check the wrapped distribution in the `(field, reason)` shape
    /// the scheduler's config validation chain uses.
    fn validate(&self, field: &'static str) -> Result<(), (&'static str, String)> {
        let m = self.mean();
        if m.is_finite() && m > 0.0 {
            Ok(())
        } else {
            Err((field, format!("mean lifetime {m} not finite > 0")))
        }
    }
}

/// Per-machine crash/repair process: machines alternate up intervals
/// drawn from `mtbf` and down intervals drawn from `mttr`, on an RNG
/// stream independent of the owner and placement streams (so a
/// no-failure run's sample paths are untouched).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Lifetime between repair (or start) and the next crash.
    pub mtbf: Lifetime,
    /// Repair time: how long a crashed machine stays out of the pool.
    pub mttr: Lifetime,
}

impl FailureModel {
    /// The classic memoryless model: exponential uptime with mean
    /// `mtbf > 0`, exponential repair with mean `mttr > 0`.
    pub fn exponential(mtbf: f64, mttr: f64) -> Result<Self, StatsError> {
        Ok(Self {
            mtbf: Lifetime::exponential(mtbf)?,
            mttr: Lifetime::exponential(mttr)?,
        })
    }

    /// Arbitrary lifetimes for uptime and repair.
    pub fn new(mtbf: Lifetime, mttr: Lifetime) -> Self {
        Self { mtbf, mttr }
    }

    /// Steady-state availability of one machine:
    /// `MTBF / (MTBF + MTTR)`.
    pub fn availability(&self) -> f64 {
        let up = self.mtbf.mean();
        let down = self.mttr.mean();
        up / (up + down)
    }

    /// Validate in the `(field, reason)` shape shared with
    /// [`crate::EvictionPolicy::validate`] and `GangPolicy::validate`,
    /// so the builder maps failures through the same typed-error path.
    pub fn validate(&self) -> Result<(), (&'static str, String)> {
        self.mtbf.validate("failure mtbf")?;
        self.mttr.validate("failure mttr")
    }

    /// Short human label: `mtbf exp(500)/mttr exp(30)`.
    pub fn label(&self) -> String {
        format!("mtbf {}/mttr {}", self.mtbf.label(), self.mttr.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate_through_stats() {
        assert!(FailureModel::exponential(500.0, 30.0).is_ok());
        assert!(FailureModel::exponential(0.0, 30.0).is_err());
        assert!(FailureModel::exponential(500.0, -1.0).is_err());
        assert!(Lifetime::weibull(0.0, 10.0).is_err());
        assert!(Lifetime::bounded_pareto(1.5, 10.0, 5.0).is_err());
    }

    #[test]
    fn availability_matches_renewal_formula() {
        let f = FailureModel::exponential(900.0, 100.0).unwrap();
        assert!((f.availability() - 0.9).abs() < 1e-12);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn samples_are_positive_and_deterministic() {
        let lifetimes = [
            Lifetime::exponential(100.0).unwrap(),
            Lifetime::weibull(0.7, 100.0).unwrap(),
            Lifetime::bounded_pareto(1.5, 1.0, 1000.0).unwrap(),
        ];
        for d in lifetimes {
            let mut a = Xoshiro256StarStar::new(42);
            let mut b = Xoshiro256StarStar::new(42);
            for _ in 0..1_000 {
                let x = d.sample(&mut a);
                assert!(x > 0.0 && x.is_finite(), "{d:?} drew {x}");
                assert_eq!(x, d.sample(&mut b), "same seed must replay");
            }
        }
    }

    #[test]
    fn one_draw_per_sample_across_variants() {
        // Every variant must consume exactly one uniform, so swapping
        // lifetime families never shifts the failure stream phase.
        for d in [
            Lifetime::exponential(10.0).unwrap(),
            Lifetime::weibull(2.0, 10.0).unwrap(),
            Lifetime::bounded_pareto(2.0, 1.0, 100.0).unwrap(),
        ] {
            let mut rng = Xoshiro256StarStar::new(7);
            let mut probe = Xoshiro256StarStar::new(7);
            d.sample(&mut rng);
            probe.next_f64_open();
            assert_eq!(
                rng.next_f64(),
                probe.next_f64(),
                "{d:?} must consume exactly one uniform"
            );
        }
    }

    #[test]
    fn labels_are_distinct() {
        let f = FailureModel::new(
            Lifetime::weibull(0.7, 500.0).unwrap(),
            Lifetime::exponential(25.0).unwrap(),
        );
        assert!(f.label().contains("weibull"));
        assert!(f.label().contains("exp"));
    }
}
