//! The scheduler's flight recorder: zero-cost structured tracing,
//! sim-time metrics, and per-event-type wall-clock profiling.
//!
//! # Architecture
//!
//! [`SchedTracer`] mirrors `nds-des`'s calendar-level
//! [`nds_des::Tracer`] one layer up: the simulator's event handlers are
//! generic over it, every emission site is guarded by
//! `if T::ENABLED`, and the zero-sized [`nds_des::NoTrace`] (the
//! default everywhere) sets `ENABLED = false`, so the untraced engine
//! monomorphizes to exactly the pre-tracing hot path — bit-identical
//! outputs, no measurable overhead (pinned by `perf_core --smoke`
//! against `BENCH_core.json`).
//!
//! [`FlightRecorder`] is the everything-on implementation:
//!
//! * a [`SchedRecord`] event log (placements, segments, evictions,
//!   owner activity, gang lifecycle), exportable as JSONL
//!   ([`FlightRecorder::to_jsonl`]) and as Chrome trace-event JSON
//!   loadable in Perfetto ([`FlightRecorder::to_chrome_json`]) — one
//!   track per machine, spans for job segments, instants for
//!   arrivals/reclaims/evictions;
//! * a [`MetricsRegistry`] sampling queue depth, free machines,
//!   running/degraded gangs, and the accounting totals on a fixed
//!   sim-time grid ([`FlightRecorder::metrics_json`]), plus per-machine
//!   owner-reclaim activity;
//! * a [`Profiler`] attributing host (wall-clock) nanoseconds and
//!   counts to each scheduler event type
//!   ([`FlightRecorder::profile_json`]).
//!
//! Records are emitted in event-execution order and carry only
//! simulation state, so two runs of one replication produce
//! byte-identical JSONL regardless of host timing or replication
//! sharding (the workspace's trace determinism test pins this). Host
//! time appears *only* in the profile export.

use nds_des::registry::{json_num, json_str};
use nds_des::{MetricsRegistry, NoTrace, QuantileSketch, SeriesId, SimTime};
use std::fmt::Write as _;

/// Observer of the scheduler engine's event handling. All hooks
/// default to no-ops; [`NoTrace`] additionally sets `ENABLED = false`,
/// which removes the hook sites at monomorphization time.
pub trait SchedTracer {
    /// Guard constant checked at every emission site.
    const ENABLED: bool = true;

    /// A structured scheduling occurrence at sim time `now`.
    #[inline]
    fn record(&mut self, now: f64, record: SchedRecord) {
        let _ = (now, record);
    }

    /// The engine's aggregate state after handling the event at `now`.
    /// Only called when [`SchedTracer::wants_state`] returned `true`
    /// for `now` — gathering the sample walks the gang table, so
    /// cheap-tier tracers throttle it to the metrics grid.
    #[inline]
    fn state(&mut self, now: f64, sample: &StateSample) {
        let _ = (now, sample);
    }

    /// One calendar event of class `class` was handled at sim time
    /// `now`, in `nanos` host nanoseconds (`0` when
    /// [`SchedTracer::profile_enabled`] is `false` — the engine skips
    /// the wall-clock reads entirely).
    #[inline]
    fn handled(&mut self, now: f64, class: EventClass, nanos: u64) {
        let _ = (now, class, nanos);
    }

    /// A per-job scalar observation (response time, queue wait, ...)
    /// at sim time `now`, for bounded-memory quantile sketches.
    #[inline]
    fn observe(&mut self, now: f64, kind: ObsKind, value: f64) {
        let _ = (now, kind, value);
    }

    /// `n` identical observations at once (a gang admitting `n` tasks
    /// reports one wait `n` times). Semantically `n` calls to
    /// [`SchedTracer::observe`] — which is the default — but foldable
    /// in O(1) by sketch-backed tracers.
    #[inline]
    fn observe_n(&mut self, now: f64, kind: ObsKind, value: f64, n: u32) {
        for _ in 0..n {
            self.observe(now, kind, value);
        }
    }

    /// Whether the engine should pay for the two `Instant::now()`
    /// reads per event that feed [`SchedTracer::handled`]'s `nanos`.
    /// At multi-million-events/sec rates the clock alone exceeds the
    /// cheap tier's overhead budget, so bounded-cost tracers say no.
    #[inline]
    fn profile_enabled(&self) -> bool {
        true
    }

    /// Whether this tracer wants a [`StateSample`] at sim time `now`.
    /// Returning `false` skips gathering entirely.
    #[inline]
    fn wants_state(&self, now: f64) -> bool {
        let _ = now;
        true
    }
}

/// Tracing disabled: the scheduler's hot path compiles exactly as if
/// the hooks did not exist.
impl SchedTracer for NoTrace {
    const ENABLED: bool = false;
}

/// The scalar observation streams the engine feeds into quantile
/// sketches via [`SchedTracer::observe`] — one per headline
/// per-job/per-placement latency signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsKind {
    /// Job completion time minus arrival time.
    Response,
    /// Time a task (or admitted gang member) spent queued before
    /// being placed.
    QueueWait,
    /// Response divided by the job's processing demand.
    Slowdown,
    /// Time a gang spent waiting for atomic co-allocation.
    CoallocWait,
}

impl ObsKind {
    /// Every kind, in stable export order.
    pub const ALL: [ObsKind; 4] = [
        Self::Response,
        Self::QueueWait,
        Self::Slowdown,
        Self::CoallocWait,
    ];

    /// Stable snake_case name used as the histogram series name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Response => "response",
            Self::QueueWait => "queue_wait",
            Self::Slowdown => "slowdown",
            Self::CoallocWait => "coalloc_wait",
        }
    }

    fn index(self) -> usize {
        match self {
            Self::Response => 0,
            Self::QueueWait => 1,
            Self::Slowdown => 2,
            Self::CoallocWait => 3,
        }
    }
}

/// The scheduler's event vocabulary, as seen by the profiler — one
/// class per `SchedEvent` variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// An owner returned to their workstation.
    OwnerArrival,
    /// An owner left their workstation idle.
    OwnerDeparture,
    /// A job reached the central queue.
    JobArrival,
    /// An independent task's segment ran out.
    SegmentEnd,
    /// A gang's job-level segment ran out.
    GangSegmentEnd,
    /// A machine crashed (fault injection).
    MachineFailure,
    /// A crashed machine came back up.
    MachineRepair,
}

impl EventClass {
    /// Every class, in stable export order.
    pub const ALL: [EventClass; 7] = [
        Self::OwnerArrival,
        Self::OwnerDeparture,
        Self::JobArrival,
        Self::SegmentEnd,
        Self::GangSegmentEnd,
        Self::MachineFailure,
        Self::MachineRepair,
    ];

    /// Stable snake_case name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::OwnerArrival => "owner_arrival",
            Self::OwnerDeparture => "owner_departure",
            Self::JobArrival => "job_arrival",
            Self::SegmentEnd => "segment_end",
            Self::GangSegmentEnd => "gang_segment_end",
            Self::MachineFailure => "machine_failure",
            Self::MachineRepair => "machine_repair",
        }
    }

    fn index(self) -> usize {
        match self {
            Self::OwnerArrival => 0,
            Self::OwnerDeparture => 1,
            Self::JobArrival => 2,
            Self::SegmentEnd => 3,
            Self::GangSegmentEnd => 4,
            Self::MachineFailure => 5,
            Self::MachineRepair => 6,
        }
    }
}

/// What kind of work a guest segment performs (mirrors the simulator's
/// internal segment split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Migration restore (wasted work by definition).
    Setup,
    /// Real progress.
    Work,
    /// Checkpoint write (overhead).
    CkptWrite,
}

impl SegmentKind {
    /// Stable snake_case name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Setup => "setup",
            Self::Work => "work",
            Self::CkptWrite => "ckpt_write",
        }
    }
}

/// How an owner reclaim was resolved for the displaced guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionAction {
    /// Suspended in place beneath the owner.
    Suspend,
    /// Killed; all progress lost.
    Restart,
    /// Re-queued with a migration setup debt.
    Migrate,
    /// Rolled back to the last checkpoint and re-queued.
    Rollback,
}

impl EvictionAction {
    /// Stable snake_case name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Suspend => "suspend",
            Self::Restart => "restart",
            Self::Migrate => "migrate",
            Self::Rollback => "rollback",
        }
    }
}

/// One structured scheduling occurrence. `Copy`, fixed-size — the
/// recorder buffers these raw and renders text only at export time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedRecord {
    /// Job `job` reached the central queue.
    JobArrival { job: u32 },
    /// A task (or gang member `task` of a gang job) was placed on
    /// `machine`.
    TaskPlaced { machine: u32, job: u32, task: u32 },
    /// A segment opened on `machine`, scheduled to run `wall` sim-time
    /// units.
    SegmentStart {
        machine: u32,
        job: u32,
        task: u32,
        kind: SegmentKind,
        wall: f64,
    },
    /// The segment on `machine` ran to completion.
    SegmentEnd {
        machine: u32,
        job: u32,
        task: u32,
        kind: SegmentKind,
    },
    /// The segment on `machine` was cut short (owner reclaim, gang
    /// rate change).
    SegmentPreempted {
        machine: u32,
        job: u32,
        task: u32,
        kind: SegmentKind,
    },
    /// Task `task` of `job` finished on `machine`.
    TaskCompleted { machine: u32, job: u32, task: u32 },
    /// Every task of `job` finished.
    JobCompleted { job: u32 },
    /// The owner of `machine` returned.
    OwnerArrival { machine: u32 },
    /// The owner of `machine` left again.
    OwnerDeparture { machine: u32 },
    /// The owner's return displaced the guest on `machine`, resolved
    /// by `action`.
    Eviction {
        machine: u32,
        job: u32,
        task: u32,
        action: EvictionAction,
    },
    /// Gang `job` was co-allocated onto `members` machines.
    GangAdmitted { job: u32, members: u32 },
    /// Gang `job` dropped below its floor and froze in place.
    GangSuspended { job: u32 },
    /// Gang `job` was migrated back to the co-allocation queue.
    GangMigrated { job: u32 },
    /// `machine` crashed: its guest (running or suspended) loses
    /// progress per the crash semantics and the machine leaves the
    /// pool until repair.
    MachineFailure { machine: u32 },
    /// `machine` was repaired and rejoined the pool.
    MachineRepair { machine: u32 },
}

impl SchedRecord {
    /// Number of record classes (variants).
    pub const COUNT: usize = 15;

    /// Class index of [`SchedRecord::OwnerArrival`], for mask math.
    pub const OWNER_ARRIVAL_INDEX: usize = 7;

    /// Class index of [`SchedRecord::Eviction`], for mask math.
    pub const EVICTION_INDEX: usize = 9;

    /// This record's class index, in declaration order — the position
    /// of its [`SchedRecord::kind_name`] in [`RecordFilter::KINDS`].
    #[inline]
    pub fn class_index(&self) -> usize {
        match self {
            Self::JobArrival { .. } => 0,
            Self::TaskPlaced { .. } => 1,
            Self::SegmentStart { .. } => 2,
            Self::SegmentEnd { .. } => 3,
            Self::SegmentPreempted { .. } => 4,
            Self::TaskCompleted { .. } => 5,
            Self::JobCompleted { .. } => 6,
            Self::OwnerArrival { .. } => 7,
            Self::OwnerDeparture { .. } => 8,
            Self::Eviction { .. } => 9,
            Self::GangAdmitted { .. } => 10,
            Self::GangSuspended { .. } => 11,
            Self::GangMigrated { .. } => 12,
            Self::MachineFailure { .. } => 13,
            Self::MachineRepair { .. } => 14,
        }
    }

    /// Stable snake_case name of the record type.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Self::JobArrival { .. } => "job_arrival",
            Self::TaskPlaced { .. } => "task_placed",
            Self::SegmentStart { .. } => "segment_start",
            Self::SegmentEnd { .. } => "segment_end",
            Self::SegmentPreempted { .. } => "segment_preempted",
            Self::TaskCompleted { .. } => "task_completed",
            Self::JobCompleted { .. } => "job_completed",
            Self::OwnerArrival { .. } => "owner_arrival",
            Self::OwnerDeparture { .. } => "owner_departure",
            Self::Eviction { .. } => "eviction",
            Self::GangAdmitted { .. } => "gang_admitted",
            Self::GangSuspended { .. } => "gang_suspended",
            Self::GangMigrated { .. } => "gang_migrated",
            Self::MachineFailure { .. } => "machine_failure",
            Self::MachineRepair { .. } => "machine_repair",
        }
    }
}

/// Which [`SchedRecord`] classes a recorder keeps, plus deterministic
/// 1-in-N sampling. Admission is keyed on a per-class sequence number
/// — never on RNG or host state — so two runs of one replication admit
/// exactly the same records and filtered traces stay byte-identical
/// across hosts and sharding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordFilter {
    /// Bit `i` set ⇔ class `i` (declaration order) is kept.
    mask: u16,
    /// Keep every `every`-th admitted-class record (1 = keep all).
    every: u32,
    /// Per-class occurrence counters driving the 1-in-N sampling.
    seq: [u32; SchedRecord::COUNT],
}

impl RecordFilter {
    /// Every record class's stable snake_case name, in declaration
    /// order — index `i` names class `i` of
    /// [`SchedRecord::class_index`]. The nds-lint `event-coverage`
    /// rule cross-checks this array against the `SchedRecord` enum, so
    /// adding a variant without extending the filter fails CI.
    pub const KINDS: [&'static str; SchedRecord::COUNT] = [
        "job_arrival",
        "task_placed",
        "segment_start",
        "segment_end",
        "segment_preempted",
        "task_completed",
        "job_completed",
        "owner_arrival",
        "owner_departure",
        "eviction",
        "gang_admitted",
        "gang_suspended",
        "gang_migrated",
        "machine_failure",
        "machine_repair",
    ];

    /// Keep every record of every class.
    pub fn all() -> Self {
        Self {
            mask: (1 << SchedRecord::COUNT) - 1,
            every: 1,
            seq: [0; SchedRecord::COUNT],
        }
    }

    /// Drop every record.
    pub fn none() -> Self {
        Self {
            mask: 0,
            ..Self::all()
        }
    }

    /// The cheap tier's default: job- and gang-lifecycle records plus
    /// evictions and machine failure/repair, with the per-segment
    /// firehose (placements, segment start/end/preempt, task
    /// completions, owner activity) dropped.
    pub fn cheap() -> Self {
        Self::none().with(&[
            "job_arrival",
            "job_completed",
            "eviction",
            "gang_admitted",
            "gang_suspended",
            "gang_migrated",
            "machine_failure",
            "machine_repair",
        ])
    }

    /// Additionally keep the named classes.
    ///
    /// # Panics
    ///
    /// If a name is not one of [`RecordFilter::KINDS`].
    #[must_use]
    pub fn with(mut self, kinds: &[&str]) -> Self {
        for kind in kinds {
            self.mask |= 1 << Self::index_of(kind);
        }
        self
    }

    /// Drop the named classes.
    ///
    /// # Panics
    ///
    /// If a name is not one of [`RecordFilter::KINDS`].
    #[must_use]
    pub fn without(mut self, kinds: &[&str]) -> Self {
        for kind in kinds {
            self.mask &= !(1 << Self::index_of(kind));
        }
        self
    }

    /// Keep only every `n`-th record of each admitted class (the
    /// first, the `n+1`-th, ... — counted per class).
    ///
    /// # Panics
    ///
    /// If `n` is zero.
    #[must_use]
    pub fn sample_every(mut self, n: u32) -> Self {
        assert!(n > 0, "sampling period must be at least 1, got {n}");
        self.every = n;
        self
    }

    /// Whether records of the named class are currently kept.
    ///
    /// # Panics
    ///
    /// If the name is not one of [`RecordFilter::KINDS`].
    pub fn keeps(&self, kind: &str) -> bool {
        self.mask & (1 << Self::index_of(kind)) != 0
    }

    /// Admit or drop `record`, advancing the per-class sequence. The
    /// sequence counts every *offered* record of an admitted class, so
    /// admission depends only on the record stream itself.
    pub fn admit(&mut self, record: &SchedRecord) -> bool {
        let i = record.class_index();
        if self.mask & (1 << i) == 0 {
            return false;
        }
        let s = self.seq[i];
        self.seq[i] = s.wrapping_add(1);
        s.is_multiple_of(self.every)
    }

    fn index_of(kind: &str) -> usize {
        Self::KINDS
            .iter()
            .position(|k| *k == kind)
            .unwrap_or_else(|| panic!("unknown SchedRecord class `{kind}`"))
    }
}

impl Default for RecordFilter {
    fn default() -> Self {
        Self::all()
    }
}

/// The engine's aggregate state, gathered after each handled event
/// (only when tracing is enabled — gathering walks the gang table).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StateSample {
    /// Tasks waiting in the central queue plus gangs waiting for
    /// co-allocation.
    pub queue_depth: u32,
    /// Machines currently idle, unoccupied, and admitted.
    pub free_machines: u32,
    /// Gangs currently in their running phase.
    pub running_gangs: u32,
    /// Running gangs below their full width (degraded rate).
    pub degraded_gangs: u32,
    /// Events pending in the calendar (live horizon).
    pub pending_events: u32,
    /// CPU time granted to guest work so far.
    pub delivered: f64,
    /// CPU time that became completed-task progress so far.
    pub goodput: f64,
    /// CPU time destroyed (evictions, migration setup) so far.
    pub wasted: f64,
}

/// Number of [`EventClass`] variants, sizing the per-class arrays.
const N_CLASSES: usize = EventClass::ALL.len();

/// Host-time attribution per scheduler event class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profiler {
    counts: [u64; N_CLASSES],
    nanos: [u64; N_CLASSES],
    mins: [u64; N_CLASSES],
    maxs: [u64; N_CLASSES],
}

impl Default for Profiler {
    fn default() -> Self {
        Self {
            counts: [0; N_CLASSES],
            nanos: [0; N_CLASSES],
            mins: [u64::MAX; N_CLASSES],
            maxs: [0; N_CLASSES],
        }
    }
}

impl Profiler {
    /// Record one handled event.
    #[inline]
    pub fn observe(&mut self, class: EventClass, nanos: u64) {
        let i = class.index();
        self.counts[i] += 1;
        self.nanos[i] += nanos;
        if nanos < self.mins[i] {
            self.mins[i] = nanos;
        }
        if nanos > self.maxs[i] {
            self.maxs[i] = nanos;
        }
    }

    /// Events handled of `class`.
    pub fn count(&self, class: EventClass) -> u64 {
        self.counts[class.index()]
    }

    /// Host nanoseconds attributed to `class`.
    pub fn nanos(&self, class: EventClass) -> u64 {
        self.nanos[class.index()]
    }

    /// Fastest single handling of `class`, if any was observed.
    pub fn min_ns(&self, class: EventClass) -> Option<u64> {
        (self.counts[class.index()] > 0).then(|| self.mins[class.index()])
    }

    /// Slowest single handling of `class`, if any was observed.
    pub fn max_ns(&self, class: EventClass) -> Option<u64> {
        (self.counts[class.index()] > 0).then(|| self.maxs[class.index()])
    }

    /// Total events handled.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total attributed host nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Render as one JSON object (count, total nanos, and
    /// mean/min/max ns per event for each class; min/max are `null`
    /// for classes never observed).
    pub fn to_json(&self) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |n| n.to_string());
        let mut out = String::from("{\"by_event\":[");
        for (i, class) in EventClass::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let count = self.count(*class);
            let nanos = self.nanos(*class);
            let mean = if count == 0 {
                0.0
            } else {
                nanos as f64 / count as f64
            };
            let _ = write!(
                out,
                "{{\"class\":\"{}\",\"count\":{count},\"nanos\":{nanos},\"mean_ns\":{},\
                 \"min_ns\":{},\"max_ns\":{}}}",
                class.name(),
                json_num(mean),
                opt(self.min_ns(*class)),
                opt(self.max_ns(*class)),
            );
        }
        let _ = write!(
            out,
            "],\"total_count\":{},\"total_nanos\":{}}}",
            self.total_count(),
            self.total_nanos()
        );
        out
    }
}

/// The everything-on [`SchedTracer`]: buffers every [`SchedRecord`],
/// samples a [`MetricsRegistry`], tallies per-machine owner activity,
/// and profiles host time per event class. One recorder observes one
/// replication.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    events: Vec<(f64, SchedRecord)>,
    registry: MetricsRegistry,
    s_queue: SeriesId,
    s_free: SeriesId,
    s_running: SeriesId,
    s_degraded: SeriesId,
    s_pending: SeriesId,
    s_goodput: SeriesId,
    s_wasted: SeriesId,
    /// Histogram series indexed by [`ObsKind::index`].
    s_obs: [SeriesId; 4],
    owner_arrivals: Vec<u64>,
    evictions: Vec<u64>,
    profiler: Profiler,
    last: Option<StateSample>,
    machines: usize,
    /// Optional user-facing machine labels for the Chrome export
    /// (escaped at render time; hostile names stay valid JSON).
    machine_names: Option<Vec<String>>,
    filter: RecordFilter,
    /// Record-buffer capacity: 0 = unbounded, else a ring keeping the
    /// newest `capacity` admitted records.
    capacity: usize,
    /// Ring write position (index of the oldest record when full).
    head: usize,
    /// Admitted records overwritten by the ring.
    overwritten: u64,
    /// Whether the engine should feed the host-time profiler.
    profile: bool,
    /// Whether state samples are throttled to the metrics grid.
    grid_state: bool,
    /// Next sim time at which a throttled state sample is due.
    next_state: f64,
}

impl FlightRecorder {
    /// Classes tallied per machine even when the filter drops them
    /// from the log: owner arrivals (bit 7) and evictions (bit 9).
    const TALLY_MASK: u16 =
        (1 << SchedRecord::OWNER_ARRIVAL_INDEX) | (1 << SchedRecord::EVICTION_INDEX);

    /// The filtered-in (or tallied) remainder of
    /// [`SchedTracer::record`], out of line to keep the hot reject
    /// path a single test.
    fn record_slow(&mut self, now: f64, record: SchedRecord) {
        // Per-machine tallies count every occurrence, before any
        // filtering — dropping a record from the log never skews the
        // aggregate counters.
        match record {
            SchedRecord::OwnerArrival { machine } => {
                self.owner_arrivals[machine as usize] += 1;
            }
            SchedRecord::Eviction { machine, .. } => {
                self.evictions[machine as usize] += 1;
            }
            _ => {}
        }
        if !self.filter.admit(&record) {
            return;
        }
        if self.capacity != 0 && self.events.len() == self.capacity {
            self.events[self.head] = (now, record);
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        } else {
            self.events.push((now, record));
        }
    }

    /// A recorder for a pool of `machines`, snapshotting its metrics
    /// every `metrics_every` sim-time units. Full fidelity: every
    /// record kept unbounded, state sampled after every event, and
    /// the host-time profiler on.
    pub fn new(machines: usize, metrics_every: f64) -> Self {
        let mut registry = MetricsRegistry::new(metrics_every);
        let s_queue = registry.gauge("queue_depth");
        let s_free = registry.gauge("free_machines");
        let s_running = registry.gauge("running_gangs");
        let s_degraded = registry.gauge("degraded_gangs");
        let s_pending = registry.gauge("pending_events");
        let s_goodput = registry.counter("goodput");
        let s_wasted = registry.counter("wasted");
        let s_obs = ObsKind::ALL.map(|k| registry.histogram(k.name()));
        Self {
            events: Vec::new(),
            registry,
            s_queue,
            s_free,
            s_running,
            s_degraded,
            s_pending,
            s_goodput,
            s_wasted,
            s_obs,
            owner_arrivals: vec![0; machines],
            evictions: vec![0; machines],
            profiler: Profiler::default(),
            last: None,
            machines,
            machine_names: None,
            filter: RecordFilter::all(),
            capacity: 0,
            head: 0,
            overwritten: 0,
            profile: true,
            grid_state: false,
            next_state: 0.0,
        }
    }

    /// The bounded-cost tier: counters and sketches stay exact, but
    /// the per-segment record firehose is filtered to job/gang
    /// lifecycle ([`RecordFilter::cheap`]), state samples are
    /// throttled to the metrics grid, and the per-event host clock is
    /// off — suitable for runs too big to trace at full fidelity.
    pub fn cheap(machines: usize, metrics_every: f64) -> Self {
        Self::new(machines, metrics_every)
            .with_filter(RecordFilter::cheap())
            .with_profile(false)
            .with_state_on_grid(true)
    }

    /// Replace the record filter.
    #[must_use]
    pub fn with_filter(mut self, filter: RecordFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Bound the record buffer to a ring of the newest `capacity`
    /// admitted records (0 = unbounded). Overwritten records are
    /// counted in [`FlightRecorder::overwritten`] — the cap is never
    /// silent.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Turn the per-event host-time profiler on or off. Off also
    /// removes the engine's two `Instant::now()` reads per event.
    #[must_use]
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Throttle state samples to the metrics grid instead of sampling
    /// after every event (the gridded series then hold the state at
    /// the first event at-or-after each tick rather than every
    /// intermediate change; summary extrema are correspondingly
    /// coarser).
    #[must_use]
    pub fn with_state_on_grid(mut self, on: bool) -> Self {
        self.grid_state = on;
        self
    }

    /// Label machines in the Chrome export (defaults to
    /// `machine {i}`). Names are JSON-escaped at render time.
    #[must_use]
    pub fn with_machine_names(mut self, names: Vec<String>) -> Self {
        self.machine_names = Some(names);
        self
    }

    /// Close the metrics grid at the run's makespan and rotate the
    /// ring so [`FlightRecorder::events`] is chronological. Call once
    /// after the run; exports taken before this miss the trailing
    /// snapshots.
    pub fn finish(&mut self, makespan: f64) {
        self.registry.finish(SimTime::new(makespan.max(0.0)));
        self.events.rotate_left(self.head);
        self.head = 0;
    }

    /// The buffered records, in event-execution order (for a bounded
    /// recorder, the newest `capacity` admitted records; chronological
    /// after [`FlightRecorder::finish`]).
    pub fn events(&self) -> &[(f64, SchedRecord)] {
        &self.events
    }

    /// The buffered records in chronological order regardless of ring
    /// rotation.
    fn events_in_order(&self) -> impl Iterator<Item = &(f64, SchedRecord)> {
        self.events[self.head..]
            .iter()
            .chain(self.events[..self.head].iter())
    }

    /// Admitted records overwritten by the bounded ring (0 when
    /// unbounded or never full).
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// The record filter in effect.
    pub fn filter(&self) -> &RecordFilter {
        &self.filter
    }

    /// The quantile sketch behind observation stream `kind`.
    pub fn sketch(&self, kind: ObsKind) -> &QuantileSketch {
        self.registry
            .sketch(self.s_obs[kind.index()])
            .expect("invariant: observation series are histograms")
    }

    /// The metrics registry (grid samples + time-weighted summaries).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The host-time profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The last state sample observed (the engine's closing state),
    /// or `None` if no event was handled. Its accounting totals
    /// reconcile exactly with the run's `SchedMetrics`.
    pub fn final_sample(&self) -> Option<&StateSample> {
        self.last.as_ref()
    }

    /// Owner arrivals observed per machine.
    pub fn owner_arrivals(&self) -> &[u64] {
        &self.owner_arrivals
    }

    /// Guest-displacing reclaims observed per machine.
    pub fn evictions_by_machine(&self) -> &[u64] {
        &self.evictions
    }

    /// Render the record log as JSON Lines: one object per record,
    /// `{"t":...,"type":...,...}`, in event-execution order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for (t, rec) in self.events_in_order() {
            render_record_json(&mut out, *t, rec);
            out.push('\n');
        }
        out
    }

    /// Render the record log as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` format Perfetto and `chrome://tracing`
    /// load): one named track per machine, `B`/`E` spans for guest
    /// segments, instants for arrivals, owner activity, evictions, and
    /// gang lifecycle. Timestamps are sim time scaled to microseconds.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: &str, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(s);
        };
        // Track names: one thread per machine plus a scheduler track.
        // Labels go through json_str so hostile names (quotes,
        // backslashes, control characters) cannot break the export.
        for m in 0..self.machines {
            let label = match &self.machine_names {
                Some(names) if m < names.len() => json_str(&names[m]),
                _ => json_str(&format!("machine {m}")),
            };
            push(
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{m},\
                     \"args\":{{\"name\":{label}}}}}"
                ),
                &mut out,
            );
        }
        let sched_tid = self.machines;
        push(
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{sched_tid},\
                 \"args\":{{\"name\":\"scheduler\"}}}}"
            ),
            &mut out,
        );
        for (t, rec) in self.events_in_order() {
            let ts = json_num(t * 1e6);
            let ev = match *rec {
                SchedRecord::SegmentStart {
                    machine,
                    job,
                    task,
                    kind,
                    wall,
                } => format!(
                    "{{\"name\":\"{}\",\"cat\":\"segment\",\"ph\":\"B\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"args\":{{\"job\":{job},\"task\":{task},\
                     \"wall\":{}}}}}",
                    kind.name(),
                    json_num(wall)
                ),
                SchedRecord::SegmentEnd { machine, kind, .. }
                | SchedRecord::SegmentPreempted { machine, kind, .. } => format!(
                    "{{\"name\":\"{}\",\"cat\":\"segment\",\"ph\":\"E\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine}}}",
                    kind.name()
                ),
                SchedRecord::TaskCompleted { machine, job, task } => format!(
                    "{{\"name\":\"task_completed\",\"cat\":\"task\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"s\":\"t\",\
                     \"args\":{{\"job\":{job},\"task\":{task}}}}}"
                ),
                SchedRecord::OwnerArrival { machine } => format!(
                    "{{\"name\":\"owner_arrival\",\"cat\":\"owner\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"s\":\"t\"}}"
                ),
                SchedRecord::OwnerDeparture { machine } => format!(
                    "{{\"name\":\"owner_departure\",\"cat\":\"owner\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"s\":\"t\"}}"
                ),
                SchedRecord::Eviction {
                    machine,
                    job,
                    task,
                    action,
                } => format!(
                    "{{\"name\":\"eviction_{}\",\"cat\":\"eviction\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"s\":\"t\",\
                     \"args\":{{\"job\":{job},\"task\":{task}}}}}",
                    action.name()
                ),
                SchedRecord::TaskPlaced { machine, job, task } => format!(
                    "{{\"name\":\"task_placed\",\"cat\":\"placement\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"s\":\"t\",\
                     \"args\":{{\"job\":{job},\"task\":{task}}}}}"
                ),
                SchedRecord::JobArrival { job } => format!(
                    "{{\"name\":\"job_arrival\",\"cat\":\"job\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{sched_tid},\"s\":\"t\",\"args\":{{\"job\":{job}}}}}"
                ),
                SchedRecord::JobCompleted { job } => format!(
                    "{{\"name\":\"job_completed\",\"cat\":\"job\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{sched_tid},\"s\":\"t\",\"args\":{{\"job\":{job}}}}}"
                ),
                SchedRecord::GangAdmitted { job, members } => format!(
                    "{{\"name\":\"gang_admitted\",\"cat\":\"gang\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{sched_tid},\"s\":\"t\",\
                     \"args\":{{\"job\":{job},\"members\":{members}}}}}"
                ),
                SchedRecord::GangSuspended { job } => format!(
                    "{{\"name\":\"gang_suspended\",\"cat\":\"gang\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{sched_tid},\"s\":\"t\",\"args\":{{\"job\":{job}}}}}"
                ),
                SchedRecord::GangMigrated { job } => format!(
                    "{{\"name\":\"gang_migrated\",\"cat\":\"gang\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{sched_tid},\"s\":\"t\",\"args\":{{\"job\":{job}}}}}"
                ),
                SchedRecord::MachineFailure { machine } => format!(
                    "{{\"name\":\"machine_failure\",\"cat\":\"failure\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"s\":\"t\"}}"
                ),
                SchedRecord::MachineRepair { machine } => format!(
                    "{{\"name\":\"machine_repair\",\"cat\":\"failure\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"s\":\"t\"}}"
                ),
            };
            push(&ev, &mut out);
        }
        out.push_str("]}");
        out
    }

    /// Render the metrics registry plus per-machine owner activity as
    /// one JSON object.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\"registry\":");
        out.push_str(&self.registry.to_json());
        out.push_str(",\"per_machine\":{\"owner_arrivals\":[");
        for (i, v) in self.owner_arrivals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("],\"evictions\":[");
        for (i, v) in self.evictions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("]}");
        // The ring's cap is never silent: the export says how many
        // admitted records it overwrote.
        let _ = write!(out, ",\"records_overwritten\":{}", self.overwritten);
        out.push('}');
        out
    }

    /// Render the host-time profile as one JSON object.
    pub fn profile_json(&self) -> String {
        self.profiler.to_json()
    }
}

impl SchedTracer for FlightRecorder {
    #[inline(always)]
    fn record(&mut self, now: f64, record: SchedRecord) {
        // Fast reject: with a narrowed filter (the cheap tier) most
        // offered records are dropped, and a dropped record of a
        // non-tallied class needs nothing beyond this one mask test —
        // at a monomorphized call site the class index is a constant,
        // so the whole call folds to load-test-branch.
        if (self.filter.mask | Self::TALLY_MASK) & (1 << record.class_index()) == 0 {
            return;
        }
        self.record_slow(now, record);
    }

    #[inline]
    fn state(&mut self, now: f64, sample: &StateSample) {
        let t = SimTime::new(now);
        self.registry
            .set(t, self.s_queue, f64::from(sample.queue_depth));
        self.registry
            .set(t, self.s_free, f64::from(sample.free_machines));
        self.registry
            .set(t, self.s_running, f64::from(sample.running_gangs));
        self.registry
            .set(t, self.s_degraded, f64::from(sample.degraded_gangs));
        self.registry
            .set(t, self.s_pending, f64::from(sample.pending_events));
        self.registry.set(t, self.s_goodput, sample.goodput);
        self.registry.set(t, self.s_wasted, sample.wasted);
        self.last = Some(*sample);
        if self.grid_state {
            // Next sample is due at the first grid tick after `now`.
            let every = self.registry.every();
            while self.next_state <= now {
                self.next_state += every;
            }
        }
    }

    #[inline]
    fn handled(&mut self, now: f64, class: EventClass, nanos: u64) {
        let _ = now;
        if self.profile {
            self.profiler.observe(class, nanos);
        }
    }

    #[inline]
    fn observe(&mut self, now: f64, kind: ObsKind, value: f64) {
        self.registry
            .observe(SimTime::new(now), self.s_obs[kind.index()], value);
    }

    #[inline]
    fn observe_n(&mut self, now: f64, kind: ObsKind, value: f64, n: u32) {
        self.registry
            .observe_n(SimTime::new(now), self.s_obs[kind.index()], value, n);
    }

    #[inline]
    fn profile_enabled(&self) -> bool {
        self.profile
    }

    #[inline]
    fn wants_state(&self, now: f64) -> bool {
        !self.grid_state || now >= self.next_state
    }
}

/// An opt-in stderr heartbeat for long runs: every `every` host
/// seconds it prints events handled, events/sec, the sim-time clock
/// (with % of horizon and an ETA when a horizon is known), and which
/// event classes moved since the last beat.
///
/// The meter is a pure consumer of the sanctioned profiler clock — it
/// never reads wall time itself, only accumulates the `nanos` the
/// engine already attributes per event — so composing it (via
/// [`Tee`]) with a recorder whose profiler is off simply turns the
/// clock back on; it adds no second timing source. Sim outputs are
/// untouched: the meter writes to stderr only.
#[derive(Debug, Clone)]
pub struct ProgressMeter {
    /// Beat period, in host nanoseconds.
    every_nanos: u64,
    /// Sim-time horizon for % / ETA, when known (e.g. the last
    /// scheduled arrival).
    horizon: Option<f64>,
    /// Prefix distinguishing replications in sharded runs.
    label: String,
    total_nanos: u64,
    total_events: u64,
    counts: [u64; N_CLASSES],
    last_nanos: u64,
    last_events: u64,
    last_counts: [u64; N_CLASSES],
}

impl ProgressMeter {
    /// A meter beating every `every` host seconds.
    ///
    /// # Panics
    ///
    /// If `every` is not finite and positive.
    pub fn new(every: f64) -> Self {
        assert!(
            every.is_finite() && every > 0.0,
            "progress period must be finite and positive, got {every}"
        );
        // Saturating: absurd periods just never beat.
        let every_nanos = if every >= 1e10 {
            u64::MAX
        } else {
            // Value is positive and bounded; the cast is exact enough
            // for a heartbeat period.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            {
                (every * 1e9) as u64
            }
        };
        Self {
            every_nanos,
            horizon: None,
            label: String::new(),
            total_nanos: 0,
            total_events: 0,
            counts: [0; N_CLASSES],
            last_nanos: 0,
            last_events: 0,
            last_counts: [0; N_CLASSES],
        }
    }

    /// Report progress as a percentage of sim-time `horizon`, with an
    /// ETA extrapolated from the observed sim-time rate.
    #[must_use]
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        if horizon.is_finite() && horizon > 0.0 {
            self.horizon = Some(horizon);
        }
        self
    }

    /// Prefix each beat with `label` (e.g. `rep3`).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Events seen so far.
    pub fn events_seen(&self) -> u64 {
        self.total_events
    }

    fn beat(&mut self, now: f64) {
        let dt = self.total_nanos - self.last_nanos;
        let devents = self.total_events - self.last_events;
        // Casts: nanosecond deltas and event counts are far below 2^53.
        #[allow(clippy::cast_precision_loss)]
        let rate = if dt == 0 {
            0.0
        } else {
            devents as f64 * 1e9 / dt as f64
        };
        let mut line = format!(
            "[nds{}{}] {} events ({}/s) sim t={now:.3}",
            if self.label.is_empty() { "" } else { " " },
            self.label,
            self.total_events,
            fmt_compact(rate),
        );
        if let Some(h) = self.horizon {
            let pct = (now / h * 100.0).min(100.0);
            let _ = write!(line, " {pct:.1}% of horizon {h:.3}");
            #[allow(clippy::cast_precision_loss)]
            let elapsed = self.total_nanos as f64 / 1e9;
            if now > 0.0 && now < h {
                let eta = elapsed * (h - now) / now;
                let _ = write!(line, " eta ~{eta:.1}s");
            }
        }
        let mut sep = " |";
        for class in EventClass::ALL {
            let i = class.index();
            let d = self.counts[i] - self.last_counts[i];
            if d > 0 {
                let _ = write!(line, "{sep} {} +{d}", class.name());
                sep = "";
            }
        }
        eprintln!("{line}");
        self.last_nanos = self.total_nanos;
        self.last_events = self.total_events;
        self.last_counts = self.counts;
    }
}

impl SchedTracer for ProgressMeter {
    #[inline]
    fn handled(&mut self, now: f64, class: EventClass, nanos: u64) {
        self.total_nanos += nanos;
        self.total_events += 1;
        self.counts[class.index()] += 1;
        if self.total_nanos - self.last_nanos >= self.every_nanos {
            self.beat(now);
        }
    }

    /// The meter needs the per-event clock — that is its only input.
    #[inline]
    fn profile_enabled(&self) -> bool {
        true
    }

    /// The meter never looks at state samples.
    #[inline]
    fn wants_state(&self, _now: f64) -> bool {
        false
    }
}

/// Format a rate compactly (`4.2M`, `13k`, `950`).
fn fmt_compact(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.0}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Fan the engine's hooks out to two tracers — e.g. a
/// [`FlightRecorder`] plus a [`ProgressMeter`]. Gating predicates OR:
/// the clock runs if either side wants it, state is gathered if
/// either side wants it (and delivered to both).
#[derive(Debug, Clone)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: SchedTracer, B: SchedTracer> SchedTracer for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn record(&mut self, now: f64, record: SchedRecord) {
        self.0.record(now, record);
        self.1.record(now, record);
    }

    #[inline]
    fn state(&mut self, now: f64, sample: &StateSample) {
        self.0.state(now, sample);
        self.1.state(now, sample);
    }

    #[inline]
    fn handled(&mut self, now: f64, class: EventClass, nanos: u64) {
        self.0.handled(now, class, nanos);
        self.1.handled(now, class, nanos);
    }

    #[inline]
    fn observe(&mut self, now: f64, kind: ObsKind, value: f64) {
        self.0.observe(now, kind, value);
        self.1.observe(now, kind, value);
    }

    #[inline]
    fn observe_n(&mut self, now: f64, kind: ObsKind, value: f64, n: u32) {
        self.0.observe_n(now, kind, value, n);
        self.1.observe_n(now, kind, value, n);
    }

    #[inline]
    fn profile_enabled(&self) -> bool {
        self.0.profile_enabled() || self.1.profile_enabled()
    }

    #[inline]
    fn wants_state(&self, now: f64) -> bool {
        self.0.wants_state(now) || self.1.wants_state(now)
    }
}

/// Append one record's JSONL object (no trailing newline) to `out`.
fn render_record_json(out: &mut String, t: f64, rec: &SchedRecord) {
    let _ = write!(out, "{{\"t\":{},\"type\":", json_num(t));
    out.push_str(&json_str(rec.kind_name()));
    match *rec {
        SchedRecord::JobArrival { job } | SchedRecord::JobCompleted { job } => {
            let _ = write!(out, ",\"job\":{job}");
        }
        SchedRecord::TaskPlaced { machine, job, task }
        | SchedRecord::TaskCompleted { machine, job, task } => {
            let _ = write!(out, ",\"machine\":{machine},\"job\":{job},\"task\":{task}");
        }
        SchedRecord::SegmentStart {
            machine,
            job,
            task,
            kind,
            wall,
        } => {
            let _ = write!(
                out,
                ",\"machine\":{machine},\"job\":{job},\"task\":{task},\"kind\":\"{}\",\"wall\":{}",
                kind.name(),
                json_num(wall)
            );
        }
        SchedRecord::SegmentEnd {
            machine,
            job,
            task,
            kind,
        }
        | SchedRecord::SegmentPreempted {
            machine,
            job,
            task,
            kind,
        } => {
            let _ = write!(
                out,
                ",\"machine\":{machine},\"job\":{job},\"task\":{task},\"kind\":\"{}\"",
                kind.name()
            );
        }
        SchedRecord::OwnerArrival { machine }
        | SchedRecord::OwnerDeparture { machine }
        | SchedRecord::MachineFailure { machine }
        | SchedRecord::MachineRepair { machine } => {
            let _ = write!(out, ",\"machine\":{machine}");
        }
        SchedRecord::Eviction {
            machine,
            job,
            task,
            action,
        } => {
            let _ = write!(
                out,
                ",\"machine\":{machine},\"job\":{job},\"task\":{task},\"action\":\"{}\"",
                action.name()
            );
        }
        SchedRecord::GangAdmitted { job, members } => {
            let _ = write!(out, ",\"job\":{job},\"members\":{members}");
        }
        SchedRecord::GangSuspended { job } | SchedRecord::GangMigrated { job } => {
            let _ = write!(out, ",\"job\":{job}");
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_trace_is_disabled_for_sched() {
        const { assert!(!<NoTrace as SchedTracer>::ENABLED) };
        const { assert!(<FlightRecorder as SchedTracer>::ENABLED) };
    }

    #[test]
    fn profiler_attributes_per_class() {
        let mut p = Profiler::default();
        p.observe(EventClass::SegmentEnd, 100);
        p.observe(EventClass::SegmentEnd, 50);
        p.observe(EventClass::JobArrival, 10);
        assert_eq!(p.count(EventClass::SegmentEnd), 2);
        assert_eq!(p.nanos(EventClass::SegmentEnd), 150);
        assert_eq!(p.total_count(), 3);
        assert_eq!(p.total_nanos(), 160);
        let json = p.to_json();
        assert!(json.contains("\"class\":\"segment_end\",\"count\":2,\"nanos\":150"));
        assert!(json.contains("\"total_count\":3"));
    }

    #[test]
    fn recorder_buffers_and_renders_records() {
        let mut rec = FlightRecorder::new(2, 10.0);
        rec.record(0.0, SchedRecord::JobArrival { job: 0 });
        rec.record(
            1.5,
            SchedRecord::SegmentStart {
                machine: 1,
                job: 0,
                task: 3,
                kind: SegmentKind::Work,
                wall: 4.25,
            },
        );
        rec.record(
            5.75,
            SchedRecord::Eviction {
                machine: 1,
                job: 0,
                task: 3,
                action: EvictionAction::Suspend,
            },
        );
        rec.record(5.75, SchedRecord::OwnerArrival { machine: 1 });
        assert_eq!(rec.events().len(), 4);
        assert_eq!(rec.owner_arrivals(), &[0, 1]);
        assert_eq!(rec.evictions_by_machine(), &[0, 1]);
        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "{\"t\":0,\"type\":\"job_arrival\",\"job\":0}");
        assert!(lines[1].contains("\"kind\":\"work\",\"wall\":4.25"));
        assert!(lines[2].contains("\"action\":\"suspend\""));
    }

    #[test]
    fn chrome_trace_has_tracks_spans_and_instants() {
        let mut rec = FlightRecorder::new(1, 10.0);
        rec.record(
            0.0,
            SchedRecord::SegmentStart {
                machine: 0,
                job: 0,
                task: 0,
                kind: SegmentKind::Work,
                wall: 2.0,
            },
        );
        rec.record(
            2.0,
            SchedRecord::SegmentEnd {
                machine: 0,
                job: 0,
                task: 0,
                kind: SegmentKind::Work,
            },
        );
        rec.record(2.0, SchedRecord::JobCompleted { job: 0 });
        let json = rec.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"M\""), "thread names present");
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ts\":2000000"), "sim time in microseconds");
        assert!(json.contains("\"name\":\"machine 0\""));
        assert!(json.contains("\"name\":\"scheduler\""));
    }

    #[test]
    fn profiler_tracks_min_and_max() {
        let mut p = Profiler::default();
        assert_eq!(p.min_ns(EventClass::SegmentEnd), None);
        assert_eq!(p.max_ns(EventClass::SegmentEnd), None);
        p.observe(EventClass::SegmentEnd, 100);
        p.observe(EventClass::SegmentEnd, 40);
        p.observe(EventClass::SegmentEnd, 70);
        assert_eq!(p.min_ns(EventClass::SegmentEnd), Some(40));
        assert_eq!(p.max_ns(EventClass::SegmentEnd), Some(100));
        let json = p.to_json();
        assert!(json.contains("\"min_ns\":40") && json.contains("\"max_ns\":100"));
        // Never-observed classes export null, not u64::MAX.
        assert!(json.contains("\"min_ns\":null"));
    }

    #[test]
    fn filter_masks_classes_and_samples_deterministically() {
        let mut f = RecordFilter::cheap().sample_every(3);
        assert!(f.keeps("job_arrival") && !f.keeps("segment_start"));
        // Blocked class: never admitted, sequence untouched.
        assert!(!f.admit(&SchedRecord::TaskPlaced {
            machine: 0,
            job: 0,
            task: 0
        }));
        // 1-in-3 sampling per class: indices 0, 3, 6, ... are kept.
        let kept: Vec<bool> = (0..7)
            .map(|j| f.admit(&SchedRecord::JobArrival { job: j }))
            .collect();
        assert_eq!(kept, [true, false, false, true, false, false, true]);
        // A different class has its own sequence.
        assert!(f.admit(&SchedRecord::JobCompleted { job: 0 }));
    }

    #[test]
    #[should_panic(expected = "unknown SchedRecord class")]
    fn filter_rejects_unknown_class_names() {
        let _ = RecordFilter::none().with(&["job_arival"]);
    }

    #[test]
    fn kinds_match_class_indices() {
        // KINDS[i] names the class whose class_index() is i.
        let probes = [
            SchedRecord::JobArrival { job: 0 },
            SchedRecord::TaskPlaced {
                machine: 0,
                job: 0,
                task: 0,
            },
            SchedRecord::JobCompleted { job: 0 },
            SchedRecord::OwnerArrival { machine: 0 },
            SchedRecord::GangMigrated { job: 0 },
            SchedRecord::MachineFailure { machine: 0 },
            SchedRecord::MachineRepair { machine: 0 },
        ];
        for rec in probes {
            assert_eq!(RecordFilter::KINDS[rec.class_index()], rec.kind_name());
        }
    }

    #[test]
    fn ring_buffer_keeps_newest_and_counts_overwrites() {
        let mut rec = FlightRecorder::new(1, 10.0).with_capacity(3);
        for j in 0..5 {
            rec.record(f64::from(j), SchedRecord::JobArrival { job: j as u32 });
        }
        assert_eq!(rec.overwritten(), 2);
        // Exports are chronological even before finish() rotates.
        let jsonl = rec.to_jsonl();
        let ts: Vec<&str> = jsonl.lines().map(|l| &l[..7]).collect();
        assert_eq!(ts, ["{\"t\":2,", "{\"t\":3,", "{\"t\":4,"]);
        rec.finish(5.0);
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].0, 2.0);
        assert_eq!(events[2].0, 4.0);
        assert!(rec.metrics_json().contains("\"records_overwritten\":2"));
    }

    #[test]
    fn cheap_recorder_drops_firehose_but_keeps_tallies() {
        let mut rec = FlightRecorder::cheap(2, 10.0);
        assert!(!rec.profile_enabled());
        rec.record(0.0, SchedRecord::JobArrival { job: 0 });
        rec.record(1.0, SchedRecord::OwnerArrival { machine: 1 });
        rec.record(
            1.0,
            SchedRecord::TaskPlaced {
                machine: 0,
                job: 0,
                task: 0,
            },
        );
        // Owner activity and placements are filtered from the log...
        assert_eq!(rec.events().len(), 1);
        // ...but the per-machine tallies still count every occurrence.
        assert_eq!(rec.owner_arrivals(), &[0, 1]);
        // Profiler stays empty even if handled() is called (a Tee
        // partner may have turned the clock on).
        rec.handled(1.0, EventClass::JobArrival, 55);
        assert_eq!(rec.profiler().total_count(), 0);
    }

    #[test]
    fn grid_state_throttles_sampling() {
        let mut rec = FlightRecorder::new(1, 10.0).with_state_on_grid(true);
        assert!(rec.wants_state(0.0));
        rec.state(0.0, &StateSample::default());
        // Next sample is due at the next grid tick, not before.
        assert!(!rec.wants_state(3.0));
        assert!(rec.wants_state(10.0));
        rec.state(12.5, &StateSample::default());
        assert!(!rec.wants_state(19.0));
        assert!(rec.wants_state(20.0));
    }

    #[test]
    fn observations_feed_sketches() {
        let mut rec = FlightRecorder::new(1, 10.0);
        rec.observe(1.0, ObsKind::Response, 4.0);
        rec.observe(2.0, ObsKind::Response, 8.0);
        rec.observe(2.0, ObsKind::QueueWait, 0.5);
        assert_eq!(rec.sketch(ObsKind::Response).count(), 2);
        assert_eq!(rec.sketch(ObsKind::QueueWait).count(), 1);
        assert_eq!(rec.sketch(ObsKind::Slowdown).count(), 0);
        rec.finish(5.0);
        let json = rec.metrics_json();
        assert!(json.contains("\"name\":\"response\",\"kind\":\"histogram\""));
        assert!(json.contains("\"sketch\":{\"count\":2"));
    }

    #[test]
    fn hostile_machine_names_stay_valid_json() {
        let rec = FlightRecorder::new(2, 10.0)
            .with_machine_names(vec!["evil\"node\\1".into(), "tab\there".into()]);
        let json = rec.to_chrome_json();
        assert!(json.contains("\"name\":\"evil\\\"node\\\\1\""));
        assert!(json.contains("\"name\":\"tab\\there\""));
        // A short name list falls back to the default label.
        let rec = FlightRecorder::new(2, 10.0).with_machine_names(vec!["only one".into()]);
        assert!(rec.to_chrome_json().contains("\"name\":\"machine 1\""));
    }

    #[test]
    fn tee_fans_out_and_ors_predicates() {
        let mut tee = Tee(FlightRecorder::cheap(1, 10.0), FlightRecorder::new(1, 10.0));
        assert!(tee.profile_enabled(), "full side wants the clock");
        tee.record(0.0, SchedRecord::OwnerArrival { machine: 0 });
        // Cheap side filters it out of the log; full side keeps it.
        assert_eq!(tee.0.events().len(), 0);
        assert_eq!(tee.1.events().len(), 1);
        assert_eq!(tee.0.owner_arrivals(), &[1]);
        tee.handled(0.0, EventClass::OwnerArrival, 9);
        assert_eq!(tee.0.profiler().total_count(), 0);
        assert_eq!(tee.1.profiler().total_count(), 1);
    }

    #[test]
    fn progress_meter_counts_through_the_profiler_clock() {
        let mut meter = ProgressMeter::new(1000.0).with_horizon(100.0);
        assert!(meter.profile_enabled());
        assert!(!meter.wants_state(0.0));
        for i in 0..10 {
            meter.handled(f64::from(i), EventClass::SegmentEnd, 100);
        }
        assert_eq!(meter.events_seen(), 10);
    }

    #[test]
    fn failure_records_render_and_stay_in_the_cheap_tier() {
        let mut rec = FlightRecorder::new(2, 10.0);
        rec.record(3.0, SchedRecord::MachineFailure { machine: 1 });
        rec.record(9.5, SchedRecord::MachineRepair { machine: 1 });
        let jsonl = rec.to_jsonl();
        assert!(jsonl.contains("{\"t\":3,\"type\":\"machine_failure\",\"machine\":1}"));
        assert!(jsonl.contains("{\"t\":9.5,\"type\":\"machine_repair\",\"machine\":1}"));
        let chrome = rec.to_chrome_json();
        assert!(chrome.contains("\"name\":\"machine_failure\",\"cat\":\"failure\""));
        assert!(chrome.contains("\"name\":\"machine_repair\",\"cat\":\"failure\""));
        // Crashes are rare and load-bearing: the cheap tier keeps them.
        let f = RecordFilter::cheap();
        assert!(f.keeps("machine_failure") && f.keeps("machine_repair"));
    }

    #[test]
    fn state_samples_feed_the_registry() {
        let mut rec = FlightRecorder::new(4, 5.0);
        rec.state(
            0.0,
            &StateSample {
                queue_depth: 3,
                free_machines: 4,
                goodput: 0.0,
                ..StateSample::default()
            },
        );
        rec.state(
            7.0,
            &StateSample {
                queue_depth: 1,
                free_machines: 2,
                goodput: 12.5,
                ..StateSample::default()
            },
        );
        rec.finish(9.0);
        assert_eq!(rec.final_sample().unwrap().goodput, 12.5);
        let json = rec.metrics_json();
        assert!(json.contains("\"registry\":{"));
        assert!(json.contains("\"queue_depth\""));
        assert!(json.contains("\"per_machine\""));
        assert!(json.contains("\"owner_arrivals\":[0,0,0,0]"));
    }
}
