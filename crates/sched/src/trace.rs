//! The scheduler's flight recorder: zero-cost structured tracing,
//! sim-time metrics, and per-event-type wall-clock profiling.
//!
//! # Architecture
//!
//! [`SchedTracer`] mirrors `nds-des`'s calendar-level
//! [`nds_des::Tracer`] one layer up: the simulator's event handlers are
//! generic over it, every emission site is guarded by
//! `if T::ENABLED`, and the zero-sized [`nds_des::NoTrace`] (the
//! default everywhere) sets `ENABLED = false`, so the untraced engine
//! monomorphizes to exactly the pre-tracing hot path — bit-identical
//! outputs, no measurable overhead (pinned by `perf_core --smoke`
//! against `BENCH_core.json`).
//!
//! [`FlightRecorder`] is the everything-on implementation:
//!
//! * a [`SchedRecord`] event log (placements, segments, evictions,
//!   owner activity, gang lifecycle), exportable as JSONL
//!   ([`FlightRecorder::to_jsonl`]) and as Chrome trace-event JSON
//!   loadable in Perfetto ([`FlightRecorder::to_chrome_json`]) — one
//!   track per machine, spans for job segments, instants for
//!   arrivals/reclaims/evictions;
//! * a [`MetricsRegistry`] sampling queue depth, free machines,
//!   running/degraded gangs, and the accounting totals on a fixed
//!   sim-time grid ([`FlightRecorder::metrics_json`]), plus per-machine
//!   owner-reclaim activity;
//! * a [`Profiler`] attributing host (wall-clock) nanoseconds and
//!   counts to each scheduler event type
//!   ([`FlightRecorder::profile_json`]).
//!
//! Records are emitted in event-execution order and carry only
//! simulation state, so two runs of one replication produce
//! byte-identical JSONL regardless of host timing or replication
//! sharding (the workspace's trace determinism test pins this). Host
//! time appears *only* in the profile export.

use nds_des::registry::{json_num, json_str};
use nds_des::{MetricsRegistry, NoTrace, SeriesId, SimTime};
use std::fmt::Write as _;

/// Observer of the scheduler engine's event handling. All hooks
/// default to no-ops; [`NoTrace`] additionally sets `ENABLED = false`,
/// which removes the hook sites at monomorphization time.
pub trait SchedTracer {
    /// Guard constant checked at every emission site.
    const ENABLED: bool = true;

    /// A structured scheduling occurrence at sim time `now`.
    #[inline]
    fn record(&mut self, now: f64, record: SchedRecord) {
        let _ = (now, record);
    }

    /// The engine's aggregate state after handling the event at `now`.
    #[inline]
    fn state(&mut self, now: f64, sample: &StateSample) {
        let _ = (now, sample);
    }

    /// One calendar event of class `class` was handled in `nanos`
    /// host nanoseconds.
    #[inline]
    fn handled(&mut self, class: EventClass, nanos: u64) {
        let _ = (class, nanos);
    }
}

/// Tracing disabled: the scheduler's hot path compiles exactly as if
/// the hooks did not exist.
impl SchedTracer for NoTrace {
    const ENABLED: bool = false;
}

/// The scheduler's event vocabulary, as seen by the profiler — one
/// class per `SchedEvent` variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// An owner returned to their workstation.
    OwnerArrival,
    /// An owner left their workstation idle.
    OwnerDeparture,
    /// A job reached the central queue.
    JobArrival,
    /// An independent task's segment ran out.
    SegmentEnd,
    /// A gang's job-level segment ran out.
    GangSegmentEnd,
}

impl EventClass {
    /// Every class, in stable export order.
    pub const ALL: [EventClass; 5] = [
        Self::OwnerArrival,
        Self::OwnerDeparture,
        Self::JobArrival,
        Self::SegmentEnd,
        Self::GangSegmentEnd,
    ];

    /// Stable snake_case name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::OwnerArrival => "owner_arrival",
            Self::OwnerDeparture => "owner_departure",
            Self::JobArrival => "job_arrival",
            Self::SegmentEnd => "segment_end",
            Self::GangSegmentEnd => "gang_segment_end",
        }
    }

    fn index(self) -> usize {
        match self {
            Self::OwnerArrival => 0,
            Self::OwnerDeparture => 1,
            Self::JobArrival => 2,
            Self::SegmentEnd => 3,
            Self::GangSegmentEnd => 4,
        }
    }
}

/// What kind of work a guest segment performs (mirrors the simulator's
/// internal segment split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Migration restore (wasted work by definition).
    Setup,
    /// Real progress.
    Work,
    /// Checkpoint write (overhead).
    CkptWrite,
}

impl SegmentKind {
    /// Stable snake_case name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Setup => "setup",
            Self::Work => "work",
            Self::CkptWrite => "ckpt_write",
        }
    }
}

/// How an owner reclaim was resolved for the displaced guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionAction {
    /// Suspended in place beneath the owner.
    Suspend,
    /// Killed; all progress lost.
    Restart,
    /// Re-queued with a migration setup debt.
    Migrate,
    /// Rolled back to the last checkpoint and re-queued.
    Rollback,
}

impl EvictionAction {
    /// Stable snake_case name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Suspend => "suspend",
            Self::Restart => "restart",
            Self::Migrate => "migrate",
            Self::Rollback => "rollback",
        }
    }
}

/// One structured scheduling occurrence. `Copy`, fixed-size — the
/// recorder buffers these raw and renders text only at export time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedRecord {
    /// Job `job` reached the central queue.
    JobArrival { job: u32 },
    /// A task (or gang member `task` of a gang job) was placed on
    /// `machine`.
    TaskPlaced { machine: u32, job: u32, task: u32 },
    /// A segment opened on `machine`, scheduled to run `wall` sim-time
    /// units.
    SegmentStart {
        machine: u32,
        job: u32,
        task: u32,
        kind: SegmentKind,
        wall: f64,
    },
    /// The segment on `machine` ran to completion.
    SegmentEnd {
        machine: u32,
        job: u32,
        task: u32,
        kind: SegmentKind,
    },
    /// The segment on `machine` was cut short (owner reclaim, gang
    /// rate change).
    SegmentPreempted {
        machine: u32,
        job: u32,
        task: u32,
        kind: SegmentKind,
    },
    /// Task `task` of `job` finished on `machine`.
    TaskCompleted { machine: u32, job: u32, task: u32 },
    /// Every task of `job` finished.
    JobCompleted { job: u32 },
    /// The owner of `machine` returned.
    OwnerArrival { machine: u32 },
    /// The owner of `machine` left again.
    OwnerDeparture { machine: u32 },
    /// The owner's return displaced the guest on `machine`, resolved
    /// by `action`.
    Eviction {
        machine: u32,
        job: u32,
        task: u32,
        action: EvictionAction,
    },
    /// Gang `job` was co-allocated onto `members` machines.
    GangAdmitted { job: u32, members: u32 },
    /// Gang `job` dropped below its floor and froze in place.
    GangSuspended { job: u32 },
    /// Gang `job` was migrated back to the co-allocation queue.
    GangMigrated { job: u32 },
}

impl SchedRecord {
    /// Stable snake_case name of the record type.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Self::JobArrival { .. } => "job_arrival",
            Self::TaskPlaced { .. } => "task_placed",
            Self::SegmentStart { .. } => "segment_start",
            Self::SegmentEnd { .. } => "segment_end",
            Self::SegmentPreempted { .. } => "segment_preempted",
            Self::TaskCompleted { .. } => "task_completed",
            Self::JobCompleted { .. } => "job_completed",
            Self::OwnerArrival { .. } => "owner_arrival",
            Self::OwnerDeparture { .. } => "owner_departure",
            Self::Eviction { .. } => "eviction",
            Self::GangAdmitted { .. } => "gang_admitted",
            Self::GangSuspended { .. } => "gang_suspended",
            Self::GangMigrated { .. } => "gang_migrated",
        }
    }
}

/// The engine's aggregate state, gathered after each handled event
/// (only when tracing is enabled — gathering walks the gang table).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StateSample {
    /// Tasks waiting in the central queue plus gangs waiting for
    /// co-allocation.
    pub queue_depth: u32,
    /// Machines currently idle, unoccupied, and admitted.
    pub free_machines: u32,
    /// Gangs currently in their running phase.
    pub running_gangs: u32,
    /// Running gangs below their full width (degraded rate).
    pub degraded_gangs: u32,
    /// Events pending in the calendar (live horizon).
    pub pending_events: u32,
    /// CPU time granted to guest work so far.
    pub delivered: f64,
    /// CPU time that became completed-task progress so far.
    pub goodput: f64,
    /// CPU time destroyed (evictions, migration setup) so far.
    pub wasted: f64,
}

/// Host-time attribution per scheduler event class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Profiler {
    counts: [u64; 5],
    nanos: [u64; 5],
}

impl Profiler {
    /// Record one handled event.
    #[inline]
    pub fn observe(&mut self, class: EventClass, nanos: u64) {
        let i = class.index();
        self.counts[i] += 1;
        self.nanos[i] += nanos;
    }

    /// Events handled of `class`.
    pub fn count(&self, class: EventClass) -> u64 {
        self.counts[class.index()]
    }

    /// Host nanoseconds attributed to `class`.
    pub fn nanos(&self, class: EventClass) -> u64 {
        self.nanos[class.index()]
    }

    /// Total events handled.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total attributed host nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Render as one JSON object (counts, nanos, and mean ns/event per
    /// class).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"by_event\":[");
        for (i, class) in EventClass::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let count = self.count(*class);
            let nanos = self.nanos(*class);
            let mean = if count == 0 {
                0.0
            } else {
                nanos as f64 / count as f64
            };
            let _ = write!(
                out,
                "{{\"class\":\"{}\",\"count\":{count},\"nanos\":{nanos},\"mean_ns\":{}}}",
                class.name(),
                json_num(mean)
            );
        }
        let _ = write!(
            out,
            "],\"total_count\":{},\"total_nanos\":{}}}",
            self.total_count(),
            self.total_nanos()
        );
        out
    }
}

/// The everything-on [`SchedTracer`]: buffers every [`SchedRecord`],
/// samples a [`MetricsRegistry`], tallies per-machine owner activity,
/// and profiles host time per event class. One recorder observes one
/// replication.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    events: Vec<(f64, SchedRecord)>,
    registry: MetricsRegistry,
    s_queue: SeriesId,
    s_free: SeriesId,
    s_running: SeriesId,
    s_degraded: SeriesId,
    s_pending: SeriesId,
    s_goodput: SeriesId,
    s_wasted: SeriesId,
    owner_arrivals: Vec<u64>,
    evictions: Vec<u64>,
    profiler: Profiler,
    last: Option<StateSample>,
    machines: usize,
}

impl FlightRecorder {
    /// A recorder for a pool of `machines`, snapshotting its metrics
    /// every `metrics_every` sim-time units.
    pub fn new(machines: usize, metrics_every: f64) -> Self {
        let mut registry = MetricsRegistry::new(metrics_every);
        let s_queue = registry.gauge("queue_depth");
        let s_free = registry.gauge("free_machines");
        let s_running = registry.gauge("running_gangs");
        let s_degraded = registry.gauge("degraded_gangs");
        let s_pending = registry.gauge("pending_events");
        let s_goodput = registry.counter("goodput");
        let s_wasted = registry.counter("wasted");
        Self {
            events: Vec::new(),
            registry,
            s_queue,
            s_free,
            s_running,
            s_degraded,
            s_pending,
            s_goodput,
            s_wasted,
            owner_arrivals: vec![0; machines],
            evictions: vec![0; machines],
            profiler: Profiler::default(),
            last: None,
            machines,
        }
    }

    /// Close the metrics grid at the run's makespan. Call once after
    /// the run; exports taken before this miss the trailing snapshots.
    pub fn finish(&mut self, makespan: f64) {
        self.registry.finish(SimTime::new(makespan.max(0.0)));
    }

    /// The buffered records, in event-execution order.
    pub fn events(&self) -> &[(f64, SchedRecord)] {
        &self.events
    }

    /// The metrics registry (grid samples + time-weighted summaries).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The host-time profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The last state sample observed (the engine's closing state),
    /// or `None` if no event was handled. Its accounting totals
    /// reconcile exactly with the run's `SchedMetrics`.
    pub fn final_sample(&self) -> Option<&StateSample> {
        self.last.as_ref()
    }

    /// Owner arrivals observed per machine.
    pub fn owner_arrivals(&self) -> &[u64] {
        &self.owner_arrivals
    }

    /// Guest-displacing reclaims observed per machine.
    pub fn evictions_by_machine(&self) -> &[u64] {
        &self.evictions
    }

    /// Render the record log as JSON Lines: one object per record,
    /// `{"t":...,"type":...,...}`, in event-execution order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for (t, rec) in &self.events {
            render_record_json(&mut out, *t, rec);
            out.push('\n');
        }
        out
    }

    /// Render the record log as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` format Perfetto and `chrome://tracing`
    /// load): one named track per machine, `B`/`E` spans for guest
    /// segments, instants for arrivals, owner activity, evictions, and
    /// gang lifecycle. Timestamps are sim time scaled to microseconds.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: &str, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(s);
        };
        // Track names: one thread per machine plus a scheduler track.
        for m in 0..self.machines {
            push(
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{m},\
                     \"args\":{{\"name\":\"machine {m}\"}}}}"
                ),
                &mut out,
            );
        }
        let sched_tid = self.machines;
        push(
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{sched_tid},\
                 \"args\":{{\"name\":\"scheduler\"}}}}"
            ),
            &mut out,
        );
        for (t, rec) in &self.events {
            let ts = json_num(t * 1e6);
            let ev = match *rec {
                SchedRecord::SegmentStart {
                    machine,
                    job,
                    task,
                    kind,
                    wall,
                } => format!(
                    "{{\"name\":\"{}\",\"cat\":\"segment\",\"ph\":\"B\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"args\":{{\"job\":{job},\"task\":{task},\
                     \"wall\":{}}}}}",
                    kind.name(),
                    json_num(wall)
                ),
                SchedRecord::SegmentEnd { machine, kind, .. }
                | SchedRecord::SegmentPreempted { machine, kind, .. } => format!(
                    "{{\"name\":\"{}\",\"cat\":\"segment\",\"ph\":\"E\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine}}}",
                    kind.name()
                ),
                SchedRecord::TaskCompleted { machine, job, task } => format!(
                    "{{\"name\":\"task_completed\",\"cat\":\"task\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"s\":\"t\",\
                     \"args\":{{\"job\":{job},\"task\":{task}}}}}"
                ),
                SchedRecord::OwnerArrival { machine } => format!(
                    "{{\"name\":\"owner_arrival\",\"cat\":\"owner\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"s\":\"t\"}}"
                ),
                SchedRecord::OwnerDeparture { machine } => format!(
                    "{{\"name\":\"owner_departure\",\"cat\":\"owner\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"s\":\"t\"}}"
                ),
                SchedRecord::Eviction {
                    machine,
                    job,
                    task,
                    action,
                } => format!(
                    "{{\"name\":\"eviction_{}\",\"cat\":\"eviction\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"s\":\"t\",\
                     \"args\":{{\"job\":{job},\"task\":{task}}}}}",
                    action.name()
                ),
                SchedRecord::TaskPlaced { machine, job, task } => format!(
                    "{{\"name\":\"task_placed\",\"cat\":\"placement\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{machine},\"s\":\"t\",\
                     \"args\":{{\"job\":{job},\"task\":{task}}}}}"
                ),
                SchedRecord::JobArrival { job } => format!(
                    "{{\"name\":\"job_arrival\",\"cat\":\"job\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{sched_tid},\"s\":\"t\",\"args\":{{\"job\":{job}}}}}"
                ),
                SchedRecord::JobCompleted { job } => format!(
                    "{{\"name\":\"job_completed\",\"cat\":\"job\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{sched_tid},\"s\":\"t\",\"args\":{{\"job\":{job}}}}}"
                ),
                SchedRecord::GangAdmitted { job, members } => format!(
                    "{{\"name\":\"gang_admitted\",\"cat\":\"gang\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{sched_tid},\"s\":\"t\",\
                     \"args\":{{\"job\":{job},\"members\":{members}}}}}"
                ),
                SchedRecord::GangSuspended { job } => format!(
                    "{{\"name\":\"gang_suspended\",\"cat\":\"gang\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{sched_tid},\"s\":\"t\",\"args\":{{\"job\":{job}}}}}"
                ),
                SchedRecord::GangMigrated { job } => format!(
                    "{{\"name\":\"gang_migrated\",\"cat\":\"gang\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{sched_tid},\"s\":\"t\",\"args\":{{\"job\":{job}}}}}"
                ),
            };
            push(&ev, &mut out);
        }
        out.push_str("]}");
        out
    }

    /// Render the metrics registry plus per-machine owner activity as
    /// one JSON object.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\"registry\":");
        out.push_str(&self.registry.to_json());
        out.push_str(",\"per_machine\":{\"owner_arrivals\":[");
        for (i, v) in self.owner_arrivals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("],\"evictions\":[");
        for (i, v) in self.evictions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("]}}");
        out
    }

    /// Render the host-time profile as one JSON object.
    pub fn profile_json(&self) -> String {
        self.profiler.to_json()
    }
}

impl SchedTracer for FlightRecorder {
    #[inline]
    fn record(&mut self, now: f64, record: SchedRecord) {
        match record {
            SchedRecord::OwnerArrival { machine } => {
                self.owner_arrivals[machine as usize] += 1;
            }
            SchedRecord::Eviction { machine, .. } => {
                self.evictions[machine as usize] += 1;
            }
            _ => {}
        }
        self.events.push((now, record));
    }

    #[inline]
    fn state(&mut self, now: f64, sample: &StateSample) {
        let t = SimTime::new(now);
        self.registry
            .set(t, self.s_queue, f64::from(sample.queue_depth));
        self.registry
            .set(t, self.s_free, f64::from(sample.free_machines));
        self.registry
            .set(t, self.s_running, f64::from(sample.running_gangs));
        self.registry
            .set(t, self.s_degraded, f64::from(sample.degraded_gangs));
        self.registry
            .set(t, self.s_pending, f64::from(sample.pending_events));
        self.registry.set(t, self.s_goodput, sample.goodput);
        self.registry.set(t, self.s_wasted, sample.wasted);
        self.last = Some(*sample);
    }

    #[inline]
    fn handled(&mut self, class: EventClass, nanos: u64) {
        self.profiler.observe(class, nanos);
    }
}

/// Append one record's JSONL object (no trailing newline) to `out`.
fn render_record_json(out: &mut String, t: f64, rec: &SchedRecord) {
    let _ = write!(out, "{{\"t\":{},\"type\":", json_num(t));
    out.push_str(&json_str(rec.kind_name()));
    match *rec {
        SchedRecord::JobArrival { job } | SchedRecord::JobCompleted { job } => {
            let _ = write!(out, ",\"job\":{job}");
        }
        SchedRecord::TaskPlaced { machine, job, task }
        | SchedRecord::TaskCompleted { machine, job, task } => {
            let _ = write!(out, ",\"machine\":{machine},\"job\":{job},\"task\":{task}");
        }
        SchedRecord::SegmentStart {
            machine,
            job,
            task,
            kind,
            wall,
        } => {
            let _ = write!(
                out,
                ",\"machine\":{machine},\"job\":{job},\"task\":{task},\"kind\":\"{}\",\"wall\":{}",
                kind.name(),
                json_num(wall)
            );
        }
        SchedRecord::SegmentEnd {
            machine,
            job,
            task,
            kind,
        }
        | SchedRecord::SegmentPreempted {
            machine,
            job,
            task,
            kind,
        } => {
            let _ = write!(
                out,
                ",\"machine\":{machine},\"job\":{job},\"task\":{task},\"kind\":\"{}\"",
                kind.name()
            );
        }
        SchedRecord::OwnerArrival { machine } | SchedRecord::OwnerDeparture { machine } => {
            let _ = write!(out, ",\"machine\":{machine}");
        }
        SchedRecord::Eviction {
            machine,
            job,
            task,
            action,
        } => {
            let _ = write!(
                out,
                ",\"machine\":{machine},\"job\":{job},\"task\":{task},\"action\":\"{}\"",
                action.name()
            );
        }
        SchedRecord::GangAdmitted { job, members } => {
            let _ = write!(out, ",\"job\":{job},\"members\":{members}");
        }
        SchedRecord::GangSuspended { job } | SchedRecord::GangMigrated { job } => {
            let _ = write!(out, ",\"job\":{job}");
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_trace_is_disabled_for_sched() {
        const { assert!(!<NoTrace as SchedTracer>::ENABLED) };
        const { assert!(<FlightRecorder as SchedTracer>::ENABLED) };
    }

    #[test]
    fn profiler_attributes_per_class() {
        let mut p = Profiler::default();
        p.observe(EventClass::SegmentEnd, 100);
        p.observe(EventClass::SegmentEnd, 50);
        p.observe(EventClass::JobArrival, 10);
        assert_eq!(p.count(EventClass::SegmentEnd), 2);
        assert_eq!(p.nanos(EventClass::SegmentEnd), 150);
        assert_eq!(p.total_count(), 3);
        assert_eq!(p.total_nanos(), 160);
        let json = p.to_json();
        assert!(json.contains("\"class\":\"segment_end\",\"count\":2,\"nanos\":150"));
        assert!(json.contains("\"total_count\":3"));
    }

    #[test]
    fn recorder_buffers_and_renders_records() {
        let mut rec = FlightRecorder::new(2, 10.0);
        rec.record(0.0, SchedRecord::JobArrival { job: 0 });
        rec.record(
            1.5,
            SchedRecord::SegmentStart {
                machine: 1,
                job: 0,
                task: 3,
                kind: SegmentKind::Work,
                wall: 4.25,
            },
        );
        rec.record(
            5.75,
            SchedRecord::Eviction {
                machine: 1,
                job: 0,
                task: 3,
                action: EvictionAction::Suspend,
            },
        );
        rec.record(5.75, SchedRecord::OwnerArrival { machine: 1 });
        assert_eq!(rec.events().len(), 4);
        assert_eq!(rec.owner_arrivals(), &[0, 1]);
        assert_eq!(rec.evictions_by_machine(), &[0, 1]);
        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "{\"t\":0,\"type\":\"job_arrival\",\"job\":0}");
        assert!(lines[1].contains("\"kind\":\"work\",\"wall\":4.25"));
        assert!(lines[2].contains("\"action\":\"suspend\""));
    }

    #[test]
    fn chrome_trace_has_tracks_spans_and_instants() {
        let mut rec = FlightRecorder::new(1, 10.0);
        rec.record(
            0.0,
            SchedRecord::SegmentStart {
                machine: 0,
                job: 0,
                task: 0,
                kind: SegmentKind::Work,
                wall: 2.0,
            },
        );
        rec.record(
            2.0,
            SchedRecord::SegmentEnd {
                machine: 0,
                job: 0,
                task: 0,
                kind: SegmentKind::Work,
            },
        );
        rec.record(2.0, SchedRecord::JobCompleted { job: 0 });
        let json = rec.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"M\""), "thread names present");
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ts\":2000000"), "sim time in microseconds");
        assert!(json.contains("\"name\":\"machine 0\""));
        assert!(json.contains("\"name\":\"scheduler\""));
    }

    #[test]
    fn state_samples_feed_the_registry() {
        let mut rec = FlightRecorder::new(4, 5.0);
        rec.state(
            0.0,
            &StateSample {
                queue_depth: 3,
                free_machines: 4,
                goodput: 0.0,
                ..StateSample::default()
            },
        );
        rec.state(
            7.0,
            &StateSample {
                queue_depth: 1,
                free_machines: 2,
                goodput: 12.5,
                ..StateSample::default()
            },
        );
        rec.finish(9.0);
        assert_eq!(rec.final_sample().unwrap().goodput, 12.5);
        let json = rec.metrics_json();
        assert!(json.contains("\"registry\":{"));
        assert!(json.contains("\"queue_depth\""));
        assert!(json.contains("\"per_machine\""));
        assert!(json.contains("\"owner_arrivals\":[0,0,0,0]"));
    }
}
