//! # nds-sched — a Condor-style cycle-stealing pool scheduler
//!
//! The paper assumes the simplest possible scheduler: one perfectly
//! parallel job, statically sliced into `W` tasks, one per workstation,
//! suspended and resumed beneath the owners. Its §5 future work — "more
//! complex workloads" and owner behaviour — points straight at the real
//! cycle-stealing systems of the era (Condor above all), which had to
//! decide *where* tasks go, *what* happens when an owner returns, and
//! *which* queued job runs next. This crate simulates that whole layer
//! on top of the [`nds_des`] engine:
//!
//! * [`pool`] — dynamic pool membership: a machine is offerable only
//!   while its owner is away and no guest occupies it, with
//!   probe-style exponentially-weighted utilization estimates (and an
//!   optional pre-run calibration probe, the simulated `uptime` the
//!   paper calibrated against).
//! * [`policy`] — the [`policy::PlacementPolicy`] trait with
//!   [`policy::RandomPlacement`], [`policy::RoundRobinPlacement`], and
//!   [`policy::LeastLoadedPlacement`].
//! * [`eviction`] — owner-return handling: Restart, Suspend/Resume
//!   (the paper's assumption), Migrate, and periodic Checkpoint.
//! * [`gang`] — gang scheduling / co-allocation: all-or-nothing job
//!   admission, lockstep (barrier-synchronized) execution, suspend-all
//!   or migrate-as-a-unit reclaim semantics, and Ousterhout-style
//!   **partial gangs** ([`gang::GangPolicy::Partial`]) that keep
//!   computing at a degraded rate while at least `min_running` members
//!   hold machines — with co-allocation wait / fragmentation /
//!   barrier-stall / degraded-mode / effective-parallelism metrics.
//! * [`failure`] — fault injection: per-machine crash/repair processes
//!   ([`failure::FailureModel`]) with crash semantics distinct from
//!   owner reclaim — crashes destroy suspended guests and in-flight
//!   checkpoints and remove the machine from the pool until repair.
//! * [`queue`] — a central job queue (FCFS and shortest-job backfill)
//!   feeding multi-job workloads.
//! * [`feed`] — streaming job feeds: [`simulator::SchedConfig::run_streamed`]
//!   pulls arrivals from a [`feed::JobFeed`] in bounded chunks and
//!   retires completed job records through a sink, so a million-job
//!   trace runs in O(chunk + live window) memory instead of
//!   materializing the whole `Vec<JobSpec>`.
//! * [`metrics`] — makespan, goodput, wasted work, checkpoint
//!   overhead, eviction/migration counts, and the work-conservation
//!   invariant `delivered == goodput + wasted + checkpoint_overhead`.
//! * [`simulator`] — the event loop tying it all together.
//! * [`trace`] — the flight recorder: the zero-cost [`trace::SchedTracer`]
//!   hook trait the event loop is generic over (disabled by default via
//!   [`nds_des::NoTrace`], which compiles the hooks away), and the
//!   everything-on [`trace::FlightRecorder`] producing JSONL event
//!   traces, Chrome/Perfetto trace JSON, sim-time metrics series, and
//!   per-event-type host profiles.
//!
//! ## Relation to the paper's model
//!
//! With a fixed full-size pool, one job of one task per machine, and
//! [`EvictionPolicy::SuspendResume`], the scheduler degenerates to the
//! paper's model exactly: machine `i` consumes the same RNG stream as
//! [`nds_cluster::JobRunner`]'s station `i`, so the degenerate
//! configuration reproduces `JobRunner`'s job times bit-for-bit (the
//! workspace's invariant tests enforce this).
//!
//! ## Quickstart
//!
//! ```
//! use nds_cluster::owner::OwnerWorkload;
//! use nds_sched::{EvictionPolicy, JobSpec, SchedConfig};
//!
//! let owner = OwnerWorkload::continuous_exponential(10.0, 0.10).unwrap();
//! let mut cfg = SchedConfig::homogeneous(
//!     8,
//!     &owner,
//!     vec![JobSpec::at_zero(16, 100.0)],
//! );
//! cfg.eviction = EvictionPolicy::Checkpoint { interval: 25.0, overhead: 0.5 };
//! let metrics = cfg.run().unwrap();
//! assert_eq!(metrics.completed_tasks, 16);
//! assert!(metrics.is_consistent());
//! ```
//!
//! ## Partial gangs (`min_running`)
//!
//! Between independent tasks and all-or-nothing gangs sits
//! Ousterhout-style co-scheduling: the job keeps computing — at a rate
//! proportional to its running member count — as long as at least
//! `min_running` of its tasks hold owner-free machines, and suspends
//! as a whole only below that floor. The floor's boundaries are the
//! two existing engines, bit-for-bit: `min_running: 1` on single-task
//! gangs is [`GangPolicy::Off`], `min_running: k` is
//! [`GangPolicy::SuspendAll`] (the workspace's `gang_invariants`
//! property tests pin both).
//!
//! ```
//! use nds_cluster::owner::OwnerWorkload;
//! use nds_sched::{GangPolicy, JobSpec, SchedConfig};
//!
//! let owner = OwnerWorkload::continuous_exponential(10.0, 0.15).unwrap();
//! // An 8-wide gang that tolerates losing up to half its machines.
//! let mut cfg = SchedConfig::homogeneous(
//!     8,
//!     &owner,
//!     vec![JobSpec::at_zero(8, 100.0)],
//! );
//! cfg.gang = GangPolicy::Partial { min_running: 4 };
//! let metrics = cfg.run().unwrap();
//! assert_eq!(metrics.gang.floor_violations, 0);
//! // ∫ rate·dt over work segments is exactly the demand served.
//! let integral = metrics.gang.parallelism_integral;
//! assert!((integral - metrics.total_demand).abs() <= 1e-9 * metrics.total_demand);
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod eviction;
pub mod failure;
pub mod feed;
pub mod gang;
pub mod metrics;
pub mod policy;
pub mod pool;
pub mod queue;
pub mod simulator;
pub mod trace;

pub use error::SchedError;
pub use eviction::{on_eviction, EvictionOutcome, EvictionPolicy};
pub use failure::{FailureModel, Lifetime};
pub use feed::{JobFeed, SliceFeed, VecFeed};
pub use gang::{GangPolicy, GangQueue, GangStats, PendingGang};
pub use metrics::{JobRecord, SchedMetrics};
pub use policy::{CandidateMachine, PlacementKind, PlacementPolicy};
pub use pool::{Pool, UtilizationEstimator};
pub use queue::{JobQueue, JobSpec, PendingTask, QueueDiscipline};
pub use simulator::SchedConfig;
pub use trace::{
    EventClass, EvictionAction, FlightRecorder, ObsKind, Profiler, ProgressMeter, RecordFilter,
    SchedRecord, SchedTracer, SegmentKind, StateSample, Tee,
};
