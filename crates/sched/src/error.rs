//! Error type for scheduler configuration and execution.

use std::fmt;

/// Why a scheduler run could not be configured or completed.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// A configuration field was out of range.
    InvalidConfig {
        /// Which field was rejected.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The simulation hit its event cap before every job completed —
    /// usually a sign of a starved pool (admission threshold below every
    /// owner's utilization) or a Restart policy thrashing on demands far
    /// longer than the owners' idle gaps.
    EventCapExceeded {
        /// The cap that was hit.
        max_events: u64,
        /// Jobs still incomplete when the cap was hit.
        jobs_unfinished: usize,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { field, reason } => {
                write!(f, "invalid scheduler config: {field}: {reason}")
            }
            Self::EventCapExceeded {
                max_events,
                jobs_unfinished,
            } => write!(
                f,
                "scheduler run exceeded {max_events} events with \
                 {jobs_unfinished} job(s) unfinished"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SchedError::InvalidConfig {
            field: "admission_threshold",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("admission_threshold"));
        let e = SchedError::EventCapExceeded {
            max_events: 10,
            jobs_unfinished: 2,
        };
        assert!(e.to_string().contains("2 job(s)"));
    }
}
