//! The scheduler simulation itself: one [`nds_des::Engine`] driving
//! owner workloads, the central queue, placement, and eviction.
//!
//! # Event structure
//!
//! * **Owner arrival/departure** — each machine's owner alternates
//!   think/use cycles drawn from its [`OwnerWorkload`], exactly as in
//!   [`nds_cluster::ContinuousWorkstation`]; an arrival on a machine
//!   hosting a guest task triggers the configured
//!   [`EvictionPolicy`].
//! * **Job arrival** — pushes the job's tasks into the central
//!   [`JobQueue`].
//! * **Segment end** — guest execution is sliced into segments (setup,
//!   work, checkpoint-write); the end of each either completes the task
//!   or starts the next segment.
//!
//! # Reproducibility
//!
//! Machine `i` consumes the stream labeled `("ws-continuous",
//! i << 32 | replication)` — deliberately the same derivation
//! [`nds_cluster::JobRunner`] uses — so the degenerate configuration
//! (fixed full-size pool, suspend-resume eviction, one job with one
//! task per machine) reproduces `JobRunner`'s sample paths exactly.
//! Placement and calibration draw from separate streams, so changing
//! the placement policy never perturbs the owners' sample paths
//! (common-random-numbers across policies).

use crate::error::SchedError;
use crate::eviction::{on_eviction, EvictionPolicy};
use crate::metrics::{JobRecord, SchedMetrics};
use crate::policy::{PlacementKind, PlacementPolicy};
use crate::pool::Pool;
use crate::queue::{JobQueue, JobSpec, PendingTask, QueueDiscipline};
use nds_cluster::owner::OwnerWorkload;
use nds_cluster::probe::measure_utilization;
use nds_des::{Engine, EventId, SimTime};
use nds_stats::rng::{StreamFactory, Xoshiro256StarStar};
use std::cell::RefCell;
use std::rc::Rc;

/// Work-remaining below which a task counts as complete (absorbs float
/// round-off from slicing).
const WORK_EPS: f64 = 1e-12;

/// Full description of one scheduler experiment.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// One owner workload per machine in the pool.
    pub owners: Vec<OwnerWorkload>,
    /// The jobs submitted to the central queue.
    pub jobs: Vec<JobSpec>,
    /// Task placement policy.
    pub placement: PlacementKind,
    /// Owner-return policy.
    pub eviction: EvictionPolicy,
    /// Central queue ordering.
    pub discipline: QueueDiscipline,
    /// Maximum estimated owner utilization at which a machine is still
    /// offered to the scheduler (1.0 admits every idle machine).
    pub admission_threshold: f64,
    /// Averaging window of the per-machine utilization estimators.
    pub estimator_tau: f64,
    /// Pre-run probe horizon used to seed the estimators (0 disables —
    /// the scheduler then starts with no prior, like a cold `uptime`
    /// table).
    pub calibration_horizon: f64,
    /// Master seed for every stream in the run.
    pub seed: u64,
    /// Replication index (varies the sample path under one seed).
    pub replication: u64,
    /// Safety cap on executed events.
    pub max_events: u64,
}

impl SchedConfig {
    /// A homogeneous pool of `w` machines sharing one owner workload,
    /// with every other knob at its default.
    pub fn homogeneous(w: u32, owner: &OwnerWorkload, jobs: Vec<JobSpec>) -> Self {
        Self {
            owners: vec![owner.clone(); w as usize],
            jobs,
            placement: PlacementKind::LeastLoaded,
            eviction: EvictionPolicy::SuspendResume,
            discipline: QueueDiscipline::Fcfs,
            admission_threshold: 1.0,
            estimator_tau: 1_000.0,
            calibration_horizon: 0.0,
            seed: 0x5EED,
            replication: 0,
            max_events: 20_000_000,
        }
    }

    /// Validate every field.
    pub fn validate(&self) -> Result<(), SchedError> {
        let invalid = |field, reason: String| Err(SchedError::InvalidConfig { field, reason });
        if self.owners.is_empty() {
            return invalid("owners", "pool needs at least one machine".into());
        }
        if self.jobs.is_empty() {
            return invalid("jobs", "need at least one job".into());
        }
        for (i, j) in self.jobs.iter().enumerate() {
            if j.tasks == 0 {
                return invalid("jobs", format!("job {i} has zero tasks"));
            }
            if !(j.task_demand.is_finite() && j.task_demand > 0.0) {
                return invalid("jobs", format!("job {i} task_demand {}", j.task_demand));
            }
            if !(j.arrival.is_finite() && j.arrival >= 0.0) {
                return invalid("jobs", format!("job {i} arrival {}", j.arrival));
            }
        }
        if !(self.admission_threshold.is_finite() && self.admission_threshold > 0.0) {
            return invalid(
                "admission_threshold",
                format!("{} not finite > 0", self.admission_threshold),
            );
        }
        if !(self.estimator_tau.is_finite() && self.estimator_tau > 0.0) {
            return invalid(
                "estimator_tau",
                format!("{} not finite > 0", self.estimator_tau),
            );
        }
        if !(self.calibration_horizon.is_finite() && self.calibration_horizon >= 0.0) {
            return invalid(
                "calibration_horizon",
                format!("{} not finite >= 0", self.calibration_horizon),
            );
        }
        if self.max_events == 0 {
            return invalid("max_events", "must be positive".into());
        }
        if let Err((field, reason)) = self.eviction.validate() {
            return invalid(field, reason);
        }
        Ok(())
    }

    /// Run `reps` independent replications (replication indices
    /// `0..reps` under this config's seed) and collect their metrics.
    /// This is the one experiment harness the CLI and bench binaries
    /// share, so "mean over replications" always means the same thing.
    pub fn run_replications(&self, reps: u64) -> Result<Vec<SchedMetrics>, SchedError> {
        let mut cfg = self.clone();
        (0..reps.max(1))
            .map(|rep| {
                cfg.replication = rep;
                cfg.run()
            })
            .collect()
    }

    /// Run the experiment to completion of every job.
    pub fn run(&self) -> Result<SchedMetrics, SchedError> {
        self.validate()?;
        let factory = StreamFactory::new(self.seed);
        let w = self.owners.len();

        let initial_estimates: Vec<f64> = if self.calibration_horizon > 0.0 {
            self.owners
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    let mut rng =
                        factory.labeled_stream("sched-probe", (i as u64) << 32 | self.replication);
                    measure_utilization(o, self.calibration_horizon, &mut rng).utilization
                })
                .collect()
        } else {
            Vec::new()
        };

        let machines: Vec<MachineSim> = self
            .owners
            .iter()
            .enumerate()
            .map(|(i, o)| MachineSim {
                owner: o.clone(),
                rng: Xoshiro256StarStar::new(
                    factory
                        .labeled_stream("ws-continuous", (i as u64) << 32 | self.replication)
                        .next(),
                ),
                guest: None,
            })
            .collect();

        let jobs: Vec<JobState> = self
            .jobs
            .iter()
            .map(|spec| JobState {
                tasks_left: spec.tasks,
                record: JobRecord {
                    arrival: spec.arrival,
                    completion: f64::NAN,
                    demand: spec.total_demand(),
                },
            })
            .collect();
        let jobs_remaining = jobs.len();

        let sim = Rc::new(RefCell::new(Sim {
            machines,
            pool: Pool::new(
                w,
                self.admission_threshold,
                self.estimator_tau,
                &initial_estimates,
            ),
            queue: JobQueue::new(),
            specs: self.jobs.clone(),
            jobs,
            jobs_remaining,
            placement: self.placement.build(),
            placement_rng: factory.labeled_stream("sched-placement", self.replication),
            eviction: self.eviction,
            discipline: self.discipline,
            acc: Acc::default(),
            makespan: 0.0,
            done: false,
        }));

        let mut engine = Engine::new();
        for m in 0..w {
            let think = {
                let mut st = sim.borrow_mut();
                let mach = &mut st.machines[m];
                mach.owner.sample_think(&mut mach.rng)
            };
            let sc = Rc::clone(&sim);
            engine
                .schedule(SimTime::new(think), move |e| owner_arrival(e, &sc, m))
                .expect("think time is non-negative");
        }
        for (j, spec) in self.jobs.iter().enumerate() {
            let sc = Rc::clone(&sim);
            engine
                .schedule(SimTime::new(spec.arrival), move |e| job_arrival(e, &sc, j))
                .expect("arrival is non-negative");
        }

        engine.run_to_quiescence(Some(self.max_events));

        let mut st = sim.borrow_mut();
        if !st.done {
            return Err(SchedError::EventCapExceeded {
                max_events: self.max_events,
                jobs_unfinished: st.jobs_remaining,
            });
        }
        let makespan = st.makespan;
        let mean_available_machines = st.pool.mean_available(makespan);
        let acc = st.acc;
        Ok(SchedMetrics {
            makespan,
            delivered: acc.delivered,
            goodput: acc.goodput,
            wasted: acc.wasted,
            checkpoint_overhead: acc.ckpt,
            evictions: acc.evictions,
            suspensions: acc.suspensions,
            restarts: acc.restarts,
            migrations: acc.migrations,
            completed_tasks: acc.completed_tasks,
            total_demand: self.jobs.iter().map(JobSpec::total_demand).sum(),
            placements: acc.placements,
            mean_queue_wait: if acc.placements == 0 {
                0.0
            } else {
                acc.total_wait / acc.placements as f64
            },
            mean_available_machines,
            jobs: st.jobs.iter().map(|j| j.record).collect(),
        })
    }
}

/// One slice of guest execution on a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Segment {
    /// Migration restore; counted as wasted work.
    Setup { len: f64 },
    /// Real progress.
    Work { len: f64 },
    /// Checkpoint write; counted as checkpoint overhead.
    CkptWrite { len: f64 },
}

impl Segment {
    fn len(&self) -> f64 {
        match *self {
            Segment::Setup { len } | Segment::Work { len } | Segment::CkptWrite { len } => len,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RunState {
    segment: Segment,
    slice_start: f64,
    event: EventId,
}

#[derive(Debug, Clone)]
struct GuestTask {
    job: usize,
    task: u32,
    demand: f64,
    /// Work remaining at the current segment's start.
    remaining: f64,
    /// Progress not yet covered by a checkpoint, at segment start.
    since_ckpt: f64,
    /// Setup still owed before computing.
    setup_left: f64,
    /// `None` while suspended beneath the owner.
    run: Option<RunState>,
}

#[derive(Debug)]
struct MachineSim {
    owner: OwnerWorkload,
    rng: Xoshiro256StarStar,
    guest: Option<GuestTask>,
}

#[derive(Debug, Clone, Copy)]
struct JobState {
    tasks_left: u32,
    record: JobRecord,
}

#[derive(Debug, Clone, Copy, Default)]
struct Acc {
    delivered: f64,
    goodput: f64,
    wasted: f64,
    ckpt: f64,
    evictions: u64,
    suspensions: u64,
    restarts: u64,
    migrations: u64,
    completed_tasks: u64,
    placements: u64,
    total_wait: f64,
}

struct Sim {
    machines: Vec<MachineSim>,
    pool: Pool,
    queue: JobQueue,
    specs: Vec<JobSpec>,
    jobs: Vec<JobState>,
    jobs_remaining: usize,
    placement: Box<dyn PlacementPolicy>,
    placement_rng: Xoshiro256StarStar,
    eviction: EvictionPolicy,
    discipline: QueueDiscipline,
    acc: Acc,
    makespan: f64,
    done: bool,
}

/// Choose the next segment for a (re)starting guest.
fn next_segment(eviction: EvictionPolicy, g: &GuestTask) -> Segment {
    if g.setup_left > 0.0 {
        return Segment::Setup { len: g.setup_left };
    }
    if let EvictionPolicy::Checkpoint { interval, overhead } = eviction {
        let to_ckpt = interval - g.since_ckpt;
        if to_ckpt <= WORK_EPS {
            return Segment::CkptWrite { len: overhead };
        }
        return Segment::Work {
            len: g.remaining.min(to_ckpt),
        };
    }
    Segment::Work { len: g.remaining }
}

/// Begin the next segment of the guest on machine `m`.
fn start_segment(engine: &mut Engine, sim: &Rc<RefCell<Sim>>, m: usize) {
    let delay = {
        let mut st = sim.borrow_mut();
        let eviction = st.eviction;
        let now = engine.now().as_f64();
        let guest = st.machines[m]
            .guest
            .as_mut()
            .expect("segment needs a guest");
        let segment = next_segment(eviction, guest);
        let len = segment.len();
        guest.run = Some(RunState {
            segment,
            slice_start: now,
            event: 0,
        });
        len
    };
    let sc = Rc::clone(sim);
    let ev = engine
        .schedule_in(SimTime::new(delay), move |e| segment_end(e, &sc, m))
        .expect("segment length is non-negative");
    sim.borrow_mut().machines[m]
        .guest
        .as_mut()
        .expect("guest placed above")
        .run
        .as_mut()
        .expect("run state set above")
        .event = ev;
}

/// A segment ran to completion undisturbed.
fn segment_end(engine: &mut Engine, sim: &Rc<RefCell<Sim>>, m: usize) {
    let now = engine.now().as_f64();
    let completed = {
        let mut st = sim.borrow_mut();
        let st = &mut *st;
        let guest = st.machines[m]
            .guest
            .as_mut()
            .expect("segment_end fires only with a guest aboard");
        let run = guest.run.as_ref().expect("guest was running");
        let segment = run.segment;
        st.acc.delivered += segment.len();
        match segment {
            Segment::Setup { len } => {
                st.acc.wasted += len;
                guest.setup_left = 0.0;
                false
            }
            Segment::CkptWrite { len } => {
                st.acc.ckpt += len;
                guest.since_ckpt = 0.0;
                false
            }
            Segment::Work { len } => {
                guest.remaining -= len;
                guest.since_ckpt += len;
                guest.remaining <= WORK_EPS
            }
        }
    };
    if !completed {
        start_segment(engine, sim, m);
        return;
    }
    let all_done = {
        let mut st = sim.borrow_mut();
        let st = &mut *st;
        let guest = st.machines[m].guest.take().expect("completing guest");
        st.pool.set_occupied(now, m, false);
        st.acc.goodput += guest.demand;
        st.acc.completed_tasks += 1;
        let job = &mut st.jobs[guest.job];
        job.tasks_left -= 1;
        if job.tasks_left == 0 {
            job.record.completion = now;
            st.jobs_remaining -= 1;
            if st.jobs_remaining == 0 {
                st.done = true;
                st.makespan = now;
            }
        }
        st.done
    };
    if !all_done {
        dispatch(engine, sim);
    }
}

/// A job reaches the central queue.
fn job_arrival(engine: &mut Engine, sim: &Rc<RefCell<Sim>>, j: usize) {
    let now = engine.now().as_f64();
    {
        let mut st = sim.borrow_mut();
        let spec = st.specs[j];
        for task in 0..spec.tasks {
            st.queue.push(PendingTask {
                job: j,
                task,
                demand: spec.task_demand,
                remaining: spec.task_demand,
                setup: 0.0,
                enqueued_at: now,
            });
        }
    }
    dispatch(engine, sim);
}

/// Match queued tasks to available machines until either runs out.
fn dispatch(engine: &mut Engine, sim: &Rc<RefCell<Sim>>) {
    loop {
        let placed = {
            let mut st = sim.borrow_mut();
            if st.done || st.queue.is_empty() {
                return;
            }
            let candidates = st.pool.candidates();
            if candidates.is_empty() {
                return;
            }
            let now = engine.now().as_f64();
            let st = &mut *st;
            let pending = st
                .queue
                .pop(st.discipline)
                .expect("queue checked non-empty");
            let chosen = st.placement.choose(&candidates, &mut st.placement_rng);
            let m = candidates[chosen].machine;
            st.acc.placements += 1;
            st.acc.total_wait += now - pending.enqueued_at;
            st.pool.set_occupied(now, m, true);
            st.machines[m].guest = Some(GuestTask {
                job: pending.job,
                task: pending.task,
                demand: pending.demand,
                remaining: pending.remaining,
                since_ckpt: 0.0,
                setup_left: pending.setup,
                run: None,
            });
            m
        };
        start_segment(engine, sim, placed);
    }
}

/// An owner returns to their machine.
fn owner_arrival(engine: &mut Engine, sim: &Rc<RefCell<Sim>>, m: usize) {
    let now = engine.now().as_f64();
    let (service, requeued) = {
        let mut st = sim.borrow_mut();
        if st.done {
            return;
        }
        let st = &mut *st;
        st.pool.owner_transition(now, m, true);
        let mut requeued = false;
        if let Some(mut guest) = st.machines[m].guest.take() {
            let run = guest
                .run
                .take()
                .expect("owner was away, so the guest was running");
            engine.cancel(run.event);
            let elapsed = now - run.slice_start;
            st.acc.delivered += elapsed;
            match run.segment {
                // An interrupted restore is redone in full next time.
                Segment::Setup { .. } => st.acc.wasted += elapsed,
                // An aborted checkpoint write is still overhead.
                Segment::CkptWrite { .. } => st.acc.ckpt += elapsed,
                Segment::Work { .. } => {
                    guest.remaining -= elapsed;
                    guest.since_ckpt += elapsed;
                }
            }
            st.acc.evictions += 1;
            match st.eviction {
                EvictionPolicy::SuspendResume => {
                    st.acc.suspensions += 1;
                    st.machines[m].guest = Some(guest);
                }
                policy => {
                    let out = on_eviction(policy, guest.demand, guest.remaining, guest.since_ckpt);
                    st.acc.wasted += out.lost;
                    match policy {
                        EvictionPolicy::Restart => st.acc.restarts += 1,
                        EvictionPolicy::Migrate { .. } => st.acc.migrations += 1,
                        _ => {}
                    }
                    st.pool.set_occupied(now, m, false);
                    st.queue.push(PendingTask {
                        job: guest.job,
                        task: guest.task,
                        demand: guest.demand,
                        remaining: out.new_remaining,
                        setup: out.setup,
                        enqueued_at: now,
                    });
                    requeued = true;
                }
            }
        }
        let mach = &mut st.machines[m];
        let service = mach.owner.sample_service(&mut mach.rng);
        (service, requeued)
    };
    let sc = Rc::clone(sim);
    engine
        .schedule_in(SimTime::new(service), move |e| owner_departure(e, &sc, m))
        .expect("service time is positive");
    if requeued {
        dispatch(engine, sim);
    }
}

/// An owner leaves their machine idle again.
fn owner_departure(engine: &mut Engine, sim: &Rc<RefCell<Sim>>, m: usize) {
    let now = engine.now().as_f64();
    let (resume, think) = {
        let mut st = sim.borrow_mut();
        if st.done {
            return;
        }
        let st = &mut *st;
        st.pool.owner_transition(now, m, false);
        let resume = st.machines[m].guest.is_some();
        let mach = &mut st.machines[m];
        let think = mach.owner.sample_think(&mut mach.rng);
        (resume, think)
    };
    let sc = Rc::clone(sim);
    engine
        .schedule_in(SimTime::new(think), move |e| owner_arrival(e, &sc, m))
        .expect("think time is non-negative");
    if resume {
        start_segment(engine, sim, m);
    } else {
        dispatch(engine, sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(u: f64) -> OwnerWorkload {
        OwnerWorkload::continuous_exponential(10.0, u).unwrap()
    }

    fn base_config(eviction: EvictionPolicy) -> SchedConfig {
        let mut cfg = SchedConfig::homogeneous(
            6,
            &owner(0.15),
            vec![JobSpec::at_zero(10, 80.0), JobSpec::at_zero(4, 40.0)],
        );
        cfg.eviction = eviction;
        cfg.seed = 99;
        cfg
    }

    #[test]
    fn suspend_resume_wastes_nothing() {
        let m = base_config(EvictionPolicy::SuspendResume).run().unwrap();
        assert_eq!(m.completed_tasks, 14);
        assert_eq!(m.wasted, 0.0);
        assert_eq!(m.checkpoint_overhead, 0.0);
        assert!((m.goodput - m.total_demand).abs() < 1e-9);
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
        assert!(m.evictions > 0, "15% utilization must interfere");
        assert_eq!(m.suspensions, m.evictions);
    }

    #[test]
    fn restart_wastes_progress() {
        let m = base_config(EvictionPolicy::Restart).run().unwrap();
        assert!(m.restarts > 0);
        assert!(m.wasted > 0.0, "restarts must lose work");
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
        assert!((m.goodput - m.total_demand).abs() < 1e-9);
    }

    #[test]
    fn migrate_pays_setup_not_progress() {
        let m = base_config(EvictionPolicy::Migrate { overhead: 3.0 })
            .run()
            .unwrap();
        assert!(m.migrations > 0);
        // Wasted work is exactly the migration setup actually served
        // (interrupted restores re-count only served time).
        assert!(m.wasted <= m.migrations as f64 * 3.0 + 1e-9);
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
    }

    #[test]
    fn checkpoint_bounds_rollback_by_interval() {
        let m = base_config(EvictionPolicy::Checkpoint {
            interval: 20.0,
            overhead: 0.5,
        })
        .run()
        .unwrap();
        assert!(m.checkpoint_overhead > 0.0);
        assert!(
            m.wasted <= m.evictions as f64 * 20.0 + 1e-9,
            "each eviction loses at most one interval"
        );
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
    }

    #[test]
    fn run_replications_matches_manual_loop() {
        let cfg = base_config(EvictionPolicy::SuspendResume);
        let runs = cfg.run_replications(3).unwrap();
        assert_eq!(runs.len(), 3);
        for (rep, run) in runs.iter().enumerate() {
            let mut manual = cfg.clone();
            manual.replication = rep as u64;
            assert_eq!(*run, manual.run().unwrap());
        }
        assert_eq!(cfg.run_replications(0).unwrap().len(), 1, "reps clamp to 1");
    }

    #[test]
    fn deterministic_replay_and_replication_divergence() {
        let cfg = base_config(EvictionPolicy::SuspendResume);
        let a = cfg.run().unwrap();
        let b = cfg.run().unwrap();
        assert_eq!(a, b, "same seed must replay identically");
        let mut cfg2 = cfg.clone();
        cfg2.replication = 1;
        let c = cfg2.run().unwrap();
        assert_ne!(a.makespan, c.makespan, "replications must differ");
    }

    #[test]
    fn placement_policies_all_complete_with_shared_owner_paths() {
        for kind in PlacementKind::ALL {
            let mut cfg = base_config(EvictionPolicy::SuspendResume);
            cfg.placement = kind;
            cfg.calibration_horizon = 5_000.0;
            let m = cfg.run().unwrap();
            assert_eq!(m.completed_tasks, 14, "{}", kind.name());
            assert!(m.is_consistent(), "{}", kind.name());
        }
    }

    #[test]
    fn sjf_backfill_completes_and_orders_short_jobs_first() {
        let short_job = JobSpec::at_zero(2, 10.0);
        let long_job = JobSpec::at_zero(2, 500.0);
        // One machine: strict serialization makes ordering observable.
        let mut cfg = SchedConfig::homogeneous(1, &owner(0.02), vec![long_job, short_job]);
        cfg.discipline = QueueDiscipline::SjfBackfill;
        let m = cfg.run().unwrap();
        assert!(
            m.jobs[1].completion < m.jobs[0].completion,
            "short job must finish first under SJF backfill"
        );
        let mut cfg_fcfs = cfg.clone();
        cfg_fcfs.discipline = QueueDiscipline::Fcfs;
        let f = cfg_fcfs.run().unwrap();
        assert!(
            f.jobs[0].completion < f.jobs[1].completion,
            "FCFS serves the first-submitted job first"
        );
    }

    #[test]
    fn starved_pool_reports_event_cap() {
        let mut cfg = base_config(EvictionPolicy::SuspendResume);
        // Calibrated estimates (~0.15) sit far above the threshold, so
        // no machine is ever admitted and the jobs starve.
        cfg.admission_threshold = 1e-6;
        cfg.calibration_horizon = 20_000.0;
        cfg.max_events = 10_000;
        match cfg.run() {
            Err(SchedError::EventCapExceeded {
                jobs_unfinished, ..
            }) => assert_eq!(jobs_unfinished, 2),
            other => panic!("expected EventCapExceeded, got {other:?}"),
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        let good = base_config(EvictionPolicy::SuspendResume);
        let mut c = good.clone();
        c.owners.clear();
        assert!(c.run().is_err());
        let mut c = good.clone();
        c.jobs[0].task_demand = -1.0;
        assert!(c.run().is_err());
        let mut c = good.clone();
        c.eviction = EvictionPolicy::Checkpoint {
            interval: -5.0,
            overhead: 1.0,
        };
        assert!(c.run().is_err());
        let mut c = good;
        c.admission_threshold = 0.0;
        assert!(c.run().is_err());
    }

    #[test]
    fn job_records_track_arrivals() {
        let mut cfg = base_config(EvictionPolicy::SuspendResume);
        cfg.jobs = vec![
            JobSpec {
                tasks: 4,
                task_demand: 50.0,
                arrival: 0.0,
            },
            JobSpec {
                tasks: 4,
                task_demand: 50.0,
                arrival: 200.0,
            },
        ];
        let m = cfg.run().unwrap();
        assert_eq!(m.jobs.len(), 2);
        assert!(m.jobs[0].completion >= 50.0);
        assert!(m.jobs[1].completion >= 250.0);
        assert!(m.jobs[1].response_time() >= 50.0);
        assert_eq!(m.makespan, m.jobs[0].completion.max(m.jobs[1].completion));
        assert!(m.mean_available_machines > 0.0);
        assert!(m.mean_available_machines <= 6.0);
    }
}
