//! The scheduler simulation itself: one typed [`nds_des::Calendar`]
//! driving owner workloads, the central queue, placement, and eviction.
//!
//! # Event structure
//!
//! The engine's whole vocabulary is the (private) `SchedEvent` enum:
//!
//! * **Owner arrival/departure** — each machine's owner alternates
//!   think/use cycles drawn from its [`OwnerWorkload`], exactly as in
//!   [`nds_cluster::ContinuousWorkstation`]; an arrival on a machine
//!   hosting a guest task triggers the configured
//!   [`EvictionPolicy`].
//! * **Job arrival** — pushes the job's tasks into the central
//!   [`JobQueue`] (or, under a [`GangPolicy`], the whole job into the
//!   co-allocation [`GangQueue`]).
//! * **Segment end** — guest execution is sliced into segments (setup,
//!   work, checkpoint-write); the end of each either completes the task
//!   or starts the next segment. Gang runs use their own job-level
//!   segment-end event.
//!
//! # The zero-allocation hot path
//!
//! Until PR 5 every event was a `Box<dyn FnOnce>` closure over an
//! `Rc<RefCell<Sim>>`, cancellation went through two `HashSet`s, and
//! each dispatch iteration materialized a fresh candidate `Vec`. The
//! engine now drives plain `SchedEvent` values through
//! [`Calendar<SchedEvent>`](nds_des::Calendar) and hands `&mut Sim`
//! straight to each handler:
//!
//! * scheduling an event pushes a `Copy` entry and reuses a slab slot —
//!   no per-event heap allocation once the calendar reaches its
//!   high-water mark;
//! * cancelling a segment end is a generation bump on its
//!   [`nds_des::EventHandle`] — no hash probes;
//! * [`Pool::candidates`] is a slice view of an incrementally
//!   maintained index — no per-dispatch `Vec`;
//! * the partial-gang grower search and the co-scheduling invariant
//!   check are incremental (a sorted under-placed-gang set, and a
//!   touched-gang check backed by a full-scan `debug_assert!`),
//!   so no event pays an O(#jobs) scan.
//!
//! The steady-state `SegmentEnd` → `dispatch` → `SegmentEnd` cycle
//! therefore performs no heap allocation at all. Event ordering (time,
//! then insertion sequence) is identical to the old closure engine, so
//! the rewrite is bit-for-bit output-preserving — pinned by the
//! workspace's `event_core_oracle` golden test and every invariant
//! suite.
//!
//! # Job-level vs task-level scheduling events
//!
//! The original engine only knew task-level events: each task was
//! placed, ran, and was evicted independently. Gang scheduling
//! ([`crate::gang`]) makes the job the schedulable unit — a gang is
//! admitted only when its floor fits at once, starts atomically,
//! progresses in lockstep (the paper's barrier-synchronized picture),
//! and reacts to any member's owner return as a whole (suspend-all or
//! migrate-as-a-unit). With [`GangPolicy::Off`] none of the gang paths
//! are entered and the engine behaves exactly as before; with gangs of
//! one task it reproduces the independent-task scheduler bit-for-bit
//! (both equivalences are enforced by `tests/gang_invariants.rs`).
//!
//! # Rate-aware execution (partial gangs)
//!
//! [`GangPolicy::Partial`] breaks the engine's original invariant that
//! a running task always progresses at rate one: a partial gang with
//! `r` of its `width` members on owner-free machines advances each
//! task at rate `r / width`, so segment ends are scheduled at
//! `work / rate` wall time and every membership event (a member's
//! owner reclaiming or releasing its machine, a freed machine joining
//! an under-placed gang) closes the in-flight segment at its old rate
//! and reopens it at the new one. Full gangs have rate exactly `1.0`,
//! which is why `Partial { min_running: width }` reproduces
//! `SuspendAll` bit-for-bit — same floats, same event times. The
//! conservation law `∫ rate·dt == demand` is pinned by
//! `tests/rate_invariants.rs` via [`GangStats::parallelism_integral`].
//!
//! # Reproducibility
//!
//! Machine `i` consumes the stream labeled `("ws-continuous",
//! i << 32 | replication)` — deliberately the same derivation
//! [`nds_cluster::JobRunner`] uses — so the degenerate configuration
//! (fixed full-size pool, suspend-resume eviction, one job with one
//! task per machine) reproduces `JobRunner`'s sample paths exactly.
//! Placement and calibration draw from separate streams, so changing
//! the placement policy never perturbs the owners' sample paths
//! (common-random-numbers across policies).

use crate::error::SchedError;
use crate::eviction::{on_eviction, EvictionPolicy};
use crate::failure::FailureModel;
use crate::feed::JobFeed;
use crate::gang::{GangPolicy, GangQueue, GangStats, PendingGang};
use crate::metrics::{JobRecord, SchedMetrics};
use crate::policy::{
    CandidateMachine, LeastLoadedPlacement, PlacementKind, PlacementPolicy, RandomPlacement,
    RoundRobinPlacement,
};
use crate::pool::Pool;
use crate::queue::{JobQueue, JobSpec, PendingTask, QueueDiscipline};
use crate::trace::{
    EventClass, EvictionAction, ObsKind, SchedRecord, SchedTracer, SegmentKind, StateSample,
};
use nds_cluster::owner::OwnerWorkload;
use nds_cluster::probe::measure_utilization;
use nds_des::{Calendar, EventHandle, NoTrace, SimTime};
use nds_stats::rng::{StreamFactory, Xoshiro256StarStar};
use std::collections::{BTreeSet, VecDeque};

/// Work-remaining below which a task counts as complete (absorbs float
/// round-off from slicing).
const WORK_EPS: f64 = 1e-12;

/// Full description of one scheduler experiment.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// One owner workload per machine in the pool.
    pub owners: Vec<OwnerWorkload>,
    /// The jobs submitted to the central queue.
    pub jobs: Vec<JobSpec>,
    /// Task placement policy.
    pub placement: PlacementKind,
    /// Owner-return policy.
    pub eviction: EvictionPolicy,
    /// Gang scheduling / co-allocation policy. When not `Off`, jobs are
    /// admitted all-or-nothing, run in lockstep, and the gang policy
    /// supersedes `eviction` (the whole gang suspends or migrates as a
    /// unit on any member's owner return).
    pub gang: GangPolicy,
    /// Central queue ordering.
    pub discipline: QueueDiscipline,
    /// Maximum estimated owner utilization at which a machine is still
    /// offered to the scheduler (1.0 admits every idle machine).
    pub admission_threshold: f64,
    /// Averaging window of the per-machine utilization estimators.
    pub estimator_tau: f64,
    /// Pre-run probe horizon used to seed the estimators (0 disables —
    /// the scheduler then starts with no prior, like a cold `uptime`
    /// table).
    pub calibration_horizon: f64,
    /// Master seed for every stream in the run.
    pub seed: u64,
    /// Replication index (varies the sample path under one seed).
    pub replication: u64,
    /// Safety cap on executed events.
    pub max_events: u64,
    /// Machine crash/repair process ([`crate::failure`]). `None` (the
    /// default) injects no failures and leaves every RNG stream and
    /// event sequence bit-identical to the failure-free engine.
    pub failures: Option<FailureModel>,
}

impl SchedConfig {
    /// A homogeneous pool of `w` machines sharing one owner workload,
    /// with every other knob at its default.
    pub fn homogeneous(w: u32, owner: &OwnerWorkload, jobs: Vec<JobSpec>) -> Self {
        Self {
            owners: vec![owner.clone(); w as usize], // ndslint::allow(no-alloc-in-hot-path, reason = "config construction, runs once per experiment")
            jobs,
            placement: PlacementKind::LeastLoaded,
            eviction: EvictionPolicy::SuspendResume,
            gang: GangPolicy::Off,
            discipline: QueueDiscipline::Fcfs,
            admission_threshold: 1.0,
            estimator_tau: 1_000.0,
            calibration_horizon: 0.0,
            seed: 0x5EED,
            replication: 0,
            max_events: 20_000_000,
            failures: None,
        }
    }

    /// Validate every field.
    pub fn validate(&self) -> Result<(), SchedError> {
        self.validate_shared()?;
        let invalid = |field, reason: String| Err(SchedError::InvalidConfig { field, reason });
        if self.jobs.is_empty() {
            return invalid("jobs", "need at least one job".into());
        }
        for (i, j) in self.jobs.iter().enumerate() {
            validate_job_spec(i, j)?;
        }
        if self.gang.is_on() {
            for (i, j) in self.jobs.iter().enumerate() {
                // All-or-nothing gangs need their full width free at
                // once; partial gangs only their min_running floor (a
                // wider-than-pool job then simply never leaves
                // degraded mode).
                let need = self.gang.floor_for(j.tasks);
                if need as usize > self.owners.len() {
                    return invalid(
                        "jobs",
                        format!(
                            "job {i} needs {need} machines at once (gang floor) but \
                             the pool has {}: the gang can never be co-allocated",
                            self.owners.len()
                        ),
                    );
                }
            }
        }
        Ok(())
    }

    /// Validate for a streamed run ([`SchedConfig::run_streamed`]),
    /// where jobs arrive from a [`JobFeed`] instead of `self.jobs`
    /// (which is ignored on that path). Gang scheduling needs the full
    /// job table up front for co-allocation state, so streaming
    /// requires [`GangPolicy::Off`]; per-job fields are validated
    /// chunk by chunk as the feed delivers them.
    pub fn validate_streamed(&self, chunk: usize) -> Result<(), SchedError> {
        self.validate_shared()?;
        let invalid = |field, reason: String| Err(SchedError::InvalidConfig { field, reason });
        if chunk == 0 {
            return invalid(
                "chunk",
                "streamed runs need a chunk size of at least 1".into(),
            );
        }
        if self.gang.is_on() {
            return invalid(
                "gang",
                "gang scheduling needs the full job table up front; \
                 streamed runs require GangPolicy::Off"
                    .into(),
            );
        }
        Ok(())
    }

    /// The field checks shared by materialized and streamed runs —
    /// everything except the job list.
    fn validate_shared(&self) -> Result<(), SchedError> {
        let invalid = |field, reason: String| Err(SchedError::InvalidConfig { field, reason });
        if self.owners.is_empty() {
            return invalid("owners", "pool needs at least one machine".into());
        }
        if !(self.admission_threshold.is_finite() && self.admission_threshold > 0.0) {
            return invalid(
                "admission_threshold",
                format!("{} not finite > 0", self.admission_threshold),
            );
        }
        if !(self.estimator_tau.is_finite() && self.estimator_tau > 0.0) {
            return invalid(
                "estimator_tau",
                format!("{} not finite > 0", self.estimator_tau),
            );
        }
        if !(self.calibration_horizon.is_finite() && self.calibration_horizon >= 0.0) {
            return invalid(
                "calibration_horizon",
                format!("{} not finite >= 0", self.calibration_horizon),
            );
        }
        if self.max_events == 0 {
            return invalid("max_events", "must be positive".into());
        }
        if let Err((field, reason)) = self.eviction.validate() {
            return invalid(field, reason);
        }
        if let Err((field, reason)) = self.gang.validate() {
            return invalid(field, reason);
        }
        if let Some(model) = &self.failures {
            if let Err((field, reason)) = model.validate() {
                return invalid(field, reason);
            }
        }
        Ok(())
    }

    /// Run `reps` independent replications (replication indices
    /// `0..reps` under this config's seed) and collect their metrics.
    /// This is the one experiment harness the CLI and bench binaries
    /// share, so "mean over replications" always means the same thing.
    ///
    /// The config is validated once and **never cloned**: each
    /// replication borrows the same owner and job tables and varies
    /// only the replication index it feeds the seed streams.
    pub fn run_replications(&self, reps: u64) -> Result<Vec<SchedMetrics>, SchedError> {
        self.validate()?;
        (0..reps.max(1))
            .map(|rep| {
                self.run_validated(rep, &mut NoTrace)
                    .map(|(metrics, _)| metrics)
            })
            .collect()
    }

    /// Run the experiment to completion of every job.
    pub fn run(&self) -> Result<SchedMetrics, SchedError> {
        self.run_counted().map(|(metrics, _)| metrics)
    }

    /// Like [`SchedConfig::run`], but also report the number of
    /// calendar events the engine executed — the denominator of the
    /// `perf_core` events-per-second benchmark.
    pub fn run_counted(&self) -> Result<(SchedMetrics, u64), SchedError> {
        self.validate()?;
        self.run_validated(self.replication, &mut NoTrace)
    }

    /// Run one replication observed by a [`SchedTracer`] — the flight
    /// recorder entry point. With [`NoTrace`] this is exactly
    /// [`SchedConfig::run_counted`] (the hooks compile away); with
    /// [`crate::trace::FlightRecorder`] every handled event is
    /// recorded, the engine's state is sampled after each event, and
    /// host time is attributed per event class. The caller finishes
    /// and exports the tracer afterwards.
    pub fn run_traced<T: SchedTracer>(
        &self,
        tracer: &mut T,
    ) -> Result<(SchedMetrics, u64), SchedError> {
        self.validate()?;
        self.run_validated(self.replication, tracer)
    }

    /// One replication on an already-validated config.
    fn run_validated<T: SchedTracer>(
        &self,
        replication: u64,
        tracer: &mut T,
    ) -> Result<(SchedMetrics, u64), SchedError> {
        let factory = StreamFactory::new(self.seed);
        let w = self.owners.len();

        let initial_estimates: Vec<f64> = if self.calibration_horizon > 0.0 {
            self.owners
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    let mut rng =
                        factory.labeled_stream("sched-probe", (i as u64) << 32 | replication);
                    measure_utilization(o, self.calibration_horizon, &mut rng).utilization
                })
                .collect()
        } else {
            Vec::new() // ndslint::allow(no-alloc-in-hot-path, reason = "run setup, before the event loop")
        };

        let machines: Vec<MachineSim> = self
            .owners
            .iter()
            .enumerate()
            .map(|(i, owner)| MachineSim {
                owner,
                rng: Xoshiro256StarStar::new(
                    factory
                        .labeled_stream("ws-continuous", (i as u64) << 32 | replication)
                        .next(),
                ),
                guest: None,
            })
            .collect();

        let jobs: Vec<JobState> = self.jobs.iter().map(JobState::of_spec).collect();
        let jobs_remaining = jobs.len();
        let jobs = JobTable::from_states(jobs);
        let failure_rngs = failure_streams(&factory, self.failures.is_some(), w, replication);

        let gangs: Vec<GangState> = if self.gang.is_on() {
            self.jobs
                .iter()
                .map(|spec| GangState {
                    members: Vec::new(), // ndslint::allow(no-alloc-in-hot-path, reason = "run setup, before the event loop")
                    member_running: Vec::new(), // ndslint::allow(no-alloc-in-hot-path, reason = "run setup, before the event loop")
                    member_busy: Vec::new(), // ndslint::allow(no-alloc-in-hot-path, reason = "run setup, before the event loop")
                    demand: spec.task_demand,
                    remaining: spec.task_demand,
                    setup_left: 0.0,
                    width: spec.tasks,
                    floor: self.gang.floor_for(spec.tasks),
                    phase: GangPhase::Queued,
                })
                .collect()
        } else {
            Vec::new() // ndslint::allow(no-alloc-in-hot-path, reason = "run setup, before the event loop")
        };

        let mut sim = Sim {
            machines,
            pool: Pool::new(
                w,
                self.admission_threshold,
                self.estimator_tau,
                &initial_estimates,
            ),
            queue: JobQueue::new(),
            specs: SpecSource::All(&self.jobs),
            jobs,
            jobs_remaining,
            placement: PlacementState::new(self.placement),
            placement_rng: factory.labeled_stream("sched-placement", replication),
            eviction: self.eviction,
            gang_policy: self.gang,
            gangs,
            gang_queue: GangQueue::new(),
            machine_gang: vec![None; w],
            growers: BTreeSet::new(),
            gacc: GangStats::default(),
            frag_t: 0.0,
            frag_free: 0,
            frag_waiting: false,
            discipline: self.discipline,
            acc: Acc::default(),
            failures: self.failures,
            failure_rngs,
            crashes_by_machine: vec![0; if self.failures.is_some() { w } else { 0 }],
            makespan: 0.0,
            done: false,
        };

        let mut cal: Calendar<SchedEvent> = Calendar::with_capacity(w + 16);
        for m in 0..w {
            let mach = &mut sim.machines[m];
            let think = mach.owner.sample_think(&mut mach.rng);
            cal.post(
                SimTime::new(think),
                SchedEvent::OwnerArrival { m: m as u32 },
            )
            .expect("invariant: think time is non-negative");
        }
        seed_failures(&mut sim, &mut cal);
        // Job arrivals are known up front. When they come time-sorted
        // (streams, Poisson workloads — the common case) they take the
        // calendar's pre-sorted backlog, which keeps the heap at the
        // live-event horizon instead of the whole experiment; sequence
        // numbers are allocated identically on both paths, so the
        // event order is the same either way.
        let arrivals_sorted = self
            .jobs
            .windows(2)
            .all(|pair| pair[0].arrival <= pair[1].arrival);
        if arrivals_sorted {
            cal.schedule_sorted(self.jobs.iter().enumerate().map(|(j, spec)| {
                (
                    SimTime::new(spec.arrival),
                    SchedEvent::JobArrival { j: j as u32 },
                )
            }))
            .expect("invariant: arrivals are sorted and non-negative");
        } else {
            for (j, spec) in self.jobs.iter().enumerate() {
                cal.post(
                    SimTime::new(spec.arrival),
                    SchedEvent::JobArrival { j: j as u32 },
                )
                .expect("invariant: arrival is non-negative");
            }
        }

        while cal.executed() < self.max_events {
            let Some((t, event)) = cal.pop() else { break };
            let now = t.as_f64();
            // With tracing off (`NoTrace`), the guard below is
            // `if false` after monomorphization: no clock reads, no
            // sampling, no calls — the loop body is the pre-tracing
            // code exactly.
            #[allow(clippy::disallowed_methods)] // profiler-only wall-clock read
            let started = if T::ENABLED && tracer.profile_enabled() {
                Some(std::time::Instant::now()) // ndslint::allow(no-wall-clock, reason = "feeds the PR 6 profiler; never observed by sim logic")
            } else {
                None
            };
            match event {
                SchedEvent::OwnerArrival { m } => {
                    owner_arrival(&mut sim, &mut cal, now, m as usize, tracer)
                }
                SchedEvent::OwnerDeparture { m } => {
                    owner_departure(&mut sim, &mut cal, now, m as usize, tracer)
                }
                SchedEvent::JobArrival { j } => {
                    job_arrival(&mut sim, &mut cal, now, j as usize, tracer)
                }
                SchedEvent::SegmentEnd { m } => {
                    segment_end(&mut sim, &mut cal, now, m as usize, tracer)
                }
                SchedEvent::GangSegmentEnd { j } => {
                    gang_segment_end(&mut sim, &mut cal, now, j as usize, tracer)
                }
                SchedEvent::MachineFailure { m } => {
                    machine_failure(&mut sim, &mut cal, now, m as usize, tracer)
                }
                SchedEvent::MachineRepair { m } => {
                    machine_repair(&mut sim, &mut cal, now, m as usize, tracer)
                }
            }
            if T::ENABLED {
                let nanos = started.map_or(0, |s| {
                    u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
                });
                // Leftover owner events drain after the last job
                // completes; their samples carry the closing state, so
                // pin them to the makespan and keep the sample clock
                // inside the run.
                let sample_t = if sim.done { sim.makespan } else { now };
                tracer.handled(sample_t, event_class(event), nanos);
                // Grid-throttled tracers may skip interior samples, but
                // the closing state must always land: the trace's final
                // sample is the run's accounting of record.
                if sim.done || tracer.wants_state(sample_t) {
                    tracer.state(sample_t, &gather_sample(&sim, &cal));
                }
            }
        }
        let events = cal.executed();

        if !sim.done {
            return Err(SchedError::EventCapExceeded {
                max_events: self.max_events,
                jobs_unfinished: sim.jobs_remaining,
            });
        }
        let makespan = sim.makespan;
        let mean_available_machines = sim.pool.mean_available(makespan);
        let downtime = sim.pool.downtime(makespan);
        let acc = sim.acc;
        let gacc = sim.gacc;
        let metrics = SchedMetrics {
            makespan,
            delivered: acc.delivered,
            goodput: acc.goodput,
            wasted: acc.wasted,
            checkpoint_overhead: acc.ckpt,
            evictions: acc.evictions,
            suspensions: acc.suspensions,
            restarts: acc.restarts,
            migrations: acc.migrations,
            completed_tasks: acc.completed_tasks,
            total_demand: self.jobs.iter().map(JobSpec::total_demand).sum(),
            placements: acc.placements,
            mean_queue_wait: if acc.placements == 0 {
                0.0
            } else {
                acc.total_wait / acc.placements as f64
            },
            mean_available_machines,
            gang: gacc,
            jobs: sim.jobs.records(),
            crashes: acc.crashes,
            crash_lost: acc.crash_lost,
            downtime,
            crashes_by_machine: std::mem::take(&mut sim.crashes_by_machine),
        };
        Ok((metrics, events))
    }

    /// Run one replication with jobs pulled from a [`JobFeed`] in
    /// chunks of at most `chunk`, instead of from `self.jobs` (which
    /// this path ignores). Completed jobs leave the engine through
    /// `on_job` — called with each job's absolute submission index and
    /// final [`JobRecord`], in submission order — so the returned
    /// [`SchedMetrics`] carries an empty `jobs` list and peak memory
    /// is bounded by the chunk size plus the live job window, not the
    /// trace length.
    ///
    /// Arrivals must be globally non-decreasing across the whole feed;
    /// a violation surfaces as a typed [`SchedError::InvalidConfig`]
    /// naming the offending job index. Gang scheduling is rejected up
    /// front (see [`SchedConfig::validate_streamed`]). Over the same
    /// job list, this replays [`SchedConfig::run_counted`]'s event
    /// sequence exactly — same RNG draws, same metrics — which the
    /// workspace's streaming byte-identity tests pin.
    pub fn run_streamed(
        &self,
        feed: &mut dyn JobFeed,
        chunk: usize,
        on_job: &mut dyn FnMut(usize, JobRecord),
    ) -> Result<(SchedMetrics, u64), SchedError> {
        self.validate_streamed(chunk)?;
        let replication = self.replication;
        let factory = StreamFactory::new(self.seed);
        let w = self.owners.len();

        let initial_estimates: Vec<f64> = if self.calibration_horizon > 0.0 {
            self.owners
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    let mut rng =
                        factory.labeled_stream("sched-probe", (i as u64) << 32 | replication);
                    measure_utilization(o, self.calibration_horizon, &mut rng).utilization
                })
                .collect()
        } else {
            Vec::new() // ndslint::allow(no-alloc-in-hot-path, reason = "run setup, before the event loop")
        };

        let machines: Vec<MachineSim> = self
            .owners
            .iter()
            .enumerate()
            .map(|(i, owner)| MachineSim {
                owner,
                rng: Xoshiro256StarStar::new(
                    factory
                        .labeled_stream("ws-continuous", (i as u64) << 32 | replication)
                        .next(),
                ),
                guest: None,
            })
            .collect();

        let mut sim = Sim {
            machines,
            pool: Pool::new(
                w,
                self.admission_threshold,
                self.estimator_tau,
                &initial_estimates,
            ),
            queue: JobQueue::new(),
            specs: SpecSource::Window {
                base: 0,
                specs: VecDeque::with_capacity(chunk),
            },
            jobs: JobTable {
                base: 0,
                states: VecDeque::with_capacity(chunk),
            },
            jobs_remaining: 0,
            placement: PlacementState::new(self.placement),
            placement_rng: factory.labeled_stream("sched-placement", replication),
            eviction: self.eviction,
            gang_policy: self.gang,
            gangs: Vec::new(), // ndslint::allow(no-alloc-in-hot-path, reason = "run setup, before the event loop")
            gang_queue: GangQueue::new(),
            machine_gang: vec![None; w],
            growers: BTreeSet::new(),
            gacc: GangStats::default(),
            frag_t: 0.0,
            frag_free: 0,
            frag_waiting: false,
            discipline: self.discipline,
            acc: Acc::default(),
            failures: self.failures,
            failure_rngs: failure_streams(&factory, self.failures.is_some(), w, replication),
            crashes_by_machine: vec![0; if self.failures.is_some() { w } else { 0 }],
            makespan: 0.0,
            done: false,
        };

        let mut cal: Calendar<SchedEvent> = Calendar::with_capacity(w + 16);
        for m in 0..w {
            let mach = &mut sim.machines[m];
            let think = mach.owner.sample_think(&mut mach.rng);
            cal.post(
                SimTime::new(think),
                SchedEvent::OwnerArrival { m: m as u32 },
            )
            .expect("invariant: think time is non-negative");
        }
        seed_failures(&mut sim, &mut cal);

        let mut feeder = ChunkFeeder::new(chunk);
        feeder.pull(feed, &mut sim, &mut cal)?;
        if feeder.scheduled == 0 {
            return Err(SchedError::InvalidConfig {
                field: "feed",
                reason: "need at least one job".into(),
            });
        }

        let tracer = &mut NoTrace;
        while cal.executed() < self.max_events {
            let Some((t, event)) = cal.pop() else { break };
            let now = t.as_f64();
            match event {
                SchedEvent::OwnerArrival { m } => {
                    owner_arrival(&mut sim, &mut cal, now, m as usize, tracer);
                }
                SchedEvent::OwnerDeparture { m } => {
                    owner_departure(&mut sim, &mut cal, now, m as usize, tracer);
                }
                SchedEvent::JobArrival { j } => {
                    job_arrival(&mut sim, &mut cal, now, j as usize, tracer);
                    // The window's last scheduled arrival just fired:
                    // pull the next chunk *now*, while the calendar's
                    // backlog floor is this arrival's timestamp, so the
                    // feed's later arrivals always schedule cleanly.
                    // `jobs_remaining >= 1` here (a job cannot complete
                    // inside its own arrival event — completions happen
                    // in segment-end events), so the run cannot drain
                    // to `done` with feed jobs still unread.
                    if j as usize + 1 == feeder.scheduled && !feeder.done {
                        feeder.pull(feed, &mut sim, &mut cal)?;
                    }
                }
                SchedEvent::SegmentEnd { m } => {
                    segment_end(&mut sim, &mut cal, now, m as usize, tracer);
                    sim.jobs.retire_completed(on_job);
                }
                SchedEvent::GangSegmentEnd { j } => {
                    gang_segment_end(&mut sim, &mut cal, now, j as usize, tracer);
                }
                SchedEvent::MachineFailure { m } => {
                    machine_failure(&mut sim, &mut cal, now, m as usize, tracer);
                }
                SchedEvent::MachineRepair { m } => {
                    machine_repair(&mut sim, &mut cal, now, m as usize, tracer);
                }
            }
        }
        let events = cal.executed();

        if !sim.done {
            return Err(SchedError::EventCapExceeded {
                max_events: self.max_events,
                jobs_unfinished: sim.jobs_remaining,
            });
        }
        sim.jobs.retire_completed(on_job);
        let makespan = sim.makespan;
        let mean_available_machines = sim.pool.mean_available(makespan);
        let downtime = sim.pool.downtime(makespan);
        let acc = sim.acc;
        let gacc = sim.gacc;
        let metrics = SchedMetrics {
            makespan,
            delivered: acc.delivered,
            goodput: acc.goodput,
            wasted: acc.wasted,
            checkpoint_overhead: acc.ckpt,
            evictions: acc.evictions,
            suspensions: acc.suspensions,
            restarts: acc.restarts,
            migrations: acc.migrations,
            completed_tasks: acc.completed_tasks,
            total_demand: feeder.total_demand,
            placements: acc.placements,
            mean_queue_wait: if acc.placements == 0 {
                0.0
            } else {
                acc.total_wait / acc.placements as f64
            },
            mean_available_machines,
            gang: gacc,
            jobs: Vec::new(), // ndslint::allow(no-alloc-in-hot-path, reason = "streamed runs deliver records through the on_job sink, not the metrics struct")
            crashes: acc.crashes,
            crash_lost: acc.crash_lost,
            downtime,
            crashes_by_machine: std::mem::take(&mut sim.crashes_by_machine),
        };
        Ok((metrics, events))
    }
}

/// Per-spec field checks shared by [`SchedConfig::validate`] and the
/// streamed path's chunk intake; `i` is the job's absolute submission
/// index, so streamed errors name the offending trace row.
fn validate_job_spec(i: usize, j: &JobSpec) -> Result<(), SchedError> {
    let invalid = |reason: String| {
        Err(SchedError::InvalidConfig {
            field: "jobs",
            reason,
        })
    };
    if j.tasks == 0 {
        return invalid(format!("job {i} has zero tasks"));
    }
    if !(j.task_demand.is_finite() && j.task_demand > 0.0) {
        return invalid(format!("job {i} task_demand {}", j.task_demand));
    }
    if !(j.arrival.is_finite() && j.arrival >= 0.0) {
        return invalid(format!("job {i} arrival {}", j.arrival));
    }
    Ok(())
}

/// The streamed run's chunk intake: pulls bounded batches off the
/// [`JobFeed`], validates each spec, admits it to the live window, and
/// pushes its arrival onto the calendar's pre-sorted backlog.
struct ChunkFeeder {
    chunk: usize,
    buf: Vec<JobSpec>,
    /// Total arrivals scheduled so far == the next absolute job index.
    scheduled: usize,
    /// The feed returned an empty chunk; never poll it again.
    done: bool,
    total_demand: f64,
}

impl ChunkFeeder {
    fn new(chunk: usize) -> Self {
        Self {
            chunk,
            buf: Vec::with_capacity(chunk),
            scheduled: 0,
            done: false,
            total_demand: 0.0,
        }
    }

    fn pull(
        &mut self,
        feed: &mut dyn JobFeed,
        sim: &mut Sim<'_>,
        cal: &mut Calendar<SchedEvent>,
    ) -> Result<(), SchedError> {
        self.buf.clear();
        let n = feed.next_chunk(self.chunk, &mut self.buf)?;
        if n == 0 {
            self.done = true;
            return Ok(());
        }
        let SpecSource::Window { specs: window, .. } = &mut sim.specs else {
            unreachable!("streamed runs always use a window spec source");
        };
        for (k, spec) in self.buf.iter().enumerate() {
            validate_job_spec(self.scheduled + k, spec)?;
            window.push_back(*spec);
            sim.jobs.push_back(JobState::of_spec(spec));
            self.total_demand += spec.total_demand();
        }
        sim.jobs_remaining += n;
        let base = self.scheduled;
        cal.schedule_sorted(self.buf.iter().enumerate().map(|(k, spec)| {
            (
                SimTime::new(spec.arrival),
                SchedEvent::JobArrival {
                    j: (base + k) as u32,
                },
            )
        }))
        .map_err(|e| SchedError::InvalidConfig {
            field: "feed",
            reason: format!(
                "arrivals must be non-decreasing across the whole feed \
                 (jobs {}..{}): {e}",
                base,
                base + n
            ),
        })?;
        self.scheduled += n;
        Ok(())
    }
}

/// The engine's entire event vocabulary: seven plain variants, each a
/// machine or job index. `Copy`, 8 bytes, no drop glue — what the
/// typed calendar stores instead of a boxed closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SchedEvent {
    /// Machine `m`'s owner returns to their workstation.
    OwnerArrival { m: u32 },
    /// Machine `m`'s owner leaves it idle again.
    OwnerDeparture { m: u32 },
    /// Job `j` reaches the central queue.
    JobArrival { j: u32 },
    /// The guest segment on machine `m` runs to completion.
    SegmentEnd { m: u32 },
    /// Gang `j`'s in-flight segment runs to completion.
    GangSegmentEnd { j: u32 },
    /// Machine `m` crashes (fault injection; never scheduled without a
    /// [`FailureModel`]).
    MachineFailure { m: u32 },
    /// Machine `m` comes back from repair.
    MachineRepair { m: u32 },
}

/// The profiler-facing class of a `SchedEvent`.
fn event_class(event: SchedEvent) -> EventClass {
    match event {
        SchedEvent::OwnerArrival { .. } => EventClass::OwnerArrival,
        SchedEvent::OwnerDeparture { .. } => EventClass::OwnerDeparture,
        SchedEvent::JobArrival { .. } => EventClass::JobArrival,
        SchedEvent::SegmentEnd { .. } => EventClass::SegmentEnd,
        SchedEvent::GangSegmentEnd { .. } => EventClass::GangSegmentEnd,
        SchedEvent::MachineFailure { .. } => EventClass::MachineFailure,
        SchedEvent::MachineRepair { .. } => EventClass::MachineRepair,
    }
}

/// Gather the engine's aggregate state for the tracer. Only called
/// with tracing enabled — the gang scan is O(#gangs) per event, a cost
/// the untraced path never pays.
fn gather_sample(sim: &Sim, cal: &Calendar<SchedEvent>) -> StateSample {
    let mut running_gangs = 0u32;
    let mut degraded_gangs = 0u32;
    for gang in &sim.gangs {
        if let GangPhase::Running { .. } = gang.phase {
            running_gangs += 1;
            if running_members(gang) < gang.width {
                degraded_gangs += 1;
            }
        }
    }
    StateSample {
        queue_depth: (sim.queue.len() + sim.gang_queue.len()) as u32,
        free_machines: sim.pool.candidates().len() as u32,
        running_gangs,
        degraded_gangs,
        pending_events: cal.pending() as u32,
        delivered: sim.acc.delivered,
        goodput: sim.acc.goodput,
        wasted: sim.acc.wasted,
    }
}

/// The tracer-facing kind of an internal [`Segment`].
fn segment_kind(segment: Segment) -> SegmentKind {
    match segment {
        Segment::Setup { .. } => SegmentKind::Setup,
        Segment::Work { .. } => SegmentKind::Work,
        Segment::CkptWrite { .. } => SegmentKind::CkptWrite,
    }
}

/// One slice of guest execution on a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Segment {
    /// Migration restore; counted as wasted work.
    Setup { len: f64 },
    /// Real progress.
    Work { len: f64 },
    /// Checkpoint write; counted as checkpoint overhead.
    CkptWrite { len: f64 },
}

impl Segment {
    fn len(&self) -> f64 {
        match *self {
            Segment::Setup { len } | Segment::Work { len } | Segment::CkptWrite { len } => len,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RunState {
    segment: Segment,
    slice_start: f64,
    event: EventHandle,
}

#[derive(Debug, Clone)]
struct GuestTask {
    job: usize,
    task: u32,
    demand: f64,
    /// Work remaining at the current segment's start.
    remaining: f64,
    /// Progress not yet covered by a checkpoint, at segment start.
    since_ckpt: f64,
    /// Setup still owed before computing.
    setup_left: f64,
    /// `None` while suspended beneath the owner.
    run: Option<RunState>,
}

#[derive(Debug)]
struct MachineSim<'a> {
    owner: &'a OwnerWorkload,
    rng: Xoshiro256StarStar,
    guest: Option<GuestTask>,
}

#[derive(Debug, Clone, Copy)]
struct JobState {
    tasks_left: u32,
    record: JobRecord,
}

impl JobState {
    fn of_spec(spec: &JobSpec) -> Self {
        Self {
            tasks_left: spec.tasks,
            record: JobRecord {
                arrival: spec.arrival,
                completion: f64::NAN,
                demand: spec.total_demand(),
            },
        }
    }
}

/// Where `job_arrival` reads job specs from: the config's materialized
/// job table (classic path), or a sliding window fed chunk by chunk by
/// a [`JobFeed`] (streamed path). In the window case arrivals fire in
/// submission order — sorted times, sequentially allocated calendar
/// sequence numbers — so the arriving job is always the window's
/// front, and its spec retires the moment it is consumed.
#[derive(Debug)]
enum SpecSource<'a> {
    All(&'a [JobSpec]),
    Window {
        base: usize,
        specs: VecDeque<JobSpec>,
    },
}

impl SpecSource<'_> {
    #[inline]
    fn take(&mut self, j: usize) -> JobSpec {
        match self {
            Self::All(specs) => specs[j],
            Self::Window { base, specs } => {
                debug_assert_eq!(*base, j, "streamed arrivals fire in submission order");
                *base += 1;
                specs
                    .pop_front()
                    .expect("invariant: a scheduled arrival's spec is resident in the window")
            }
        }
    }
}

/// Per-job live state addressed by absolute job index. The classic
/// path holds every job for the whole run (`base == 0`, nothing ever
/// retires — bit-identical to the old `Vec<JobState>`); the streamed
/// path retires the completed prefix in submission order, emitting each
/// [`JobRecord`] to the caller's sink, so residency tracks the live job
/// window instead of the experiment length.
#[derive(Debug)]
struct JobTable {
    base: usize,
    states: VecDeque<JobState>,
}

impl JobTable {
    fn from_states(states: Vec<JobState>) -> Self {
        Self {
            base: 0,
            states: VecDeque::from(states),
        }
    }

    #[inline]
    fn get_mut(&mut self, j: usize) -> &mut JobState {
        &mut self.states[j - self.base]
    }

    #[inline]
    fn push_back(&mut self, state: JobState) {
        self.states.push_back(state);
    }

    /// Pop completed jobs off the front (submission order), handing
    /// each absolute index + record to `on_job`. Stops at the first
    /// still-running job — records are therefore emitted in submission
    /// order, and a straggler only delays emission, never drops it.
    fn retire_completed(&mut self, on_job: &mut dyn FnMut(usize, JobRecord)) {
        while let Some(front) = self.states.front() {
            if front.tasks_left > 0 {
                return;
            }
            let state = self
                .states
                .pop_front()
                .expect("invariant: front() was Some in the loop guard");
            on_job(self.base, state.record);
            self.base += 1;
        }
    }

    fn records(&self) -> Vec<JobRecord> {
        self.states.iter().map(|s| s.record).collect()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Acc {
    delivered: f64,
    goodput: f64,
    wasted: f64,
    ckpt: f64,
    evictions: u64,
    suspensions: u64,
    restarts: u64,
    migrations: u64,
    completed_tasks: u64,
    placements: u64,
    total_wait: f64,
    crashes: u64,
    /// Crash-destroyed progress — a subset of `wasted`.
    crash_lost: f64,
}

/// One gang's live state (only populated when a [`GangPolicy`] is on).
#[derive(Debug, Clone)]
struct GangState {
    /// Machines currently hosting the gang (empty while queued; may sit
    /// below `width` while a partial gang is under-placed).
    members: Vec<usize>,
    /// Per-member run flag. Under the all-or-nothing policies it flips
    /// only through [`suspend_gang_members`]/[`resume_gang_members`] so
    /// members can never disagree; under a partial policy members may
    /// legitimately differ (degraded mode) and the floor invariant is
    /// what [`verify_gang_invariants`] re-checks at every gang event.
    member_running: Vec<bool>,
    /// Per-member owner-presence flag: `true` while the member's
    /// machine is reclaimed by its owner (the member sits suspended in
    /// place beneath them).
    member_busy: Vec<bool>,
    /// Original per-task demand.
    demand: f64,
    /// Per-task work still owed.
    remaining: f64,
    /// Per-task setup owed before computing (migrate-all restore).
    setup_left: f64,
    /// Full gang width — the job's task count.
    width: u32,
    /// Resolved co-scheduling floor ([`GangPolicy::floor_for`]): the
    /// gang runs only while at least this many members hold owner-free
    /// machines.
    floor: u32,
    phase: GangPhase,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum GangPhase {
    /// Waiting in the co-allocation queue (or not yet arrived).
    Queued,
    /// Members on owner-free machines executing the current segment;
    /// a full gang computes at rate one, a degraded partial gang at
    /// `running / width`.
    Running {
        is_setup: bool,
        /// Scheduled per-task work of the segment in CPU units (used
        /// exactly at segment end, like the independent engine's
        /// `Segment::len`, so float round-off from clock arithmetic
        /// never leaks into the accounting).
        work: f64,
        /// Wall-clock segment length: `work / rate`.
        wall: f64,
        /// Per-task progress rate `running / width` (exactly 1.0 for a
        /// full gang, which keeps the all-or-nothing float paths
        /// bit-identical to the pre-rate-aware engine).
        rate: f64,
        slice_start: f64,
        event: EventHandle,
    },
    /// Frozen in place below the floor (under the all-or-nothing
    /// policies: any member reclaimed); `last_t` is when the
    /// barrier-stall integral was last accrued. Which members sit
    /// beneath their owners lives in [`GangState::member_busy`].
    Suspended { last_t: f64 },
    /// Every task completed.
    Done,
}

/// Devirtualized placement state: the built-in policy objects held as
/// an enum of concrete types, so the dispatch loop pays a direct
/// (inlinable) call instead of a `Box<dyn PlacementPolicy>` virtual
/// call per placement. Each arm delegates to the one
/// [`crate::policy`] implementation, so there is a single copy of
/// every policy's choice logic.
#[derive(Debug)]
enum PlacementState {
    Random(RandomPlacement),
    RoundRobin(RoundRobinPlacement),
    LeastLoaded(LeastLoadedPlacement),
}

impl PlacementState {
    fn new(kind: PlacementKind) -> Self {
        match kind {
            PlacementKind::Random => Self::Random(RandomPlacement),
            PlacementKind::RoundRobin => Self::RoundRobin(RoundRobinPlacement::default()),
            PlacementKind::LeastLoaded => Self::LeastLoaded(LeastLoadedPlacement),
        }
    }

    #[inline]
    fn choose(&mut self, candidates: &[CandidateMachine], rng: &mut Xoshiro256StarStar) -> usize {
        match self {
            Self::Random(p) => p.choose(candidates, rng),
            Self::RoundRobin(p) => p.choose(candidates, rng),
            Self::LeastLoaded(p) => p.choose(candidates, rng),
        }
    }
}

/// The live state one replication runs on. Borrows the config's owner
/// and job tables (nothing is cloned per replication); every handler
/// receives `&mut Sim` directly — the `Rc<RefCell<..>>` plumbing of the
/// closure engine is gone.
struct Sim<'a> {
    machines: Vec<MachineSim<'a>>,
    pool: Pool,
    queue: JobQueue,
    specs: SpecSource<'a>,
    jobs: JobTable,
    jobs_remaining: usize,
    placement: PlacementState,
    placement_rng: Xoshiro256StarStar,
    eviction: EvictionPolicy,
    gang_policy: GangPolicy,
    /// Per-job gang state (parallel to `jobs`; empty when gangs off).
    gangs: Vec<GangState>,
    gang_queue: GangQueue,
    /// Which gang (job index) occupies each machine, if any.
    machine_gang: Vec<Option<usize>>,
    /// Placed-but-under-width gangs (phase `Running`/`Suspended`,
    /// `members.len() < width`), kept sorted so the partial-gang grower
    /// finds the lowest job index in O(log n) instead of scanning every
    /// job per dispatch iteration. Empty under all-or-nothing policies,
    /// which only ever place full-width gangs.
    growers: BTreeSet<usize>,
    gacc: GangStats,
    /// Last time the fragmentation integral was accrued.
    frag_t: f64,
    /// Free-machine count as of `frag_t`.
    frag_free: usize,
    /// Whether a gang was waiting as of `frag_t`.
    frag_waiting: bool,
    discipline: QueueDiscipline,
    acc: Acc,
    /// Crash/repair process, if the config injects failures.
    failures: Option<FailureModel>,
    /// Per-machine failure-stream RNGs (empty without a failure model;
    /// a separate labeled stream, so no-failure sample paths are
    /// untouched).
    failure_rngs: Vec<Xoshiro256StarStar>,
    /// Per-machine crash counts (empty without a failure model).
    crashes_by_machine: Vec<u64>,
    makespan: f64,
    done: bool,
}

/// Keep `sim.growers` in sync after gang `j`'s membership or phase
/// changed — the incremental replacement for the old per-dispatch scan.
fn refresh_grower(sim: &mut Sim, j: usize) {
    let gang = &sim.gangs[j];
    let eligible = (gang.members.len() as u32) < gang.width
        && matches!(
            gang.phase,
            GangPhase::Running { .. } | GangPhase::Suspended { .. }
        );
    if eligible {
        sim.growers.insert(j);
    } else {
        sim.growers.remove(&j);
    }
}

/// Choose the next segment for a (re)starting guest.
fn next_segment(eviction: EvictionPolicy, g: &GuestTask) -> Segment {
    if g.setup_left > 0.0 {
        return Segment::Setup { len: g.setup_left };
    }
    match eviction {
        EvictionPolicy::Checkpoint { interval, overhead } => {
            let to_ckpt = interval - g.since_ckpt;
            if to_ckpt <= WORK_EPS {
                return Segment::CkptWrite { len: overhead };
            }
            Segment::Work {
                len: g.remaining.min(to_ckpt),
            }
        }
        EvictionPolicy::Adaptive {
            threshold,
            interval,
            overhead,
        } => {
            // Below the threshold the task runs uncheckpointed, with
            // the segment clipped so the crossing lands on a segment
            // boundary; above it, periodic checkpointing with
            // `since_ckpt` counted from the placement start, so the
            // first write lands at `max(threshold, interval)` invested.
            let invested = g.demand - g.remaining;
            if invested + WORK_EPS < threshold {
                return Segment::Work {
                    len: g.remaining.min(threshold - invested),
                };
            }
            let to_ckpt = interval - g.since_ckpt;
            if to_ckpt <= WORK_EPS {
                return Segment::CkptWrite { len: overhead };
            }
            Segment::Work {
                len: g.remaining.min(to_ckpt),
            }
        }
        _ => Segment::Work { len: g.remaining },
    }
}

/// Begin the next segment of the guest on machine `m`.
fn start_segment<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    m: usize,
    tracer: &mut T,
) {
    let now = cal.now().as_f64();
    let eviction = sim.eviction;
    let guest = sim.machines[m]
        .guest
        .as_mut()
        .expect("invariant: a running segment always has a guest aboard");
    let segment = next_segment(eviction, guest);
    let event = cal
        .schedule_in(
            SimTime::new(segment.len()),
            SchedEvent::SegmentEnd { m: m as u32 },
        )
        .expect("invariant: segment length is non-negative");
    if T::ENABLED {
        tracer.record(
            now,
            SchedRecord::SegmentStart {
                machine: m as u32,
                job: guest.job as u32,
                task: guest.task,
                kind: segment_kind(segment),
                wall: segment.len(),
            },
        );
    }
    guest.run = Some(RunState {
        segment,
        slice_start: now,
        event,
    });
}

/// A segment ran to completion undisturbed.
fn segment_end<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    now: f64,
    m: usize,
    tracer: &mut T,
) {
    let completed = {
        let guest = sim.machines[m]
            .guest
            .as_mut()
            .expect("invariant: segment_end fires only with a guest aboard");
        let run = guest
            .run
            .as_ref()
            .expect("invariant: segment_end implies the guest was running");
        let segment = run.segment;
        if T::ENABLED {
            tracer.record(
                now,
                SchedRecord::SegmentEnd {
                    machine: m as u32,
                    job: guest.job as u32,
                    task: guest.task,
                    kind: segment_kind(segment),
                },
            );
        }
        sim.acc.delivered += segment.len();
        match segment {
            Segment::Setup { len } => {
                sim.acc.wasted += len;
                guest.setup_left = 0.0;
                false
            }
            Segment::CkptWrite { len } => {
                sim.acc.ckpt += len;
                guest.since_ckpt = 0.0;
                false
            }
            Segment::Work { len } => {
                guest.remaining -= len;
                guest.since_ckpt += len;
                guest.remaining <= WORK_EPS
            }
        }
    };
    if !completed {
        start_segment(sim, cal, m, tracer);
        return;
    }
    let guest = sim.machines[m]
        .guest
        .take()
        .expect("invariant: completion fires only with a guest aboard");
    sim.pool.set_occupied(now, m, false);
    sim.acc.goodput += guest.demand;
    sim.acc.completed_tasks += 1;
    if T::ENABLED {
        tracer.record(
            now,
            SchedRecord::TaskCompleted {
                machine: m as u32,
                job: guest.job as u32,
                task: guest.task,
            },
        );
    }
    let job = sim.jobs.get_mut(guest.job);
    job.tasks_left -= 1;
    if job.tasks_left == 0 {
        job.record.completion = now;
        sim.jobs_remaining -= 1;
        if T::ENABLED {
            tracer.record(
                now,
                SchedRecord::JobCompleted {
                    job: guest.job as u32,
                },
            );
            let response = job.record.response_time();
            tracer.observe(now, ObsKind::Response, response);
            if job.record.demand > 0.0 {
                tracer.observe(now, ObsKind::Slowdown, response / job.record.demand);
            }
        }
        if sim.jobs_remaining == 0 {
            sim.done = true;
            sim.makespan = now;
        }
    }
    if !sim.done {
        dispatch(sim, cal, tracer);
    }
}

/// A job reaches the central queue.
fn job_arrival<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    now: f64,
    j: usize,
    tracer: &mut T,
) {
    let spec = sim.specs.take(j);
    if T::ENABLED {
        tracer.record(now, SchedRecord::JobArrival { job: j as u32 });
    }
    if sim.gang_policy.is_on() {
        let min_tasks = sim.gangs[j].floor;
        sim.gang_queue.push(PendingGang {
            job: j,
            tasks: spec.tasks,
            min_tasks,
            demand: spec.task_demand,
            remaining: spec.task_demand,
            setup: 0.0,
            enqueued_at: now,
        });
    } else {
        for task in 0..spec.tasks {
            sim.queue.push(PendingTask {
                job: j,
                task,
                demand: spec.task_demand,
                remaining: spec.task_demand,
                setup: 0.0,
                enqueued_at: now,
            });
        }
    }
    dispatch_any(sim, cal, tracer);
}

/// Route to the dispatcher matching the scheduling mode.
fn dispatch_any<T: SchedTracer>(sim: &mut Sim, cal: &mut Calendar<SchedEvent>, tracer: &mut T) {
    if sim.gang_policy.is_on() {
        gang_dispatch(sim, cal, tracer);
    } else {
        dispatch(sim, cal, tracer);
    }
}

/// Match queued tasks to available machines until either runs out.
fn dispatch<T: SchedTracer>(sim: &mut Sim, cal: &mut Calendar<SchedEvent>, tracer: &mut T) {
    loop {
        if sim.done || sim.queue.is_empty() {
            return;
        }
        if sim.pool.candidates().is_empty() {
            return;
        }
        let now = cal.now().as_f64();
        let pending = sim
            .queue
            .pop(sim.discipline)
            .expect("invariant: queue was checked non-empty just above");
        let chosen = sim
            .placement
            .choose(sim.pool.candidates(), &mut sim.placement_rng);
        let m = sim.pool.candidates()[chosen].machine;
        sim.acc.placements += 1;
        sim.acc.total_wait += now - pending.enqueued_at;
        sim.pool.set_occupied(now, m, true);
        if T::ENABLED {
            tracer.record(
                now,
                SchedRecord::TaskPlaced {
                    machine: m as u32,
                    job: pending.job as u32,
                    task: pending.task,
                },
            );
            tracer.observe(now, ObsKind::QueueWait, now - pending.enqueued_at);
        }
        sim.machines[m].guest = Some(GuestTask {
            job: pending.job,
            task: pending.task,
            demand: pending.demand,
            remaining: pending.remaining,
            since_ckpt: 0.0,
            setup_left: pending.setup,
            run: None,
        });
        start_segment(sim, cal, m, tracer);
    }
}

/// An owner returns to their machine.
fn owner_arrival<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    now: f64,
    m: usize,
    tracer: &mut T,
) {
    if sim.done {
        return;
    }
    if T::ENABLED {
        tracer.record(now, SchedRecord::OwnerArrival { machine: m as u32 });
    }
    sim.pool.owner_transition(now, m, true);
    if sim.pool.is_down(m) {
        // A crashed machine holds nothing live to reclaim (the crash
        // already killed or froze whatever was aboard); the owner's
        // think/use cycle keeps ticking on its own stream so repair
        // re-enters an unperturbed sample path.
        let mach = &mut sim.machines[m];
        let service = mach.owner.sample_service(&mut mach.rng);
        cal.post_in(
            SimTime::new(service),
            SchedEvent::OwnerDeparture { m: m as u32 },
        )
        .expect("invariant: sampled service time is positive");
        return;
    }
    let (service, outcome) = if sim.gang_policy.is_on() {
        let outcome = gang_owner_reclaim(sim, cal, now, m, tracer);
        let mach = &mut sim.machines[m];
        let service = mach.owner.sample_service(&mut mach.rng);
        (service, outcome)
    } else {
        let (service, requeued) = owner_reclaim_task(sim, cal, now, m, tracer);
        (
            service,
            ReclaimOutcome {
                redispatch: requeued,
                restart: None,
            },
        )
    };
    cal.post_in(
        SimTime::new(service),
        SchedEvent::OwnerDeparture { m: m as u32 },
    )
    .expect("invariant: sampled service time is positive");
    if let Some(j) = outcome.restart {
        start_gang_segment(sim, cal, j, tracer);
    }
    if outcome.redispatch {
        dispatch_any(sim, cal, tracer);
    }
}

/// Independent-task owner reclaim: evict (or suspend) the guest on
/// machine `m` per the configured [`EvictionPolicy`], then sample the
/// owner's service time. Returns `(service, requeued)`.
fn owner_reclaim_task<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    now: f64,
    m: usize,
    tracer: &mut T,
) -> (f64, bool) {
    let mut requeued = false;
    if let Some(mut guest) = sim.machines[m].guest.take() {
        let run = guest
            .run
            .take()
            .expect("invariant: owner was away, so the guest was running");
        cal.cancel(run.event);
        if T::ENABLED {
            tracer.record(
                now,
                SchedRecord::SegmentPreempted {
                    machine: m as u32,
                    job: guest.job as u32,
                    task: guest.task,
                    kind: segment_kind(run.segment),
                },
            );
            tracer.record(
                now,
                SchedRecord::Eviction {
                    machine: m as u32,
                    job: guest.job as u32,
                    task: guest.task,
                    action: match sim.eviction {
                        EvictionPolicy::SuspendResume => EvictionAction::Suspend,
                        EvictionPolicy::Restart => EvictionAction::Restart,
                        EvictionPolicy::Migrate { .. } => EvictionAction::Migrate,
                        EvictionPolicy::Checkpoint { .. } => EvictionAction::Rollback,
                        // At the threshold boundary both labels describe
                        // the same outcome (no checkpoint exists yet).
                        EvictionPolicy::Adaptive { threshold, .. } => {
                            if guest.demand - guest.remaining < threshold {
                                EvictionAction::Restart
                            } else {
                                EvictionAction::Rollback
                            }
                        }
                    },
                },
            );
        }
        let elapsed = now - run.slice_start;
        sim.acc.delivered += elapsed;
        match run.segment {
            // An interrupted restore is redone in full next time.
            Segment::Setup { .. } => sim.acc.wasted += elapsed,
            // An aborted checkpoint write is still overhead.
            Segment::CkptWrite { .. } => sim.acc.ckpt += elapsed,
            Segment::Work { .. } => {
                guest.remaining -= elapsed;
                guest.since_ckpt += elapsed;
            }
        }
        sim.acc.evictions += 1;
        match sim.eviction {
            EvictionPolicy::SuspendResume => {
                sim.acc.suspensions += 1;
                sim.machines[m].guest = Some(guest);
            }
            policy => {
                let out = on_eviction(policy, guest.demand, guest.remaining, guest.since_ckpt);
                sim.acc.wasted += out.lost;
                match policy {
                    EvictionPolicy::Restart => sim.acc.restarts += 1,
                    EvictionPolicy::Migrate { .. } => sim.acc.migrations += 1,
                    // Pre-threshold adaptive evictions are restarts;
                    // post-threshold ones are rollbacks (uncounted,
                    // like Checkpoint).
                    EvictionPolicy::Adaptive { threshold, .. }
                        if guest.demand - guest.remaining < threshold =>
                    {
                        sim.acc.restarts += 1;
                    }
                    _ => {}
                }
                sim.pool.set_occupied(now, m, false);
                sim.queue.push(PendingTask {
                    job: guest.job,
                    task: guest.task,
                    demand: guest.demand,
                    remaining: out.new_remaining,
                    setup: out.setup,
                    enqueued_at: now,
                });
                requeued = true;
            }
        }
    }
    let mach = &mut sim.machines[m];
    let service = mach.owner.sample_service(&mut mach.rng);
    (service, requeued)
}

/// What an owner departure unblocks.
enum Departure {
    /// Resume the suspended independent task in place.
    ResumeTask,
    /// Resume the whole suspended gang (every member's owner is away).
    ResumeGang(usize),
    /// Nothing aboard: the machine may serve the queue.
    Dispatch,
    /// A gang member whose gang is still pinned by other owners.
    Nothing,
}

/// An owner leaves their machine idle again.
fn owner_departure<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    now: f64,
    m: usize,
    tracer: &mut T,
) {
    if sim.done {
        return;
    }
    if T::ENABLED {
        tracer.record(now, SchedRecord::OwnerDeparture { machine: m as u32 });
    }
    sim.pool.owner_transition(now, m, false);
    let action = if sim.pool.is_down(m) {
        // The machine is crashed: nothing resumes and nothing can be
        // placed until repair.
        Departure::Nothing
    } else if sim.gang_policy.is_on() {
        gang_owner_release(sim, cal, now, m, tracer)
    } else if sim.machines[m].guest.is_some() {
        Departure::ResumeTask
    } else {
        Departure::Dispatch
    };
    let mach = &mut sim.machines[m];
    let think = mach.owner.sample_think(&mut mach.rng);
    cal.post_in(
        SimTime::new(think),
        SchedEvent::OwnerArrival { m: m as u32 },
    )
    .expect("invariant: think time is non-negative");
    match action {
        Departure::ResumeTask => start_segment(sim, cal, m, tracer),
        Departure::ResumeGang(j) => start_gang_segment(sim, cal, j, tracer),
        Departure::Dispatch => dispatch_any(sim, cal, tracer),
        Departure::Nothing => {}
    }
}

/// One failure-process RNG per machine, derived like the owner streams
/// (`machine << 32 | replication`) but under a dedicated label, so
/// enabling failures never perturbs the owner, probe, or placement
/// draws — the no-failure configuration stays bit-identical.
fn failure_streams(
    factory: &StreamFactory,
    on: bool,
    w: usize,
    replication: u64,
) -> Vec<Xoshiro256StarStar> {
    if !on {
        return Vec::new(); // ndslint::allow(no-alloc-in-hot-path, reason = "run setup, before the event loop")
    }
    (0..w)
        .map(|i| factory.labeled_stream("sched-failure", (i as u64) << 32 | replication))
        .collect()
}

/// Draw each machine's first uptime and schedule its initial crash.
/// No-op without a failure model, leaving the calendar exactly as the
/// failure-free engine builds it.
fn seed_failures(sim: &mut Sim, cal: &mut Calendar<SchedEvent>) {
    let Some(model) = sim.failures else { return };
    for m in 0..sim.machines.len() {
        let up = model.mtbf.sample(&mut sim.failure_rngs[m]);
        cal.post(SimTime::new(up), SchedEvent::MachineFailure { m: m as u32 })
            .expect("invariant: sampled lifetime is non-negative");
    }
}

/// Machine `m` crashes: whatever guest work is aboard is destroyed or
/// forced off per the crash semantics ([`crate::failure`]), the machine
/// leaves the pool until repair, and the repair time is drawn from the
/// failure model's MTTR lifetime.
fn machine_failure<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    now: f64,
    m: usize,
    tracer: &mut T,
) {
    if sim.done {
        return;
    }
    if T::ENABLED {
        tracer.record(now, SchedRecord::MachineFailure { machine: m as u32 });
    }
    sim.acc.crashes += 1;
    sim.crashes_by_machine[m] += 1;
    let outcome = if sim.gang_policy.is_on() {
        gang_crash(sim, cal, now, m, tracer)
    } else {
        ReclaimOutcome {
            redispatch: crash_task(sim, cal, now, m, tracer),
            restart: None,
        }
    };
    sim.pool.set_down(now, m, true);
    if sim.gang_policy.is_on() {
        // The candidate set just shrank: re-snapshot the
        // fragmentation integrand at the post-crash free count.
        frag_update(sim, now);
    }
    let model = sim
        .failures
        .expect("invariant: failure events only fire with a failure model");
    let mttr = model.mttr.sample(&mut sim.failure_rngs[m]);
    cal.post_in(
        SimTime::new(mttr),
        SchedEvent::MachineRepair { m: m as u32 },
    )
    .expect("invariant: sampled repair time is positive");
    if let Some(j) = outcome.restart {
        start_gang_segment(sim, cal, j, tracer);
    }
    if outcome.redispatch {
        dispatch_any(sim, cal, tracer);
    }
}

/// Machine `m` comes back from repair: it rejoins the pool (unless its
/// owner is at the console), the next crash is drawn from the MTBF
/// lifetime, and whatever the repaired machine unblocks — the waiting
/// queue, a pinned gang member — proceeds.
fn machine_repair<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    now: f64,
    m: usize,
    tracer: &mut T,
) {
    if sim.done {
        return;
    }
    if T::ENABLED {
        tracer.record(now, SchedRecord::MachineRepair { machine: m as u32 });
    }
    sim.pool.set_down(now, m, false);
    if sim.gang_policy.is_on() {
        frag_update(sim, now);
    }
    let model = sim
        .failures
        .expect("invariant: repair events only fire with a failure model");
    let next_up = model.mtbf.sample(&mut sim.failure_rngs[m]);
    cal.post_in(
        SimTime::new(next_up),
        SchedEvent::MachineFailure { m: m as u32 },
    )
    .expect("invariant: sampled lifetime is positive");
    if sim.pool.owner_busy(m) {
        // The owner holds the repaired machine; their eventual
        // departure runs the normal release path.
        return;
    }
    let action = if sim.gang_policy.is_on() {
        // A crash-pinned gang member is released exactly like one
        // whose owner departs: rejoin a degraded gang mid-segment, or
        // wake the gang if the floor is met again.
        gang_owner_release(sim, cal, now, m, tracer)
    } else {
        debug_assert!(
            sim.machines[m].guest.is_none(),
            "a crash leaves no independent guest behind"
        );
        Departure::Dispatch
    };
    match action {
        Departure::ResumeTask => start_segment(sim, cal, m, tracer),
        Departure::ResumeGang(j) => start_gang_segment(sim, cal, j, tracer),
        Departure::Dispatch => dispatch_any(sim, cal, tracer),
        Departure::Nothing => {}
    }
}

/// Crash on machine `m` in independent-task mode: kill whatever guest
/// is aboard — running, or suspended in place beneath its owner — and
/// requeue it. Progress not covered by a durable checkpoint is
/// destroyed; suspension images do not survive a power cycle. Returns
/// whether a task went back to the queue.
fn crash_task<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    now: f64,
    m: usize,
    tracer: &mut T,
) -> bool {
    let Some(mut guest) = sim.machines[m].guest.take() else {
        return false;
    };
    if let Some(run) = guest.run.take() {
        cal.cancel(run.event);
        if T::ENABLED {
            tracer.record(
                now,
                SchedRecord::SegmentPreempted {
                    machine: m as u32,
                    job: guest.job as u32,
                    task: guest.task,
                    kind: segment_kind(run.segment),
                },
            );
        }
        let elapsed = now - run.slice_start;
        sim.acc.delivered += elapsed;
        match run.segment {
            // A half-done restore was wasted CPU either way.
            Segment::Setup { .. } => sim.acc.wasted += elapsed,
            // The interrupted write is charged as overhead but does
            // NOT commit: `since_ckpt` keeps covering the whole
            // interval, which the crash then destroys.
            Segment::CkptWrite { .. } => sim.acc.ckpt += elapsed,
            Segment::Work { .. } => {
                guest.remaining -= elapsed;
                guest.since_ckpt += elapsed;
            }
        }
    }
    // Everything since the last durable checkpoint is destroyed.
    // Policies that never checkpoint have `since_ckpt` spanning the
    // whole investment, so they lose it all — including suspended
    // [`EvictionPolicy::SuspendResume`] guests.
    let lost = guest.since_ckpt;
    sim.acc.wasted += lost;
    sim.acc.crash_lost += lost;
    sim.pool.set_occupied(now, m, false);
    sim.queue.push(PendingTask {
        job: guest.job,
        task: guest.task,
        demand: guest.demand,
        remaining: guest.remaining + lost,
        setup: 0.0,
        enqueued_at: now,
    });
    true
}

/// Crash on machine `m` under a gang policy: the member is forced off
/// exactly as if its owner had reclaimed the machine — the gang
/// suspends below its floor, degrades above it, or migrates away as a
/// unit — but no eviction is counted (crashes are tallied separately)
/// and the member stays pinned until repair.
fn gang_crash<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    now: f64,
    m: usize,
    tracer: &mut T,
) -> ReclaimOutcome {
    let Some(j) = sim.machine_gang[m] else {
        frag_update(sim, now);
        return ReclaimOutcome::nothing();
    };
    let policy = sim.gang_policy;
    let outcome = match sim.gangs[j].phase {
        GangPhase::Running { .. } => {
            close_gang_segment(sim, cal, j, now, tracer);
            {
                let gang = &mut sim.gangs[j];
                let idx = member_index(gang, m);
                gang.member_busy[idx] = true;
                gang.member_running[idx] = false;
            }
            match policy {
                GangPolicy::MigrateAll { overhead } => {
                    // A crash-triggered whole-gang migration: the gang
                    // flees to the queue paying the same restore
                    // overhead as an owner-triggered move.
                    sim.gacc.gang_migrations += 1;
                    let gang = &mut sim.gangs[j];
                    gang.phase = GangPhase::Queued;
                    gang.setup_left = overhead;
                    gang.member_running.clear();
                    gang.member_busy.clear();
                    let members = std::mem::take(&mut gang.members);
                    let pending = PendingGang {
                        job: j,
                        tasks: gang.width,
                        min_tasks: gang.floor,
                        demand: gang.demand,
                        remaining: gang.remaining,
                        setup: overhead,
                        enqueued_at: now,
                    };
                    for &mm in &members {
                        sim.pool.set_occupied(now, mm, false);
                        sim.machine_gang[mm] = None;
                    }
                    sim.gang_queue.push(pending);
                    refresh_grower(sim, j);
                    if T::ENABLED {
                        tracer.record(now, SchedRecord::GangMigrated { job: j as u32 });
                    }
                    ReclaimOutcome {
                        redispatch: true,
                        restart: None,
                    }
                }
                GangPolicy::Off => unreachable!("gang paths need a gang policy"),
                _ => {
                    let gang = &mut sim.gangs[j];
                    if running_members(gang) >= gang.floor {
                        gang.phase = GangPhase::Suspended { last_t: now };
                        ReclaimOutcome {
                            redispatch: false,
                            restart: Some(j),
                        }
                    } else {
                        sim.gacc.gang_suspensions += 1;
                        suspend_gang_members(gang);
                        gang.phase = GangPhase::Suspended { last_t: now };
                        if T::ENABLED {
                            tracer.record(now, SchedRecord::GangSuspended { job: j as u32 });
                        }
                        ReclaimOutcome::nothing()
                    }
                }
            }
        }
        GangPhase::Suspended { last_t } => {
            // The gang already sleeps (or runs nothing here): extend
            // the stall bookkeeping and pin the member.
            let gang = &mut sim.gangs[j];
            let k = gang.members.len() as u32;
            let busy = busy_members(gang);
            sim.gacc.barrier_stall += (now - last_t) * f64::from(k - busy);
            let idx = member_index(gang, m);
            gang.member_busy[idx] = true;
            gang.phase = GangPhase::Suspended { last_t: now };
            ReclaimOutcome::nothing()
        }
        GangPhase::Queued | GangPhase::Done => {
            unreachable!("machines only map to placed, unfinished gangs")
        }
    };
    frag_update(sim, now);
    verify_gang_invariants(sim, j);
    outcome
}

/// What an owner reclaim on a gang-mode machine requires once the
/// handler's bookkeeping ends.
struct ReclaimOutcome {
    /// Machines were freed back to the queue (migrate-all), so the
    /// dispatcher should run.
    redispatch: bool,
    /// Restart this gang's segment — it lost a member but stays at or
    /// above its floor, so it continues at a lower rate.
    restart: Option<usize>,
}

impl ReclaimOutcome {
    fn nothing() -> Self {
        Self {
            redispatch: false,
            restart: None,
        }
    }
}

/// Members currently running.
fn running_members(gang: &GangState) -> u32 {
    gang.member_running.iter().filter(|&&on| on).count() as u32
}

/// Members whose machine is currently reclaimed by its owner.
fn busy_members(gang: &GangState) -> u32 {
    gang.member_busy.iter().filter(|&&b| b).count() as u32
}

/// Position of machine `m` within the gang's member list.
fn member_index(gang: &GangState, m: usize) -> usize {
    gang.members
        .iter()
        .position(|&mm| mm == m)
        .expect("invariant: machine maps to a member of this gang")
}

/// Clear every member's run flag — one of the two choke points through
/// which a gang's run/suspend state ever changes.
fn suspend_gang_members(gang: &mut GangState) {
    for r in &mut gang.member_running {
        *r = false;
    }
}

/// Mark every member whose machine is owner-free as running (the other
/// choke point) and return how many run. Under the all-or-nothing
/// policies this only ever fires with zero busy members, so the whole
/// gang flips together.
fn resume_gang_members(gang: &mut GangState) -> u32 {
    let mut running = 0u32;
    for i in 0..gang.member_running.len() {
        let on = !gang.member_busy[i];
        gang.member_running[i] = on;
        running += u32::from(on);
    }
    running
}

/// Whether gang `g` currently violates its co-scheduling invariant:
/// lockstep agreement under the all-or-nothing policies, the
/// `[floor, width]` running-member band under the partial ones.
fn gang_violation(gang: &GangState, partial: bool) -> bool {
    let running = running_members(gang);
    if running == 0 {
        return false;
    }
    if partial {
        running < gang.floor || running > gang.width
    } else {
        running as usize != gang.member_running.len()
    }
}

/// Re-verify the co-scheduling invariant for the gang the current
/// event touched (the only gang whose run/suspend state can have
/// changed): under the all-or-nothing policies, members of one job
/// must agree on their run/suspend state at every event (lockstep);
/// under the partial policies, a running gang must hold at least its
/// `min_running` floor and at most its width. Both violation counters
/// are pinned at zero by the workspace's property tests; a debug
/// assertion still sweeps every gang, so a cross-gang bug cannot hide
/// in release builds' incremental check without first failing the
/// debug suites.
fn verify_gang_invariants(sim: &mut Sim, j: usize) {
    let partial = sim.gang_policy.is_partial();
    if gang_violation(&sim.gangs[j], partial) {
        if partial {
            sim.gacc.floor_violations += 1;
        } else {
            sim.gacc.lockstep_violations += 1;
        }
    }
    debug_assert!(
        sim.gangs.iter().all(|g| !gang_violation(g, partial)),
        "an untouched gang violated its co-scheduling invariant"
    );
}

/// Close gang `j`'s in-flight segment at `now`: cancel its end event
/// and account the elapsed slice — delivered machine-time at the
/// segment's member count, per-task progress at its (possibly
/// degraded) rate, and the effective-parallelism / degraded-mode
/// integrals. Callers then suspend, migrate, or restart the gang at a
/// new rate.
fn close_gang_segment<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    j: usize,
    now: f64,
    tracer: &mut T,
) {
    let gang = &mut sim.gangs[j];
    let GangPhase::Running {
        is_setup,
        rate,
        slice_start,
        event,
        ..
    } = gang.phase
    else {
        unreachable!("only running gangs carry a segment to close")
    };
    cal.cancel(event);
    if T::ENABLED {
        let kind = if is_setup {
            SegmentKind::Setup
        } else {
            SegmentKind::Work
        };
        for (idx, &m) in gang.members.iter().enumerate() {
            if gang.member_running[idx] {
                tracer.record(
                    now,
                    SchedRecord::SegmentPreempted {
                        machine: m as u32,
                        job: j as u32,
                        task: idx as u32,
                        kind,
                    },
                );
            }
        }
    }
    let elapsed = now - slice_start;
    let r = f64::from(running_members(gang));
    sim.acc.delivered += r * elapsed;
    if is_setup {
        // An interrupted restore is redone in full next time.
        sim.acc.wasted += r * elapsed;
    } else {
        gang.remaining -= rate * elapsed;
        sim.gacc.parallelism_integral += r * elapsed;
        if (r as u32) < gang.width {
            sim.gacc.degraded_time += elapsed;
        }
    }
}

/// Accrue the gang-fragmentation integral over `[frag_t, now]` with the
/// state recorded at the last checkpoint, then re-snapshot. Called
/// after every gang-mode event that can change the free-machine count
/// or the queue's waiting state.
fn frag_update(sim: &mut Sim, now: f64) {
    if sim.frag_waiting {
        sim.gacc.fragmentation += (now - sim.frag_t) * sim.frag_free as f64;
    }
    sim.frag_t = now;
    sim.frag_waiting = !sim.gang_queue.is_empty();
    sim.frag_free = sim.pool.candidates().len();
}

/// Owner reclaim on machine `m` under a gang policy. The reclaimed
/// member suspends in place beneath its owner; what happens to the
/// rest of the gang is the policy's call — suspend everyone
/// (all-or-nothing, or a partial gang dropping through its floor),
/// keep computing at a degraded rate (partial, at or above the
/// floor), or migrate the whole gang back to the queue.
fn gang_owner_reclaim<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    now: f64,
    m: usize,
    tracer: &mut T,
) -> ReclaimOutcome {
    let Some(j) = sim.machine_gang[m] else {
        frag_update(sim, now);
        return ReclaimOutcome::nothing();
    };
    let policy = sim.gang_policy;
    let outcome = match sim.gangs[j].phase {
        GangPhase::Running { .. } => {
            close_gang_segment(sim, cal, j, now, tracer);
            let evicted_task = {
                let gang = &mut sim.gangs[j];
                let idx = member_index(gang, m);
                gang.member_busy[idx] = true;
                gang.member_running[idx] = false;
                idx as u32
            };
            sim.acc.evictions += 1;
            if T::ENABLED {
                let action = match policy {
                    GangPolicy::MigrateAll { .. } => EvictionAction::Migrate,
                    _ => EvictionAction::Suspend,
                };
                tracer.record(
                    now,
                    SchedRecord::Eviction {
                        machine: m as u32,
                        job: j as u32,
                        task: evicted_task,
                        action,
                    },
                );
            }
            match policy {
                GangPolicy::MigrateAll { overhead } => {
                    // One eviction event resolved by one (whole-gang)
                    // migration: like `evictions` and `suspensions`,
                    // `migrations` counts events, so the policies stay
                    // comparable (per-task moves = gang_migrations x
                    // gang size).
                    sim.acc.migrations += 1;
                    sim.gacc.gang_migrations += 1;
                    let gang = &mut sim.gangs[j];
                    gang.phase = GangPhase::Queued;
                    gang.setup_left = overhead;
                    gang.member_running.clear();
                    gang.member_busy.clear();
                    let members = std::mem::take(&mut gang.members);
                    let pending = PendingGang {
                        job: j,
                        tasks: gang.width,
                        min_tasks: gang.floor,
                        demand: gang.demand,
                        remaining: gang.remaining,
                        setup: overhead,
                        enqueued_at: now,
                    };
                    for &mm in &members {
                        sim.pool.set_occupied(now, mm, false);
                        sim.machine_gang[mm] = None;
                    }
                    sim.gang_queue.push(pending);
                    refresh_grower(sim, j);
                    if T::ENABLED {
                        tracer.record(now, SchedRecord::GangMigrated { job: j as u32 });
                    }
                    ReclaimOutcome {
                        redispatch: true,
                        restart: None,
                    }
                }
                GangPolicy::Off => unreachable!("gang paths need a gang policy"),
                // Suspend-below-floor semantics, shared by SuspendAll
                // (whose floor is the full width, so any reclaim drops
                // through it) and the partial policies.
                _ => {
                    sim.acc.suspensions += 1;
                    let gang = &mut sim.gangs[j];
                    if running_members(gang) >= gang.floor {
                        // Degraded mode: the survivors keep computing
                        // at a lower rate. The phase parks Suspended
                        // until the caller reopens the segment.
                        gang.phase = GangPhase::Suspended { last_t: now };
                        ReclaimOutcome {
                            redispatch: false,
                            restart: Some(j),
                        }
                    } else {
                        sim.gacc.gang_suspensions += 1;
                        suspend_gang_members(gang);
                        gang.phase = GangPhase::Suspended { last_t: now };
                        if T::ENABLED {
                            tracer.record(now, SchedRecord::GangSuspended { job: j as u32 });
                        }
                        ReclaimOutcome::nothing()
                    }
                }
            }
        }
        GangPhase::Suspended { last_t } => {
            // Another member machine reclaimed while the gang already
            // sleeps: extend the stall bookkeeping, nothing to evict.
            let gang = &mut sim.gangs[j];
            let k = gang.members.len() as u32;
            let busy = busy_members(gang);
            sim.gacc.barrier_stall += (now - last_t) * f64::from(k - busy);
            let idx = member_index(gang, m);
            gang.member_busy[idx] = true;
            gang.phase = GangPhase::Suspended { last_t: now };
            ReclaimOutcome::nothing()
        }
        GangPhase::Queued | GangPhase::Done => {
            unreachable!("machines only map to placed, unfinished gangs")
        }
    };
    frag_update(sim, now);
    verify_gang_invariants(sim, j);
    outcome
}

/// Owner departure on machine `m` under a gang policy: wake the gang
/// once enough members' owners are away (all of them under the
/// all-or-nothing policies, the `min_running` floor under a partial
/// policy), rejoin a degraded partial gang mid-run, or offer the
/// machine to the queue.
fn gang_owner_release<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    now: f64,
    m: usize,
    tracer: &mut T,
) -> Departure {
    let Some(j) = sim.machine_gang[m] else {
        return Departure::Dispatch;
    };
    match sim.gangs[j].phase {
        GangPhase::Suspended { last_t } => {
            let gang = &mut sim.gangs[j];
            let k = gang.members.len() as u32;
            let busy = busy_members(gang);
            sim.gacc.barrier_stall += (now - last_t) * f64::from(k - busy);
            let idx = member_index(gang, m);
            gang.member_busy[idx] = false;
            if k - (busy - 1) >= gang.floor {
                // Phase flips to Running inside start_gang_segment.
                Departure::ResumeGang(j)
            } else {
                gang.phase = GangPhase::Suspended { last_t: now };
                Departure::Nothing
            }
        }
        // Partial gangs keep computing through member reclaims, so an
        // owner can depart a member machine while the gang runs
        // degraded: the member rejoins and the rate steps back up.
        GangPhase::Running { .. } if sim.gang_policy.is_partial() => {
            {
                let gang = &mut sim.gangs[j];
                let idx = member_index(gang, m);
                gang.member_busy[idx] = false;
            }
            close_gang_segment(sim, cal, j, now, tracer);
            sim.gangs[j].phase = GangPhase::Suspended { last_t: now };
            Departure::ResumeGang(j)
        }
        // Under the all-or-nothing policies a running gang implies
        // every member's owner is away, and a queued/done gang holds
        // no machines: an owner departing a member machine can only
        // find the gang suspended.
        GangPhase::Running { .. } | GangPhase::Queued | GangPhase::Done => {
            unreachable!("owner departs a member machine only while the gang sleeps")
        }
    }
}

/// Match waiting gangs to free machines until nothing more fits.
///
/// Under a partial policy, already-placed gangs still below their full
/// width absorb freed machines first (one per step, lowest job index
/// first — a computing gang completing its placement beats admitting
/// new work), then queued gangs are admitted with `min(free, width)`
/// machines — at least their floor, by [`GangQueue::pop_fitting`]'s
/// contract.
fn gang_dispatch<T: SchedTracer>(sim: &mut Sim, cal: &mut Calendar<SchedEvent>, tracer: &mut T) {
    loop {
        let now = cal.now().as_f64();
        if sim.done {
            frag_update(sim, now);
            return;
        }
        let no_candidates = sim.pool.candidates().is_empty();
        let grower = if sim.gang_policy.is_partial() && !no_candidates {
            sim.growers.first().copied()
        } else {
            None
        };
        let (j, start) = if let Some(g) = grower {
            // Grow an under-placed gang by one member.
            let was_running = matches!(sim.gangs[g].phase, GangPhase::Running { .. });
            if was_running {
                close_gang_segment(sim, cal, g, now, tracer);
            } else if let GangPhase::Suspended { last_t } = sim.gangs[g].phase {
                // Membership is about to change: settle the stall
                // integral at the old member count.
                let gang = &mut sim.gangs[g];
                let k = gang.members.len() as u32;
                let busy = busy_members(gang);
                sim.gacc.barrier_stall += (now - last_t) * f64::from(k - busy);
                gang.phase = GangPhase::Suspended { last_t: now };
            }
            let chosen = sim
                .placement
                .choose(sim.pool.candidates(), &mut sim.placement_rng);
            let m = sim.pool.candidates()[chosen].machine;
            sim.pool.set_occupied(now, m, true);
            sim.machine_gang[m] = Some(g);
            sim.acc.placements += 1;
            let gang = &mut sim.gangs[g];
            gang.members.push(m);
            gang.member_busy.push(false);
            gang.member_running.push(false);
            if T::ENABLED {
                tracer.record(
                    now,
                    SchedRecord::TaskPlaced {
                        machine: m as u32,
                        job: g as u32,
                        task: (gang.members.len() - 1) as u32,
                    },
                );
            }
            let avail = gang.members.len() as u32 - busy_members(gang);
            let start = was_running || avail >= gang.floor;
            if was_running {
                // Parked until the segment reopens below.
                gang.phase = GangPhase::Suspended { last_t: now };
            }
            refresh_grower(sim, g);
            frag_update(sim, now);
            (g, start)
        } else {
            // Admit the next fitting gang from the queue.
            if no_candidates || sim.gang_queue.is_empty() {
                frag_update(sim, now);
                return;
            }
            let free = sim.pool.candidates().len();
            let Some(pending) = sim.gang_queue.pop_fitting(sim.discipline, free) else {
                frag_update(sim, now);
                return;
            };
            let j = pending.job;
            let n = (pending.tasks as usize).min(free);
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                let chosen = sim
                    .placement
                    .choose(sim.pool.candidates(), &mut sim.placement_rng);
                let m = sim.pool.candidates()[chosen].machine;
                sim.pool.set_occupied(now, m, true);
                sim.machine_gang[m] = Some(j);
                members.push(m);
            }
            sim.acc.placements += n as u64;
            sim.acc.total_wait += n as f64 * (now - pending.enqueued_at);
            sim.gacc.gang_starts += 1;
            sim.gacc.coalloc_wait += now - pending.enqueued_at;
            if T::ENABLED {
                tracer.record(
                    now,
                    SchedRecord::GangAdmitted {
                        job: j as u32,
                        members: n as u32,
                    },
                );
                tracer.observe(now, ObsKind::CoallocWait, now - pending.enqueued_at);
                // Mirror the accounting: every admitted member waited.
                #[allow(clippy::cast_possible_truncation)]
                tracer.observe_n(now, ObsKind::QueueWait, now - pending.enqueued_at, n as u32);
                for (idx, &mm) in members.iter().enumerate() {
                    tracer.record(
                        now,
                        SchedRecord::TaskPlaced {
                            machine: mm as u32,
                            job: j as u32,
                            task: idx as u32,
                        },
                    );
                }
            }
            let gang = &mut sim.gangs[j];
            gang.member_running = vec![false; n];
            gang.member_busy = vec![false; n];
            gang.members = members;
            if (n as u32) < gang.width {
                sim.growers.insert(j);
            }
            frag_update(sim, now);
            (j, true)
        };
        if start {
            start_gang_segment(sim, cal, j, tracer);
        }
    }
}

/// Begin the gang's next segment (setup after a migration, else the
/// whole remaining work — gangs only stop when interrupted). Every
/// member whose machine is owner-free runs; the per-task progress rate
/// is `running / width`, so a full gang computes at rate one and a
/// degraded partial gang proportionally slower.
fn start_gang_segment<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    j: usize,
    tracer: &mut T,
) {
    let now = cal.now().as_f64();
    let gang = &mut sim.gangs[j];
    let running = resume_gang_members(gang);
    debug_assert!(
        running >= gang.floor,
        "segment starts require the co-scheduling floor"
    );
    let rate = f64::from(running) / f64::from(gang.width);
    let (work, is_setup) = if gang.setup_left > 0.0 {
        (gang.setup_left, true)
    } else {
        (gang.remaining.max(0.0), false)
    };
    let wall = work / rate;
    let event = cal
        .schedule_in(
            SimTime::new(wall),
            SchedEvent::GangSegmentEnd { j: j as u32 },
        )
        .expect("invariant: gang segment length is non-negative");
    gang.phase = GangPhase::Running {
        is_setup,
        work,
        wall,
        rate,
        slice_start: now,
        event,
    };
    if T::ENABLED {
        let kind = if is_setup {
            SegmentKind::Setup
        } else {
            SegmentKind::Work
        };
        for (idx, &m) in gang.members.iter().enumerate() {
            if gang.member_running[idx] {
                tracer.record(
                    now,
                    SchedRecord::SegmentStart {
                        machine: m as u32,
                        job: j as u32,
                        task: idx as u32,
                        kind,
                        wall,
                    },
                );
            }
        }
    }
    verify_gang_invariants(sim, j);
}

/// A gang segment ran to completion undisturbed.
fn gang_segment_end<T: SchedTracer>(
    sim: &mut Sim,
    cal: &mut Calendar<SchedEvent>,
    now: f64,
    j: usize,
    tracer: &mut T,
) {
    let completed = {
        let gang = &mut sim.gangs[j];
        let GangPhase::Running {
            is_setup,
            work,
            wall,
            ..
        } = gang.phase
        else {
            unreachable!("gang segments end only while running")
        };
        if T::ENABLED {
            let kind = if is_setup {
                SegmentKind::Setup
            } else {
                SegmentKind::Work
            };
            for (idx, &m) in gang.members.iter().enumerate() {
                if gang.member_running[idx] {
                    tracer.record(
                        now,
                        SchedRecord::SegmentEnd {
                            machine: m as u32,
                            job: j as u32,
                            task: idx as u32,
                            kind,
                        },
                    );
                }
            }
        }
        let r = f64::from(running_members(gang));
        sim.acc.delivered += r * wall;
        if is_setup {
            // Migration restore: wasted work, then compute for real.
            sim.acc.wasted += r * wall;
            gang.setup_left = 0.0;
            false
        } else {
            gang.remaining -= work;
            sim.gacc.parallelism_integral += r * wall;
            if (r as u32) < gang.width {
                sim.gacc.degraded_time += wall;
            }
            // Work segments span the whole remaining demand, so an
            // undisturbed end is always a completion.
            true
        }
    };
    if !completed {
        start_gang_segment(sim, cal, j, tracer);
        return;
    }
    let gang = &mut sim.gangs[j];
    suspend_gang_members(gang);
    gang.phase = GangPhase::Done;
    gang.member_running.clear();
    gang.member_busy.clear();
    let demand = gang.demand;
    let width = gang.width;
    let members = std::mem::take(&mut gang.members);
    for &m in &members {
        sim.pool.set_occupied(now, m, false);
        sim.machine_gang[m] = None;
    }
    sim.growers.remove(&j);
    // The job completes all `width` tasks' worth of work even if a
    // partial gang never placed its full width (the shared clock
    // already charged the missing members' share via the degraded
    // rate).
    sim.acc.goodput += f64::from(width) * demand;
    sim.acc.completed_tasks += u64::from(width);
    let job = sim.jobs.get_mut(j);
    job.tasks_left = 0;
    job.record.completion = now;
    sim.jobs_remaining -= 1;
    if T::ENABLED {
        tracer.record(now, SchedRecord::JobCompleted { job: j as u32 });
        let response = job.record.response_time();
        tracer.observe(now, ObsKind::Response, response);
        if job.record.demand > 0.0 {
            tracer.observe(now, ObsKind::Slowdown, response / job.record.demand);
        }
    }
    if sim.jobs_remaining == 0 {
        sim.done = true;
        sim.makespan = now;
    }
    frag_update(sim, now);
    verify_gang_invariants(sim, j);
    if !sim.done {
        gang_dispatch(sim, cal, tracer);
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn owner(u: f64) -> OwnerWorkload {
        OwnerWorkload::continuous_exponential(10.0, u).unwrap()
    }

    fn base_config(eviction: EvictionPolicy) -> SchedConfig {
        let mut cfg = SchedConfig::homogeneous(
            6,
            &owner(0.15),
            vec![JobSpec::at_zero(10, 80.0), JobSpec::at_zero(4, 40.0)],
        );
        cfg.eviction = eviction;
        cfg.seed = 99;
        cfg
    }

    #[test]
    fn suspend_resume_wastes_nothing() {
        let m = base_config(EvictionPolicy::SuspendResume).run().unwrap();
        assert_eq!(m.completed_tasks, 14);
        assert_eq!(m.wasted, 0.0);
        assert_eq!(m.checkpoint_overhead, 0.0);
        assert!((m.goodput - m.total_demand).abs() < 1e-9);
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
        assert!(m.evictions > 0, "15% utilization must interfere");
        assert_eq!(m.suspensions, m.evictions);
    }

    #[test]
    fn restart_wastes_progress() {
        let m = base_config(EvictionPolicy::Restart).run().unwrap();
        assert!(m.restarts > 0);
        assert!(m.wasted > 0.0, "restarts must lose work");
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
        assert!((m.goodput - m.total_demand).abs() < 1e-9);
    }

    #[test]
    fn migrate_pays_setup_not_progress() {
        let m = base_config(EvictionPolicy::Migrate { overhead: 3.0 })
            .run()
            .unwrap();
        assert!(m.migrations > 0);
        // Wasted work is exactly the migration setup actually served
        // (interrupted restores re-count only served time).
        assert!(m.wasted <= m.migrations as f64 * 3.0 + 1e-9);
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
    }

    #[test]
    fn checkpoint_bounds_rollback_by_interval() {
        let m = base_config(EvictionPolicy::Checkpoint {
            interval: 20.0,
            overhead: 0.5,
        })
        .run()
        .unwrap();
        assert!(m.checkpoint_overhead > 0.0);
        assert!(
            m.wasted <= m.evictions as f64 * 20.0 + 1e-9,
            "each eviction loses at most one interval"
        );
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
    }

    fn failing_config(eviction: EvictionPolicy) -> SchedConfig {
        let mut cfg = base_config(eviction);
        cfg.failures = Some(FailureModel::exponential(120.0, 15.0).unwrap());
        cfg
    }

    #[test]
    fn crashes_destroy_unprotected_progress() {
        let m = failing_config(EvictionPolicy::SuspendResume).run().unwrap();
        assert!(m.crashes > 0, "mtbf 120 on 6 machines must crash");
        assert!(m.crash_lost > 0.0, "suspension images die with the host");
        assert!(
            m.crash_lost <= m.wasted + 1e-9,
            "crash losses are a share of wasted: {} vs {}",
            m.crash_lost,
            m.wasted
        );
        assert!(m.downtime > 0.0);
        assert_eq!(m.crashes_by_machine.len(), 6);
        assert_eq!(m.crashes_by_machine.iter().sum::<u64>(), m.crashes);
        assert_eq!(m.completed_tasks, 14, "jobs still finish through crashes");
        assert!((m.goodput - m.total_demand).abs() < 1e-9);
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
    }

    #[test]
    fn checkpoints_bound_crash_losses() {
        let m = failing_config(EvictionPolicy::Checkpoint {
            interval: 10.0,
            overhead: 0.4,
        })
        .run()
        .unwrap();
        assert!(m.crashes > 0);
        // `since_ckpt` never exceeds the interval under periodic
        // checkpointing, so neither can any one crash's loss.
        assert!(
            m.crash_lost <= m.crashes as f64 * 10.0 + 1e-9,
            "each crash rolls back at most one interval"
        );
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
        assert!((m.goodput - m.total_demand).abs() < 1e-9);
    }

    #[test]
    fn crash_during_checkpoint_write_loses_exactly_the_open_interval() {
        // A checkpoint only protects once its write *completes*: a
        // crash landing mid-write charges the served write time as
        // overhead but must NOT commit — the task rolls back to the
        // last durable checkpoint, losing exactly the whole open
        // interval. Reconstruct that accounting from the flight
        // recorder on a quiet pool (no owner evictions, so every
        // preemption is a crash) and demand the engine's `crash_lost`
        // and `checkpoint_overhead` match the replay to round-off.
        use crate::trace::{FlightRecorder, SegmentKind};
        use std::collections::BTreeMap;

        let mut interrupted_writes = 0u32;
        for seed in [1u64, 2, 3, 4] {
            let mut cfg = SchedConfig::homogeneous(
                4,
                &owner(1e-9),
                vec![JobSpec::at_zero(4, 100.0), JobSpec::at_zero(4, 100.0)],
            );
            cfg.eviction = EvictionPolicy::Checkpoint {
                interval: 15.0,
                overhead: 3.0,
            };
            cfg.failures = Some(FailureModel::exponential(50.0, 6.0).unwrap());
            cfg.seed = seed;
            let mut rec = FlightRecorder::new(4, 1e6);
            let (m, _) = cfg.run_traced(&mut rec).unwrap();
            assert_eq!(m.evictions, 0, "quiet owners: every preemption is a crash");
            assert!(m.crashes > 0, "seed {seed} must crash");

            // Replay the segment log: per task, the work accumulated
            // since its last *durable* checkpoint; per machine, the
            // open segment.
            let mut since_ckpt: BTreeMap<(u32, u32), f64> = BTreeMap::new();
            let mut open: BTreeMap<u32, (f64, SegmentKind)> = BTreeMap::new();
            let mut lost = 0.0;
            let mut overhead = 0.0;
            for &(t, ref r) in rec.events() {
                match *r {
                    SchedRecord::SegmentStart { machine, kind, .. } => {
                        open.insert(machine, (t, kind));
                    }
                    SchedRecord::SegmentEnd {
                        machine, job, task, ..
                    } => {
                        let (start, kind) = open.remove(&machine).expect("end without start");
                        match kind {
                            SegmentKind::Work => {
                                *since_ckpt.entry((job, task)).or_insert(0.0) += t - start;
                            }
                            SegmentKind::CkptWrite => {
                                // The write committed: the interval
                                // behind it is durable.
                                overhead += t - start;
                                since_ckpt.insert((job, task), 0.0);
                            }
                            SegmentKind::Setup => {}
                        }
                    }
                    SchedRecord::SegmentPreempted {
                        machine, job, task, ..
                    } => {
                        // Quiet pool: only a crash cuts a segment
                        // short, and it destroys everything since the
                        // last durable commit.
                        let (start, kind) = open.remove(&machine).expect("preempt without start");
                        match kind {
                            SegmentKind::Work => {
                                *since_ckpt.entry((job, task)).or_insert(0.0) += t - start;
                            }
                            SegmentKind::CkptWrite => {
                                // Charged as overhead, NOT committed.
                                overhead += t - start;
                                interrupted_writes += 1;
                            }
                            SegmentKind::Setup => {}
                        }
                        lost += since_ckpt.insert((job, task), 0.0).unwrap_or(0.0);
                    }
                    _ => {}
                }
            }
            assert!(
                (lost - m.crash_lost).abs() <= 1e-9 * m.crash_lost.max(1.0),
                "seed {seed}: trace-reconstructed loss {lost} vs crash_lost {}",
                m.crash_lost
            );
            assert!(
                (overhead - m.checkpoint_overhead).abs() <= 1e-9 * m.checkpoint_overhead.max(1.0),
                "seed {seed}: write time {overhead} vs checkpoint_overhead {}",
                m.checkpoint_overhead
            );
            assert!(m.is_consistent(), "residual {}", m.accounting_residual());
        }
        assert!(
            interrupted_writes > 0,
            "the sweep must crash at least one checkpoint write mid-flight"
        );
    }

    #[test]
    fn rare_failures_leave_sample_paths_untouched() {
        // The failure process draws from its own labeled stream: a
        // model whose first crash lands far past the makespan must
        // reproduce the no-failure run's every float.
        let base = base_config(EvictionPolicy::SuspendResume).run().unwrap();
        let mut cfg = base_config(EvictionPolicy::SuspendResume);
        cfg.failures = Some(FailureModel::exponential(1e12, 10.0).unwrap());
        let m = cfg.run().unwrap();
        assert_eq!(m.crashes, 0, "mtbf 1e12 must not crash inside this run");
        assert_eq!(m.downtime, 0.0);
        assert_eq!(m.makespan, base.makespan);
        assert_eq!(m.delivered, base.delivered);
        assert_eq!(m.jobs, base.jobs);
    }

    #[test]
    fn failure_runs_replay_and_diverge_across_replications() {
        let cfg = failing_config(EvictionPolicy::Restart);
        let a = cfg.run().unwrap();
        assert_eq!(a, cfg.run().unwrap(), "same seed must replay identically");
        let mut cfg2 = cfg.clone();
        cfg2.replication = 1;
        assert_ne!(a.makespan, cfg2.run().unwrap().makespan);
    }

    #[test]
    fn gang_crashes_route_through_the_reclaim_path() {
        let mut cfg = gang_config(GangPolicy::SuspendAll);
        cfg.failures = Some(FailureModel::exponential(150.0, 20.0).unwrap());
        let m = cfg.run().unwrap();
        assert!(m.crashes > 0);
        assert_eq!(m.completed_tasks, 12);
        assert_eq!(
            m.crash_lost, 0.0,
            "gang members freeze at barriers; a member crash suspends, not destroys"
        );
        assert!(m.downtime > 0.0);
        assert_eq!(m.gang.lockstep_violations, 0);
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());

        let mut cfgp = gang_config(GangPolicy::Partial { min_running: 2 });
        cfgp.failures = Some(FailureModel::exponential(150.0, 20.0).unwrap());
        let p = cfgp.run().unwrap();
        assert_eq!(p.completed_tasks, 12);
        assert_eq!(p.gang.floor_violations, 0);
        assert!(p.is_consistent(), "residual {}", p.accounting_residual());
    }

    #[test]
    fn adaptive_brackets_restart_and_checkpoint_bit_for_bit() {
        // Threshold 0 starts checkpointing immediately: every segment,
        // eviction outcome, and counter matches Checkpoint exactly.
        let ck = base_config(EvictionPolicy::Checkpoint {
            interval: 20.0,
            overhead: 0.5,
        })
        .run()
        .unwrap();
        let ad = base_config(EvictionPolicy::Adaptive {
            threshold: 0.0,
            interval: 20.0,
            overhead: 0.5,
        })
        .run()
        .unwrap();
        assert_eq!(ad, ck);
        // An unreachable threshold never protects anything: Restart.
        let rs = base_config(EvictionPolicy::Restart).run().unwrap();
        let ad2 = base_config(EvictionPolicy::Adaptive {
            threshold: f64::MAX,
            interval: 20.0,
            overhead: 0.5,
        })
        .run()
        .unwrap();
        assert_eq!(ad2, rs);
    }

    #[test]
    fn adaptive_checkpoints_once_invested() {
        let m = base_config(EvictionPolicy::Adaptive {
            threshold: 20.0,
            interval: 10.0,
            overhead: 0.4,
        })
        .run()
        .unwrap();
        assert_eq!(m.completed_tasks, 14);
        assert!(
            m.checkpoint_overhead > 0.0,
            "tasks past the threshold must write checkpoints"
        );
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
    }

    #[test]
    fn streamed_run_with_failures_replays_materialized() {
        use crate::feed::SliceFeed;
        let mut cfg = streaming_config();
        cfg.failures = Some(FailureModel::exponential(200.0, 25.0).unwrap());
        let (want, want_events) = cfg.run_counted().unwrap();
        assert!(want.crashes > 0, "this sweep must actually crash");
        let mut feed = SliceFeed::new(&cfg.jobs);
        let mut records = Vec::new();
        let (mut got, events) = cfg
            .run_streamed(&mut feed, 7, &mut |_, r| records.push(r))
            .unwrap();
        got.jobs = records;
        assert_eq!(got, want, "streamed failure run diverged");
        assert_eq!(events, want_events);
    }

    #[test]
    fn run_replications_matches_manual_loop() {
        let cfg = base_config(EvictionPolicy::SuspendResume);
        let runs = cfg.run_replications(3).unwrap();
        assert_eq!(runs.len(), 3);
        for (rep, run) in runs.iter().enumerate() {
            let mut manual = cfg.clone();
            manual.replication = rep as u64;
            assert_eq!(*run, manual.run().unwrap());
        }
        assert_eq!(cfg.run_replications(0).unwrap().len(), 1, "reps clamp to 1");
    }

    #[test]
    fn deterministic_replay_and_replication_divergence() {
        let cfg = base_config(EvictionPolicy::SuspendResume);
        let a = cfg.run().unwrap();
        let b = cfg.run().unwrap();
        assert_eq!(a, b, "same seed must replay identically");
        let mut cfg2 = cfg.clone();
        cfg2.replication = 1;
        let c = cfg2.run().unwrap();
        assert_ne!(a.makespan, c.makespan, "replications must differ");
    }

    #[test]
    fn placement_policies_all_complete_with_shared_owner_paths() {
        for kind in PlacementKind::ALL {
            let mut cfg = base_config(EvictionPolicy::SuspendResume);
            cfg.placement = kind;
            cfg.calibration_horizon = 5_000.0;
            let m = cfg.run().unwrap();
            assert_eq!(m.completed_tasks, 14, "{}", kind.name());
            assert!(m.is_consistent(), "{}", kind.name());
        }
    }

    #[test]
    fn sjf_backfill_completes_and_orders_short_jobs_first() {
        let short_job = JobSpec::at_zero(2, 10.0);
        let long_job = JobSpec::at_zero(2, 500.0);
        // One machine: strict serialization makes ordering observable.
        let mut cfg = SchedConfig::homogeneous(1, &owner(0.02), vec![long_job, short_job]);
        cfg.discipline = QueueDiscipline::SjfBackfill;
        let m = cfg.run().unwrap();
        assert!(
            m.jobs[1].completion < m.jobs[0].completion,
            "short job must finish first under SJF backfill"
        );
        let mut cfg_fcfs = cfg.clone();
        cfg_fcfs.discipline = QueueDiscipline::Fcfs;
        let f = cfg_fcfs.run().unwrap();
        assert!(
            f.jobs[0].completion < f.jobs[1].completion,
            "FCFS serves the first-submitted job first"
        );
    }

    #[test]
    fn starved_pool_reports_event_cap() {
        let mut cfg = base_config(EvictionPolicy::SuspendResume);
        // Calibrated estimates (~0.15) sit far above the threshold, so
        // no machine is ever admitted and the jobs starve.
        cfg.admission_threshold = 1e-6;
        cfg.calibration_horizon = 20_000.0;
        cfg.max_events = 10_000;
        match cfg.run() {
            Err(SchedError::EventCapExceeded {
                jobs_unfinished, ..
            }) => assert_eq!(jobs_unfinished, 2),
            other => panic!("expected EventCapExceeded, got {other:?}"),
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        let good = base_config(EvictionPolicy::SuspendResume);
        let mut c = good.clone();
        c.owners.clear();
        assert!(c.run().is_err());
        let mut c = good.clone();
        c.jobs[0].task_demand = -1.0;
        assert!(c.run().is_err());
        let mut c = good.clone();
        c.eviction = EvictionPolicy::Checkpoint {
            interval: -5.0,
            overhead: 1.0,
        };
        assert!(c.run().is_err());
        let mut c = good;
        c.admission_threshold = 0.0;
        assert!(c.run().is_err());
    }

    fn gang_config(policy: GangPolicy) -> SchedConfig {
        let mut cfg = SchedConfig::homogeneous(
            8,
            &owner(0.15),
            vec![
                JobSpec::at_zero(4, 60.0),
                JobSpec {
                    tasks: 6,
                    task_demand: 40.0,
                    arrival: 30.0,
                },
                JobSpec {
                    tasks: 2,
                    task_demand: 80.0,
                    arrival: 60.0,
                },
            ],
        );
        cfg.gang = policy;
        cfg.seed = 424;
        cfg
    }

    #[test]
    fn gang_suspend_all_conserves_and_stalls() {
        let m = gang_config(GangPolicy::SuspendAll).run().unwrap();
        assert_eq!(m.completed_tasks, 12);
        assert_eq!(m.wasted, 0.0, "suspend-all never loses work");
        assert!((m.goodput - m.total_demand).abs() < 1e-9);
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
        assert!(m.gang.gang_suspensions > 0, "15% owners must interfere");
        assert_eq!(m.gang.gang_suspensions, m.suspensions);
        assert!(
            m.gang.barrier_stall > 0.0,
            "peers with free machines must stall behind reclaimed members"
        );
        assert_eq!(m.gang.lockstep_violations, 0);
        assert!(
            m.gang.gang_starts >= 3,
            "each job co-allocates at least once"
        );
        assert_eq!(m.placements, 12, "one placement per task under suspend-all");
    }

    #[test]
    fn gang_migrate_all_moves_as_a_unit() {
        let m = gang_config(GangPolicy::MigrateAll { overhead: 2.0 })
            .run()
            .unwrap();
        assert_eq!(m.completed_tasks, 12);
        assert!(m.gang.gang_migrations > 0);
        assert_eq!(
            m.migrations, m.gang.gang_migrations,
            "migrations count eviction events, one per whole-gang move"
        );
        assert_eq!(
            m.evictions, m.migrations,
            "every reclaim resolves by migrating"
        );
        assert!(m.wasted > 0.0, "migration setup is wasted CPU");
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
        assert!((m.goodput - m.total_demand).abs() < 1e-9);
        assert_eq!(m.gang.lockstep_violations, 0);
        assert_eq!(
            m.gang.barrier_stall, 0.0,
            "migrate-all never sleeps in place"
        );
        assert!(
            m.gang.gang_starts == m.gang.gang_migrations + 3,
            "every migration re-co-allocates once: {} starts, {} migrations",
            m.gang.gang_starts,
            m.gang.gang_migrations
        );
    }

    // (The gang-of-one bit-for-bit equivalence with the independent
    // engine lives in the workspace suite, tests/gang_invariants.rs,
    // which sweeps every placement policy and queue discipline.)

    #[test]
    fn partial_gang_degrades_instead_of_suspending() {
        let m = gang_config(GangPolicy::Partial { min_running: 2 })
            .run()
            .unwrap();
        assert_eq!(m.completed_tasks, 12);
        assert_eq!(m.wasted, 0.0, "suspend-in-place loses no work");
        assert!((m.goodput - m.total_demand).abs() < 1e-9);
        assert!(m.is_consistent(), "residual {}", m.accounting_residual());
        assert_eq!(m.gang.floor_violations, 0);
        assert_eq!(m.gang.lockstep_violations, 0);
        assert!(
            m.gang.degraded_time > 0.0,
            "15% owners must push some gang below full width"
        );
        // Conservation: the effective-parallelism integral over work
        // segments is exactly the demand served.
        assert!(
            (m.gang.parallelism_integral - m.total_demand).abs() <= 1e-9 * m.total_demand,
            "∫rate·dt = {} vs demand {}",
            m.gang.parallelism_integral,
            m.total_demand
        );
        // Degraded continuation beats freezing: fewer whole-gang
        // suspensions than suspend-all sees on the same sample paths.
        let sa = gang_config(GangPolicy::SuspendAll).run().unwrap();
        assert!(m.gang.gang_suspensions <= sa.gang.gang_suspensions);
    }

    #[test]
    fn partial_floor_at_width_is_bit_for_bit_suspend_all() {
        // min_running clamps to each gang's width, so a huge floor
        // turns Partial into SuspendAll — including every float in
        // every metric (the rate is exactly 1.0 on all paths). The
        // workspace property suite sweeps this across random configs;
        // this is the fast in-crate pin.
        let partial = gang_config(GangPolicy::Partial {
            min_running: u32::MAX,
        })
        .run()
        .unwrap();
        let suspend = gang_config(GangPolicy::SuspendAll).run().unwrap();
        assert_eq!(partial, suspend);
        let frac = gang_config(GangPolicy::PartialFrac {
            min_running_frac: 1.0,
        })
        .run()
        .unwrap();
        assert_eq!(frac, suspend);
    }

    #[test]
    fn partial_gang_wider_than_the_pool_completes_degraded() {
        // 6 tasks on 4 machines can never fully co-allocate, but with a
        // floor of 2 the gang is admitted, runs at rate <= 4/6, and
        // still conserves its full demand.
        let mut cfg = SchedConfig::homogeneous(4, &owner(0.05), vec![JobSpec::at_zero(6, 30.0)]);
        cfg.gang = GangPolicy::Partial { min_running: 2 };
        cfg.seed = 11;
        let m = cfg.run().unwrap();
        assert_eq!(m.completed_tasks, 6);
        assert!((m.goodput - m.total_demand).abs() < 1e-9);
        assert!(m.is_consistent());
        assert_eq!(m.gang.floor_violations, 0);
        assert!(
            m.gang.degraded_time > 0.0,
            "an under-placed gang is degraded by definition"
        );
        assert!(
            m.makespan >= 30.0 * 6.0 / 4.0 - 1e-9,
            "rate cannot exceed pool/width"
        );
        // The same job is rejected under all-or-nothing co-allocation.
        cfg.gang = GangPolicy::SuspendAll;
        assert!(matches!(
            cfg.run(),
            Err(SchedError::InvalidConfig { field: "jobs", .. })
        ));
        // And a floor wider than the pool is rejected for partial too.
        cfg.gang = GangPolicy::Partial { min_running: 5 };
        assert!(matches!(
            cfg.run(),
            Err(SchedError::InvalidConfig { field: "jobs", .. })
        ));
    }

    #[test]
    fn partial_replay_is_deterministic() {
        let cfg = gang_config(GangPolicy::Partial { min_running: 3 });
        let a = cfg.run().unwrap();
        assert_eq!(a, cfg.run().unwrap(), "same seed must replay identically");
        let mut cfg2 = cfg.clone();
        cfg2.replication = 1;
        assert_ne!(a.makespan, cfg2.run().unwrap().makespan);
    }

    #[test]
    fn rejects_invalid_partial_policies() {
        let mut cfg = gang_config(GangPolicy::Partial { min_running: 0 });
        assert!(cfg.run().is_err());
        cfg.gang = GangPolicy::PartialFrac {
            min_running_frac: 0.0,
        };
        assert!(cfg.run().is_err());
        cfg.gang = GangPolicy::PartialFrac {
            min_running_frac: 2.0,
        };
        assert!(cfg.run().is_err());
    }

    #[test]
    fn gang_fragmentation_prices_unusable_free_machines() {
        // One long-running wide gang monopolizes the pool while a
        // second wide gang waits: machines freed by owner cycles stay
        // unusable for the waiting gang.
        let mut cfg = SchedConfig::homogeneous(
            4,
            &owner(0.10),
            vec![JobSpec::at_zero(4, 120.0), JobSpec::at_zero(4, 120.0)],
        );
        cfg.gang = GangPolicy::SuspendAll;
        cfg.seed = 7;
        let m = cfg.run().unwrap();
        assert!(
            m.gang.coalloc_wait > 0.0,
            "the second gang must wait for the first"
        );
        assert!(m.is_consistent());
    }

    #[test]
    fn gang_rejects_jobs_wider_than_the_pool() {
        let mut cfg = SchedConfig::homogeneous(4, &owner(0.10), vec![JobSpec::at_zero(5, 50.0)]);
        cfg.gang = GangPolicy::SuspendAll;
        assert!(matches!(
            cfg.run(),
            Err(SchedError::InvalidConfig { field: "jobs", .. })
        ));
        // The same job is fine without co-allocation.
        cfg.gang = GangPolicy::Off;
        assert!(cfg.run().is_ok());
        // And bad migrate-all overheads are typed errors.
        cfg.gang = GangPolicy::MigrateAll { overhead: -1.0 };
        assert!(cfg.run().is_err());
    }

    #[test]
    fn gang_replay_is_deterministic() {
        let cfg = gang_config(GangPolicy::SuspendAll);
        let a = cfg.run().unwrap();
        let b = cfg.run().unwrap();
        assert_eq!(a, b, "same seed must replay identically");
        let mut cfg2 = cfg.clone();
        cfg2.replication = 1;
        assert_ne!(a.makespan, cfg2.run().unwrap().makespan);
    }

    #[test]
    fn job_records_track_arrivals() {
        let mut cfg = base_config(EvictionPolicy::SuspendResume);
        cfg.jobs = vec![
            JobSpec {
                tasks: 4,
                task_demand: 50.0,
                arrival: 0.0,
            },
            JobSpec {
                tasks: 4,
                task_demand: 50.0,
                arrival: 200.0,
            },
        ];
        let m = cfg.run().unwrap();
        assert_eq!(m.jobs.len(), 2);
        assert!(m.jobs[0].completion >= 50.0);
        assert!(m.jobs[1].completion >= 250.0);
        assert!(m.jobs[1].response_time() >= 50.0);
        assert_eq!(m.makespan, m.jobs[0].completion.max(m.jobs[1].completion));
        assert!(m.mean_available_machines > 0.0);
        assert!(m.mean_available_machines <= 6.0);
    }

    /// A sorted multi-job workload whose arrival instants (multiples of
    /// 13.7) cannot collide with owner events (continuous exponential
    /// draws), so streamed chunk boundaries never hit an exact-time tie.
    fn streaming_config() -> SchedConfig {
        let jobs: Vec<JobSpec> = (0u32..40)
            .map(|i| JobSpec {
                tasks: 1 + (i % 3),
                task_demand: 20.0 + f64::from(i % 5) * 7.5,
                arrival: f64::from(i) * 13.7,
            })
            .collect();
        let mut cfg = SchedConfig::homogeneous(6, &owner(0.15), jobs);
        cfg.seed = 4242;
        cfg
    }

    #[test]
    fn streamed_run_replays_materialized_byte_for_byte() {
        use crate::feed::SliceFeed;
        let cfg = streaming_config();
        let (want, want_events) = cfg.run_counted().unwrap();
        for chunk in [1usize, 7, 1000] {
            let mut feed = SliceFeed::new(&cfg.jobs);
            let mut records = Vec::new();
            let mut next = 0usize;
            let (mut got, events) = cfg
                .run_streamed(&mut feed, chunk, &mut |j, r| {
                    assert_eq!(j, next, "records retire in submission order");
                    next += 1;
                    records.push(r);
                })
                .unwrap();
            assert!(got.jobs.is_empty(), "streamed metrics carry no job table");
            got.jobs = records;
            assert_eq!(got, want, "chunk {chunk} diverged from materialized run");
            assert_eq!(events, want_events, "chunk {chunk} executed extra events");
        }
    }

    #[test]
    fn streamed_run_rejects_regressing_feeds_and_bad_specs() {
        use crate::feed::{SliceFeed, VecFeed};
        let cfg = streaming_config();
        // Arrival regression across a chunk boundary is a typed error.
        let jobs = vec![
            JobSpec {
                tasks: 1,
                task_demand: 10.0,
                arrival: 50.0,
            },
            JobSpec {
                tasks: 1,
                task_demand: 10.0,
                arrival: 25.0,
            },
        ];
        for chunk in [1usize, 2] {
            let mut feed = VecFeed::new(jobs.clone());
            let err = cfg
                .run_streamed(&mut feed, chunk, &mut |_, _| {})
                .unwrap_err();
            assert!(
                matches!(err, SchedError::InvalidConfig { field: "feed", .. }),
                "chunk {chunk}: {err}"
            );
        }
        // A bad spec is named by its absolute submission index.
        let mut feed = VecFeed::new(vec![
            JobSpec {
                tasks: 1,
                task_demand: 10.0,
                arrival: 0.0,
            },
            JobSpec {
                tasks: 1,
                task_demand: f64::NAN,
                arrival: 1.0,
            },
        ]);
        match cfg.run_streamed(&mut feed, 8, &mut |_, _| {}).unwrap_err() {
            SchedError::InvalidConfig {
                field: "jobs",
                reason,
            } => assert!(reason.contains("job 1"), "{reason}"),
            other => panic!("unexpected error {other}"),
        }
        // Empty feeds, gang configs, and zero chunks are rejected.
        let mut empty = VecFeed::new(Vec::new());
        assert!(matches!(
            cfg.run_streamed(&mut empty, 8, &mut |_, _| {}).unwrap_err(),
            SchedError::InvalidConfig { field: "feed", .. }
        ));
        let mut gang_cfg = cfg.clone();
        gang_cfg.gang = GangPolicy::SuspendAll;
        assert!(matches!(
            gang_cfg
                .run_streamed(&mut SliceFeed::new(&cfg.jobs), 8, &mut |_, _| {})
                .unwrap_err(),
            SchedError::InvalidConfig { field: "gang", .. }
        ));
        assert!(matches!(
            cfg.run_streamed(&mut SliceFeed::new(&cfg.jobs), 0, &mut |_, _| {})
                .unwrap_err(),
            SchedError::InvalidConfig { field: "chunk", .. }
        ));
    }
}
