//! The central job queue feeding the pool.
//!
//! Jobs arrive over time ([`JobSpec`]); each contributes `tasks`
//! independent tasks of equal demand. Tasks wait in one central queue
//! (the Condor "matchmaker" picture rather than the paper's static
//! one-task-per-station assignment) and are dispatched one at a time by
//! a [`crate::policy::PlacementPolicy`]. Two disciplines order the
//! queue:
//!
//! * [`QueueDiscipline::Fcfs`] — strict arrival order,
//! * [`QueueDiscipline::SjfBackfill`] — shortest-remaining-work first:
//!   short tasks backfill stolen cycles ahead of long ones (ties fall
//!   back to arrival order).
//!
//! Under a [`crate::gang::GangPolicy`] the task-level queue is replaced
//! by the job-level [`crate::gang::GangQueue`], which applies the same
//! two disciplines to whole gangs (all-or-nothing admission).

use std::collections::VecDeque;

/// One parallel job submitted to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Number of independent tasks (the paper's perfectly parallel job
    /// sliced into `tasks` pieces).
    pub tasks: u32,
    /// CPU demand of each task in time units.
    pub task_demand: f64,
    /// Absolute arrival time of the job.
    pub arrival: f64,
}

impl JobSpec {
    /// A job arriving at time zero.
    pub fn at_zero(tasks: u32, task_demand: f64) -> Self {
        Self {
            tasks,
            task_demand,
            arrival: 0.0,
        }
    }

    /// Total CPU demand of the job.
    pub fn total_demand(&self) -> f64 {
        f64::from(self.tasks) * self.task_demand
    }

    /// A uniform stream of `jobs` identical jobs — `tasks` tasks of
    /// `task_demand` each — arriving `gap` time units apart starting at
    /// zero. The workload shape shared by the scheduler scenarios, the
    /// bench sweeps, and the CLI.
    pub fn stream(jobs: u32, tasks: u32, task_demand: f64, gap: f64) -> Vec<Self> {
        (0..jobs)
            .map(|j| Self {
                tasks,
                task_demand,
                arrival: f64::from(j) * gap,
            })
            .collect()
    }
}

/// Queue ordering discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// First come, first served.
    Fcfs,
    /// Shortest remaining work first (backfill).
    SjfBackfill,
}

impl QueueDiscipline {
    /// Short stable name for tables and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Fcfs => "fcfs",
            Self::SjfBackfill => "sjf-backfill",
        }
    }
}

/// One task waiting for a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingTask {
    /// Index of the owning job.
    pub job: usize,
    /// Task index within the job.
    pub task: u32,
    /// Original per-task demand (restarts reset `remaining` to this).
    pub demand: f64,
    /// Work still owed.
    pub remaining: f64,
    /// Setup CPU time owed before computing (migration restore cost).
    pub setup: f64,
    /// When this entry joined the queue (for wait-time statistics).
    pub enqueued_at: f64,
}

/// The central queue of pending tasks.
#[derive(Debug, Clone, Default)]
pub struct JobQueue {
    tasks: VecDeque<PendingTask>,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of waiting tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no task is waiting.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Append a task (arrival order position).
    pub fn push(&mut self, task: PendingTask) {
        self.tasks.push_back(task);
    }

    /// Remove and return the next task under `discipline`.
    pub fn pop(&mut self, discipline: QueueDiscipline) -> Option<PendingTask> {
        match discipline {
            QueueDiscipline::Fcfs => self.tasks.pop_front(),
            QueueDiscipline::SjfBackfill => {
                // Iterator::min_by keeps the first of equally-minimum
                // elements and f64::total_cmp is a total order, so
                // equal keys preserve arrival order and nothing can
                // panic mid-dispatch.
                let best = self
                    .tasks
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        (a.remaining + a.setup).total_cmp(&(b.remaining + b.setup))
                    })
                    .map(|(i, _)| i)?;
                self.tasks.remove(best)
            }
        }
    }

    /// Total remaining work queued (setup excluded).
    pub fn backlog(&self) -> f64 {
        self.tasks.iter().map(|t| t.remaining).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(job: usize, remaining: f64) -> PendingTask {
        PendingTask {
            job,
            task: 0,
            demand: remaining,
            remaining,
            setup: 0.0,
            enqueued_at: 0.0,
        }
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut q = JobQueue::new();
        q.push(task(0, 50.0));
        q.push(task(1, 10.0));
        q.push(task(2, 30.0));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop(QueueDiscipline::Fcfs))
            .map(|t| t.job)
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn sjf_backfill_prefers_short_tasks() {
        let mut q = JobQueue::new();
        q.push(task(0, 50.0));
        q.push(task(1, 10.0));
        q.push(task(2, 30.0));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop(QueueDiscipline::SjfBackfill))
            .map(|t| t.job)
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn sjf_counts_setup_toward_length() {
        let mut q = JobQueue::new();
        let mut a = task(0, 10.0);
        a.setup = 25.0; // 35 total
        q.push(a);
        q.push(task(1, 30.0));
        assert_eq!(q.pop(QueueDiscipline::SjfBackfill).unwrap().job, 1);
    }

    #[test]
    fn sjf_ties_fall_back_to_fifo() {
        let mut q = JobQueue::new();
        q.push(task(7, 10.0));
        q.push(task(8, 10.0));
        assert_eq!(q.pop(QueueDiscipline::SjfBackfill).unwrap().job, 7);
    }

    #[test]
    fn sjf_equal_keys_drain_in_strict_arrival_order() {
        // Regression for the partial_cmp ordering: a whole run of
        // NaN-free but equal keys (remaining + setup identical, built
        // two different ways) must drain exactly FCFS.
        let mut q = JobQueue::new();
        for job in 0..5 {
            let mut t = task(job, 30.0);
            if job % 2 == 1 {
                // Same 30.0 key expressed as remaining + setup.
                t.remaining = 20.0;
                t.setup = 10.0;
            }
            q.push(t);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop(QueueDiscipline::SjfBackfill))
            .map(|t| t.job)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn backlog_sums_remaining() {
        let mut q = JobQueue::new();
        q.push(task(0, 50.0));
        q.push(task(1, 10.0));
        assert_eq!(q.backlog(), 60.0);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn job_spec_helpers() {
        let j = JobSpec::at_zero(8, 100.0);
        assert_eq!(j.arrival, 0.0);
        assert_eq!(j.total_demand(), 800.0);
        assert_eq!(QueueDiscipline::Fcfs.name(), "fcfs");
        assert_eq!(QueueDiscipline::SjfBackfill.name(), "sjf-backfill");
    }

    #[test]
    fn stream_spaces_identical_jobs() {
        let jobs = JobSpec::stream(3, 4, 50.0, 25.0);
        assert_eq!(jobs.len(), 3);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.tasks, 4);
            assert_eq!(j.task_demand, 50.0);
            assert_eq!(j.arrival, 25.0 * i as f64);
        }
        assert!(JobSpec::stream(0, 4, 50.0, 25.0).is_empty());
    }
}
