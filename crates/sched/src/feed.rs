//! Streaming job feeds: bounded-memory workload generation.
//!
//! [`SchedConfig::run_streamed`](crate::SchedConfig::run_streamed)
//! consumes jobs from a [`JobFeed`] in bounded chunks instead of a
//! fully materialized `Vec<JobSpec>`. Each chunk enters the calendar's
//! pre-sorted arrival backlog ([`nds_des::Calendar::schedule_sorted`])
//! when the previous chunk's last arrival fires, so peak memory tracks
//! the chunk size and the live job window — not the experiment length.
//! A million-job trace streams through a few thousand resident specs.
//!
//! The materialized path stays the degenerate case: [`VecFeed`] and
//! [`SliceFeed`] wrap an in-memory job list, and a streamed run over
//! them replays the classic [`SchedConfig::run`](crate::SchedConfig)
//! event-for-event (same per-event RNG draws, same sequence numbering
//! of arrivals *within* the live window), which is what the workspace's
//! streaming byte-identity tests pin.
//!
//! # Contract
//!
//! * Chunks are appended to the caller's buffer in **submission
//!   order**; arrivals must be globally non-decreasing across the whole
//!   feed (the engine reports a typed error otherwise, never panics).
//! * `next_chunk` may return fewer than `max` jobs; returning `0` means
//!   the feed is exhausted and will not be polled again.
//! * Exact-time ties: jobs tied with *owner* events at the identical
//!   float instant can order differently than the materialized path if
//!   the tie crosses a chunk boundary (later chunks draw later calendar
//!   sequence numbers). Continuous random arrival processes hit this
//!   with probability zero; integer-timed fixtures should avoid
//!   colliding arrivals across chunks.

use crate::error::SchedError;
use crate::queue::JobSpec;

/// A pull-based source of time-sorted job arrivals.
pub trait JobFeed {
    /// Append up to `max` jobs to `buf` in submission order. Returns
    /// how many were appended; `0` signals exhaustion.
    fn next_chunk(&mut self, max: usize, buf: &mut Vec<JobSpec>) -> Result<usize, SchedError>;
}

impl<F: JobFeed + ?Sized> JobFeed for &mut F {
    fn next_chunk(&mut self, max: usize, buf: &mut Vec<JobSpec>) -> Result<usize, SchedError> {
        (**self).next_chunk(max, buf)
    }
}

impl<F: JobFeed + ?Sized> JobFeed for Box<F> {
    fn next_chunk(&mut self, max: usize, buf: &mut Vec<JobSpec>) -> Result<usize, SchedError> {
        (**self).next_chunk(max, buf)
    }
}

/// The degenerate feed: an owned, already-materialized job list.
#[derive(Debug, Clone)]
pub struct VecFeed {
    jobs: Vec<JobSpec>,
    next: usize,
}

impl VecFeed {
    /// Feed the given jobs chunk by chunk, in order.
    pub fn new(jobs: Vec<JobSpec>) -> Self {
        Self { jobs, next: 0 }
    }
}

impl JobFeed for VecFeed {
    fn next_chunk(&mut self, max: usize, buf: &mut Vec<JobSpec>) -> Result<usize, SchedError> {
        let n = max.min(self.jobs.len() - self.next);
        buf.extend_from_slice(&self.jobs[self.next..self.next + n]);
        self.next += n;
        Ok(n)
    }
}

/// A borrowing [`VecFeed`]: streams an existing slice without copying
/// it up front.
#[derive(Debug, Clone)]
pub struct SliceFeed<'a> {
    jobs: &'a [JobSpec],
    next: usize,
}

impl<'a> SliceFeed<'a> {
    /// Feed the given slice chunk by chunk, in order.
    pub fn new(jobs: &'a [JobSpec]) -> Self {
        Self { jobs, next: 0 }
    }
}

impl JobFeed for SliceFeed<'_> {
    fn next_chunk(&mut self, max: usize, buf: &mut Vec<JobSpec>) -> Result<usize, SchedError> {
        let n = max.min(self.jobs.len() - self.next);
        buf.extend_from_slice(&self.jobs[self.next..self.next + n]);
        self.next += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(n: u32) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                tasks: 1,
                task_demand: 10.0,
                arrival: f64::from(i),
            })
            .collect()
    }

    #[test]
    fn vec_feed_chunks_in_order_and_exhausts() {
        let mut feed = VecFeed::new(jobs(5));
        let mut buf = Vec::new();
        assert_eq!(feed.next_chunk(2, &mut buf).unwrap(), 2);
        assert_eq!(feed.next_chunk(2, &mut buf).unwrap(), 2);
        assert_eq!(feed.next_chunk(2, &mut buf).unwrap(), 1);
        assert_eq!(feed.next_chunk(2, &mut buf).unwrap(), 0, "exhausted");
        assert_eq!(buf.len(), 5);
        assert!(buf.windows(2).all(|p| p[0].arrival <= p[1].arrival));
    }

    #[test]
    fn slice_feed_matches_vec_feed() {
        let all = jobs(7);
        let mut a = VecFeed::new(all.clone());
        let mut b = SliceFeed::new(&all);
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        loop {
            let na = a.next_chunk(3, &mut ba).unwrap();
            let nb = b.next_chunk(3, &mut bb).unwrap();
            assert_eq!(na, nb);
            if na == 0 {
                break;
            }
        }
        assert_eq!(ba, bb);
    }
}
