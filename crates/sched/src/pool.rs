//! Dynamic pool membership and probe-style load estimation.
//!
//! The paper assumes a static pool of `W` stations, all always usable at
//! low priority. A cycle-stealing scheduler instead sees a **dynamic**
//! pool: a machine is available only while its owner is away, it may be
//! occupied by a guest task already, and the scheduler's view of each
//! machine's load is an *estimate* from periodic probes (the `uptime`
//! readings the paper used for calibration), not ground truth.
//!
//! [`Pool`] tracks, per machine: the owner's busy/idle state, whether a
//! guest task occupies it (running *or* suspended — a suspended guest
//! still holds the machine's memory), and an exponentially-weighted
//! [`UtilizationEstimator`]. It also integrates the available-machine
//! count over time, the scheduler's analogue of the paper's `W`.
//!
//! # Incremental free-machine index
//!
//! The pool maintains its offerable-machine set *incrementally*: a
//! sorted candidate list updated in place on every owner transition
//! and occupancy change, plus an O(1) free-machine counter feeding the
//! availability integral. [`Pool::candidates`] therefore returns a
//! slice view — no `Vec` is materialized per dispatch iteration, and
//! no O(W) membership scan runs per event. The list is kept in
//! ascending machine order, which placement policies rely on
//! (round-robin cursors, least-loaded and random tie-breaking), so the
//! view is byte-for-byte the list the old allocating implementation
//! built from scratch.

use crate::policy::CandidateMachine;

/// Exponentially weighted, time-decayed estimate of one owner's
/// utilization — the probe readings a real scheduler would gossip.
///
/// Between observations the estimate is held; each observed interval of
/// busy (1) or idle (0) state is folded in with weight `1 - exp(-dt/tau)`,
/// so the estimator remembers roughly the last `tau` time units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationEstimator {
    tau: f64,
    estimate: f64,
    last_update: f64,
}

impl UtilizationEstimator {
    /// A fresh estimator with averaging window `tau` (> 0), starting
    /// from `initial` (e.g. a calibration probe, or 0 for no prior).
    pub fn new(tau: f64, initial: f64) -> Self {
        assert!(tau > 0.0 && tau.is_finite(), "tau must be finite > 0");
        Self {
            tau,
            estimate: initial.clamp(0.0, 1.0),
            last_update: 0.0,
        }
    }

    /// Fold in the interval `[self.last_update, now]` during which the
    /// owner was continuously `busy` or idle.
    pub fn observe(&mut self, now: f64, busy: bool) {
        let dt = (now - self.last_update).max(0.0);
        self.last_update = now;
        if dt == 0.0 {
            return;
        }
        let w = 1.0 - (-dt / self.tau).exp();
        let level = if busy { 1.0 } else { 0.0 };
        self.estimate += w * (level - self.estimate);
    }

    /// Current estimate in `[0, 1]`.
    pub fn estimate(&self) -> f64 {
        self.estimate
    }
}

#[derive(Debug, Clone)]
struct Member {
    owner_busy: bool,
    occupied: bool,
    /// Crashed and awaiting repair (fault injection) — a down machine
    /// is never free, whatever its owner or occupancy state.
    down: bool,
    estimator: UtilizationEstimator,
}

/// Membership and load view of the workstation pool.
#[derive(Debug, Clone)]
pub struct Pool {
    members: Vec<Member>,
    admission_threshold: f64,
    // Time integral of the available-machine count.
    avail_integral: f64,
    last_change: f64,
    /// Machines with owner away and no guest aboard (regardless of the
    /// admission threshold) — the availability integral's integrand,
    /// maintained incrementally.
    free_count: usize,
    /// Offerable machines (free *and* within the admission threshold),
    /// in ascending machine order, maintained incrementally.
    cand: Vec<CandidateMachine>,
    /// Machines currently crashed — the downtime integral's integrand.
    down_count: usize,
    /// Time integral of the down-machine count (machine-time lost to
    /// crashes), accumulated on the same clock as `avail_integral`.
    down_integral: f64,
}

impl Pool {
    /// A pool of `n` machines, all initially idle and unoccupied.
    ///
    /// `admission_threshold` is the maximum estimated owner utilization
    /// at which a machine is still offered to the scheduler (1.0 admits
    /// everything); `tau` is the estimator window; `initial_estimates`
    /// optionally seeds each estimator from a calibration probe.
    pub fn new(n: usize, admission_threshold: f64, tau: f64, initial_estimates: &[f64]) -> Self {
        assert!(n > 0, "pool needs at least one machine");
        let members = (0..n)
            .map(|i| Member {
                owner_busy: false,
                occupied: false,
                down: false,
                estimator: UtilizationEstimator::new(
                    tau,
                    initial_estimates.get(i).copied().unwrap_or(0.0),
                ),
            })
            .collect();
        let mut pool = Self {
            members,
            admission_threshold,
            avail_integral: 0.0,
            last_change: 0.0,
            free_count: n,
            cand: Vec::with_capacity(n),
            down_count: 0,
            down_integral: 0.0,
        };
        for m in 0..n {
            pool.refresh_candidate(m);
        }
        pool
    }

    /// Number of machines in the pool (available or not).
    pub fn size(&self) -> usize {
        self.members.len()
    }

    fn accumulate_availability(&mut self, now: f64) {
        // Clamp like `UtilizationEstimator::observe`: a backwards probe
        // (e.g. a query issued at an earlier timestamp than the last
        // state change) must not drive the integral negative. State
        // transitions separately `debug_assert!` monotonicity so real
        // event-ordering bugs still surface in debug/test builds.
        let dt = (now - self.last_change).max(0.0);
        self.avail_integral += dt * self.free_count as f64;
        self.down_integral += dt * self.down_count as f64;
        self.last_change = self.last_change.max(now);
    }

    fn member_free(m: &Member) -> bool {
        !m.down && !m.owner_busy && !m.occupied
    }

    /// Re-sync machine `m`'s entry in the incremental candidate list
    /// with its current state (owner presence, occupancy, estimate).
    fn refresh_candidate(&mut self, m: usize) {
        let member = &self.members[m];
        let eligible =
            Self::member_free(member) && member.estimator.estimate() <= self.admission_threshold;
        match (eligible, self.cand.binary_search_by(|c| c.machine.cmp(&m))) {
            (true, Ok(i)) => self.cand[i].load_estimate = member.estimator.estimate(),
            (true, Err(i)) => self.cand.insert(
                i,
                CandidateMachine {
                    machine: m,
                    load_estimate: member.estimator.estimate(),
                },
            ),
            (false, Ok(i)) => {
                self.cand.remove(i);
            }
            (false, Err(_)) => {}
        }
    }

    /// Apply a state change to machine `m`, keeping the free counter
    /// and candidate index in sync.
    fn transition(&mut self, m: usize, mutate: impl FnOnce(&mut Member)) {
        let was_free = Self::member_free(&self.members[m]);
        mutate(&mut self.members[m]);
        let is_free = Self::member_free(&self.members[m]);
        match (was_free, is_free) {
            (true, false) => self.free_count -= 1,
            (false, true) => self.free_count += 1,
            _ => {}
        }
        // A machine that stays non-free is in the candidate list
        // neither before nor after — nothing to probe.
        if was_free || is_free {
            self.refresh_candidate(m);
        }
    }

    /// Record an owner state transition on machine `m` at time `now`.
    #[inline]
    pub fn owner_transition(&mut self, now: f64, m: usize, busy: bool) {
        debug_assert!(
            now >= self.last_change,
            "owner transition at {now} precedes last pool change {}",
            self.last_change
        );
        self.accumulate_availability(now);
        let was_busy = self.members[m].owner_busy;
        self.members[m].estimator.observe(now, was_busy);
        self.transition(m, |member| member.owner_busy = busy);
    }

    /// Record a guest task taking or releasing machine `m` at `now`.
    #[inline]
    pub fn set_occupied(&mut self, now: f64, m: usize, occupied: bool) {
        debug_assert!(
            now >= self.last_change,
            "occupancy change at {now} precedes last pool change {}",
            self.last_change
        );
        self.accumulate_availability(now);
        self.transition(m, |member| member.occupied = occupied);
    }

    /// Record machine `m` crashing (`down = true`) or being repaired
    /// (`down = false`) at `now`. A down machine leaves the candidate
    /// index and the availability integral's integrand until repair;
    /// the lost machine-time accumulates in [`Pool::downtime`].
    #[inline]
    pub fn set_down(&mut self, now: f64, m: usize, down: bool) {
        debug_assert!(
            now >= self.last_change,
            "down transition at {now} precedes last pool change {}",
            self.last_change
        );
        self.accumulate_availability(now);
        if self.members[m].down != down {
            if down {
                self.down_count += 1;
            } else {
                self.down_count -= 1;
            }
        }
        self.transition(m, |member| member.down = down);
    }

    /// Whether machine `m` is currently crashed.
    pub fn is_down(&self, m: usize) -> bool {
        self.members[m].down
    }

    /// Total machine-time spent down (crashed) up to `now` — the
    /// pool-level capacity lost to failures.
    pub fn downtime(&mut self, now: f64) -> f64 {
        self.accumulate_availability(now);
        self.down_integral
    }

    /// Whether machine `m`'s owner is currently busy.
    pub fn owner_busy(&self, m: usize) -> bool {
        self.members[m].owner_busy
    }

    /// Current load estimate for machine `m`.
    pub fn load_estimate(&self, m: usize) -> f64 {
        self.members[m].estimator.estimate()
    }

    /// Machines currently offerable to the scheduler: owner away, no
    /// guest aboard, and estimated load within the admission threshold.
    /// A borrowed view of the incrementally-maintained index, in
    /// ascending machine order — nothing is built per call.
    #[inline]
    pub fn candidates(&self) -> &[CandidateMachine] {
        &self.cand
    }

    /// Time-averaged available-machine count up to `now` — the dynamic
    /// pool's effective `W`.
    pub fn mean_available(&mut self, now: f64) -> f64 {
        self.accumulate_availability(now);
        if now <= 0.0 {
            return self.free_count as f64;
        }
        self.avail_integral / now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_converges_to_duty_cycle() {
        // Owner alternates 1 busy / 9 idle => 10% utilization.
        let mut e = UtilizationEstimator::new(50.0, 0.0);
        let mut t = 0.0;
        for _ in 0..200 {
            e.observe(t + 9.0, false);
            e.observe(t + 10.0, true);
            t += 10.0;
        }
        assert!((e.estimate() - 0.10).abs() < 0.03, "est {}", e.estimate());
    }

    #[test]
    fn estimator_weighs_recent_history_more() {
        let mut e = UtilizationEstimator::new(10.0, 0.0);
        e.observe(100.0, false); // long idle stretch
        e.observe(130.0, true); // then a long busy stretch
        assert!(
            e.estimate() > 0.9,
            "recent busy dominates: {}",
            e.estimate()
        );
    }

    #[test]
    fn candidates_exclude_busy_and_occupied() {
        let mut p = Pool::new(3, 1.0, 100.0, &[]);
        p.owner_transition(1.0, 0, true);
        p.set_occupied(1.0, 1, true);
        let c = p.candidates();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].machine, 2);
    }

    #[test]
    fn admission_threshold_filters_hot_machines() {
        let mut p = Pool::new(2, 0.3, 10.0, &[0.9, 0.1]);
        assert_eq!(p.candidates().len(), 1);
        assert_eq!(p.candidates()[0].machine, 1);
        // Machine 0 cools off after a long idle observation.
        p.owner_transition(100.0, 0, false);
        assert_eq!(p.candidates().len(), 2);
    }

    #[test]
    fn initial_estimates_seed_the_view() {
        let p = Pool::new(2, 1.0, 100.0, &[0.25, 0.05]);
        assert_eq!(p.load_estimate(0), 0.25);
        assert_eq!(p.load_estimate(1), 0.05);
    }

    #[test]
    fn mean_available_integrates_transitions() {
        let mut p = Pool::new(2, 1.0, 100.0, &[]);
        // Both free until t=10, one busy from 10 to 30, both free to 40.
        p.owner_transition(10.0, 0, true);
        p.owner_transition(30.0, 0, false);
        let mean = p.mean_available(40.0);
        // (2*10 + 1*20 + 2*10) / 40 = 1.5
        assert!((mean - 1.5).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_pool_rejected() {
        Pool::new(0, 1.0, 100.0, &[]);
    }

    #[test]
    fn backwards_probe_cannot_corrupt_the_integral() {
        // Regression: `accumulate_availability` used to add the raw
        // `now - last_change` product, so a probe at an earlier
        // timestamp subtracted machine-time from the integral (and
        // rewound `last_change`, double-counting the gap afterwards).
        let mut p = Pool::new(2, 1.0, 100.0, &[]);
        p.owner_transition(10.0, 0, true); // integral = 2*10 = 20
        let _ = p.mean_available(5.0); // backwards probe: must be a no-op
        let mean = p.mean_available(20.0);
        // (2*10 + 1*10) / 20 = 1.5 — unchanged by the stale probe.
        assert!((mean - 1.5).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "precedes last pool change")]
    fn non_monotone_transition_asserts_in_debug() {
        let mut p = Pool::new(1, 1.0, 100.0, &[]);
        p.owner_transition(10.0, 0, true);
        p.owner_transition(5.0, 0, false);
    }

    #[test]
    fn down_machines_leave_candidates_and_availability() {
        let mut p = Pool::new(2, 1.0, 100.0, &[]);
        p.set_down(10.0, 0, true);
        assert!(p.is_down(0));
        assert_eq!(p.candidates().len(), 1);
        assert_eq!(p.candidates()[0].machine, 1);
        p.set_down(25.0, 0, false);
        assert!(!p.is_down(0));
        assert_eq!(p.candidates().len(), 2);
        // Availability: 2 machines to t=10, 1 from 10..25, 2 to 40.
        let mean = p.mean_available(40.0);
        assert!(
            (mean - (20.0 + 15.0 + 30.0) / 40.0).abs() < 1e-12,
            "mean {mean}"
        );
        // Downtime integral: machine 0 down for 15 machine-time units.
        assert!((p.downtime(40.0) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn down_state_is_orthogonal_to_owner_and_occupancy() {
        // A crash while the owner is home (or a guest is aboard) and a
        // repair before/after the owner leaves must never double-count
        // the free counter.
        let mut p = Pool::new(1, 1.0, 100.0, &[]);
        p.owner_transition(1.0, 0, true);
        p.set_down(2.0, 0, true); // down while owner busy
        assert_eq!(p.candidates().len(), 0);
        p.owner_transition(3.0, 0, false); // owner leaves while down
        assert_eq!(p.candidates().len(), 0, "down dominates owner state");
        p.set_down(4.0, 0, false); // repair with owner away
        assert_eq!(p.candidates().len(), 1);
        assert_eq!(p.free_count, 1);
        // Idempotent repair is a no-op.
        p.set_down(5.0, 0, false);
        assert_eq!(p.free_count, 1);
        assert!((p.downtime(10.0) - 2.0).abs() < 1e-12);
    }

    /// What the pre-incremental implementation rebuilt per call.
    fn brute_force_candidates(p: &Pool) -> Vec<CandidateMachine> {
        p.members
            .iter()
            .enumerate()
            .filter(|(_, m)| Pool::member_free(m))
            .filter(|(_, m)| m.estimator.estimate() <= p.admission_threshold)
            .map(|(i, m)| CandidateMachine {
                machine: i,
                load_estimate: m.estimator.estimate(),
            })
            .collect()
    }

    #[test]
    fn incremental_index_matches_brute_force_rebuild() {
        // A deterministic churn of owner transitions and occupancy
        // flips across a threshold that machines cross in both
        // directions; after every single mutation the incremental
        // index must equal the from-scratch rebuild, entry for entry.
        let mut p = Pool::new(5, 0.5, 20.0, &[0.9, 0.4, 0.0, 0.7, 0.2]);
        let expected = brute_force_candidates(&p);
        assert_eq!(p.candidates(), expected.as_slice());
        let mut t = 0.0;
        for step in 0u32..200 {
            t += 1.0 + f64::from(step % 7);
            let m = (step as usize * 13 + 5) % 5;
            match step % 6 {
                0 => p.owner_transition(t, m, true),
                1 => p.owner_transition(t, m, false),
                2 => p.set_occupied(t, m, true),
                3 => p.set_occupied(t, m, false),
                4 => p.set_down(t, m, true),
                _ => p.set_down(t, m, false),
            }
            let expected = brute_force_candidates(&p);
            assert_eq!(
                p.candidates(),
                expected.as_slice(),
                "index diverged at step {step}"
            );
            let free = p.members.iter().filter(|m| Pool::member_free(m)).count();
            assert_eq!(p.free_count, free, "free counter diverged at step {step}");
        }
    }
}
