//! Scheduler run metrics and the work-conservation invariant.
//!
//! Every unit of CPU time a machine grants to guest work is classified
//! exactly once:
//!
//! * **goodput** — progress that survived to a task completion,
//! * **wasted** — progress destroyed by evictions (restart losses,
//!   checkpoint rollbacks) plus migration setup time, and progress
//!   destroyed by machine crashes (the crash-attributed share is
//!   broken out in [`SchedMetrics::crash_lost`]),
//! * **checkpoint overhead** — CPU spent writing checkpoints (including
//!   writes aborted by an eviction or lost to a crash).
//!
//! The invariant `delivered == goodput + wasted + checkpoint_overhead`
//! ([`SchedMetrics::accounting_residual`]) is the scheduler's analogue
//! of [`nds_cluster::TaskOutcome::is_consistent`] and is enforced by the
//! workspace's invariant tests.
//!
//! Gang-scheduled runs ([`crate::gang::GangPolicy`]) additionally carry
//! co-allocation metrics in [`SchedMetrics::gang`]; the same
//! conservation invariant covers them (a gang's delivered CPU is the
//! sum over its members).

use crate::gang::GangStats;

/// Completion record for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// Arrival time of the job.
    pub arrival: f64,
    /// When its last task finished.
    pub completion: f64,
    /// Total CPU demand of the job.
    pub demand: f64,
}

impl JobRecord {
    /// Completion minus arrival.
    pub fn response_time(&self) -> f64 {
        self.completion - self.arrival
    }
}

/// Everything measured during one scheduler run.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedMetrics {
    /// Completion time of the last job.
    pub makespan: f64,
    /// Total CPU time granted to guest work (all segments).
    pub delivered: f64,
    /// CPU time that became completed-task progress.
    pub goodput: f64,
    /// CPU time destroyed by evictions or spent on migration setup.
    pub wasted: f64,
    /// CPU time spent writing checkpoints.
    pub checkpoint_overhead: f64,
    /// Owner arrivals that displaced a guest task.
    pub evictions: u64,
    /// Evictions resolved by suspending in place.
    pub suspensions: u64,
    /// Evictions resolved by killing the task.
    pub restarts: u64,
    /// Evictions resolved by migrating the task.
    pub migrations: u64,
    /// Tasks completed (across all jobs).
    pub completed_tasks: u64,
    /// Total demand of all jobs (== goodput when accounting balances).
    pub total_demand: f64,
    /// Task placements performed (initial + re-placements).
    pub placements: u64,
    /// Mean time tasks waited in the central queue per placement.
    pub mean_queue_wait: f64,
    /// Time-averaged count of available (idle, unoccupied) machines.
    pub mean_available_machines: f64,
    /// Co-allocation metrics (all zero unless the run used a
    /// [`crate::gang::GangPolicy`] other than `Off`).
    pub gang: GangStats,
    /// Per-job completion records, in submission order.
    pub jobs: Vec<JobRecord>,
    /// Machine crashes injected by the run's
    /// [`crate::failure::FailureModel`] (0 without one).
    pub crashes: u64,
    /// Guest progress destroyed by crashes — the crash-attributed
    /// share of [`SchedMetrics::wasted`], distinct from eviction
    /// losses.
    pub crash_lost: f64,
    /// Total machine-time spent down (crashed) across the pool.
    pub downtime: f64,
    /// Crash count per machine (empty without a failure model).
    pub crashes_by_machine: Vec<u64>,
}

impl SchedMetrics {
    /// `delivered - goodput - wasted - checkpoint_overhead`; zero (up to
    /// float round-off) when the accounting balances.
    pub fn accounting_residual(&self) -> f64 {
        self.delivered - self.goodput - self.wasted - self.checkpoint_overhead
    }

    /// Whether the work-conservation invariant holds to round-off.
    pub fn is_consistent(&self) -> bool {
        self.accounting_residual().abs() <= 1e-6 * self.delivered.max(1.0)
    }

    /// Fraction of delivered CPU that became goodput.
    pub fn goodput_fraction(&self) -> f64 {
        if self.delivered == 0.0 {
            0.0
        } else {
            self.goodput / self.delivered
        }
    }

    /// Mean job response time.
    pub fn mean_response_time(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(JobRecord::response_time).sum::<f64>() / self.jobs.len() as f64
    }

    /// Goodput per unit of makespan — useful work extracted from the
    /// pool per time unit.
    pub fn goodput_rate(&self) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.goodput / self.makespan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SchedMetrics {
        SchedMetrics {
            makespan: 100.0,
            delivered: 90.0,
            goodput: 80.0,
            wasted: 8.0,
            checkpoint_overhead: 2.0,
            evictions: 5,
            suspensions: 0,
            restarts: 3,
            migrations: 2,
            completed_tasks: 4,
            total_demand: 80.0,
            placements: 9,
            mean_queue_wait: 1.5,
            mean_available_machines: 3.2,
            gang: GangStats::default(),
            jobs: vec![
                JobRecord {
                    arrival: 0.0,
                    completion: 60.0,
                    demand: 40.0,
                },
                JobRecord {
                    arrival: 10.0,
                    completion: 100.0,
                    demand: 40.0,
                },
            ],
            crashes: 0,
            crash_lost: 0.0,
            downtime: 0.0,
            crashes_by_machine: Vec::new(),
        }
    }

    #[test]
    fn residual_balances() {
        let m = sample();
        assert_eq!(m.accounting_residual(), 0.0);
        assert!(m.is_consistent());
        assert!((m.goodput_fraction() - 80.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn inconsistency_detected() {
        let mut m = sample();
        m.wasted = 0.0;
        assert!(!m.is_consistent());
    }

    #[test]
    fn response_times() {
        let m = sample();
        assert_eq!(m.jobs[0].response_time(), 60.0);
        assert_eq!(m.jobs[1].response_time(), 90.0);
        assert_eq!(m.mean_response_time(), 75.0);
        assert!((m.goodput_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_divisions_are_safe() {
        let mut m = sample();
        m.delivered = 0.0;
        m.makespan = 0.0;
        m.jobs.clear();
        assert_eq!(m.goodput_fraction(), 0.0);
        assert_eq!(m.goodput_rate(), 0.0);
        assert_eq!(m.mean_response_time(), 0.0);
    }
}
