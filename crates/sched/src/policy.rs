//! Task-placement policies.
//!
//! When the central queue has work and the pool has available machines,
//! a [`PlacementPolicy`] picks where the next task lands. The candidates
//! carry the pool's probe-style load estimates (see
//! [`crate::pool::UtilizationEstimator`]), so policies can be load-aware
//! without any global knowledge a real scheduler would lack.

use nds_stats::rng::Xoshiro256StarStar;

/// One available machine as seen by a placement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateMachine {
    /// Machine index in the pool.
    pub machine: usize,
    /// The pool's current estimate of this machine's owner utilization
    /// (0 = believed idle, 1 = believed saturated).
    pub load_estimate: f64,
}

/// Chooses a machine for the next task.
///
/// `choose` receives a non-empty candidate slice sorted by machine index
/// and returns an index **into the slice**. Policies may keep state
/// (e.g. a round-robin cursor) between calls.
pub trait PlacementPolicy {
    /// Short stable name for tables and CLI flags.
    fn name(&self) -> &'static str;

    /// Pick one of `candidates` (guaranteed non-empty).
    fn choose(&mut self, candidates: &[CandidateMachine], rng: &mut Xoshiro256StarStar) -> usize;
}

/// Uniformly random placement — the baseline a real scheduler must beat.
#[derive(Debug, Default)]
pub struct RandomPlacement;

impl PlacementPolicy for RandomPlacement {
    fn name(&self) -> &'static str {
        "random"
    }

    fn choose(&mut self, candidates: &[CandidateMachine], rng: &mut Xoshiro256StarStar) -> usize {
        rng.next_bounded(candidates.len() as u64) as usize
    }
}

/// Cycle through machine indices, skipping unavailable ones.
#[derive(Debug, Default)]
pub struct RoundRobinPlacement {
    next_machine: usize,
}

impl PlacementPolicy for RoundRobinPlacement {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn choose(&mut self, candidates: &[CandidateMachine], _rng: &mut Xoshiro256StarStar) -> usize {
        // First candidate at or after the cursor, wrapping to the front.
        let pick = candidates
            .iter()
            .position(|c| c.machine >= self.next_machine)
            .unwrap_or(0);
        self.next_machine = candidates[pick].machine + 1;
        pick
    }
}

/// Send the task to the machine with the lowest estimated owner
/// utilization (ties broken by machine index).
#[derive(Debug, Default)]
pub struct LeastLoadedPlacement;

impl PlacementPolicy for LeastLoadedPlacement {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn choose(&mut self, candidates: &[CandidateMachine], _rng: &mut Xoshiro256StarStar) -> usize {
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            if c.load_estimate < candidates[best].load_estimate {
                best = i;
            }
        }
        best
    }
}

/// Value-type selector for the built-in policies, convenient for sweeps
/// and config structs (policies themselves are stateful objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementKind {
    /// [`RandomPlacement`].
    Random,
    /// [`RoundRobinPlacement`].
    RoundRobin,
    /// [`LeastLoadedPlacement`].
    LeastLoaded,
}

impl PlacementKind {
    /// Every built-in policy, in sweep order.
    pub const ALL: [PlacementKind; 3] = [
        PlacementKind::Random,
        PlacementKind::RoundRobin,
        PlacementKind::LeastLoaded,
    ];

    /// Short stable name matching the policy's own.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Random => "random",
            Self::RoundRobin => "round-robin",
            Self::LeastLoaded => "least-loaded",
        }
    }

    /// Parse a CLI-style name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Instantiate a fresh policy object.
    pub fn build(&self) -> Box<dyn PlacementPolicy> {
        match self {
            Self::Random => Box::new(RandomPlacement),
            Self::RoundRobin => Box::new(RoundRobinPlacement::default()),
            Self::LeastLoaded => Box::new(LeastLoadedPlacement),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(specs: &[(usize, f64)]) -> Vec<CandidateMachine> {
        specs
            .iter()
            .map(|&(machine, load_estimate)| CandidateMachine {
                machine,
                load_estimate,
            })
            .collect()
    }

    #[test]
    fn random_stays_in_bounds_and_covers() {
        let mut p = RandomPlacement;
        let mut rng = Xoshiro256StarStar::new(1);
        let c = cands(&[(0, 0.1), (3, 0.2), (7, 0.3)]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let i = p.choose(&c, &mut rng);
            assert!(i < c.len());
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all candidates eventually chosen");
    }

    #[test]
    fn round_robin_cycles_over_machine_ids() {
        let mut p = RoundRobinPlacement::default();
        let mut rng = Xoshiro256StarStar::new(1);
        let c = cands(&[(0, 0.0), (2, 0.0), (5, 0.0)]);
        let picks: Vec<usize> = (0..6).map(|_| c[p.choose(&c, &mut rng)].machine).collect();
        assert_eq!(picks, vec![0, 2, 5, 0, 2, 5]);
    }

    #[test]
    fn round_robin_skips_missing_machines() {
        let mut p = RoundRobinPlacement::default();
        let mut rng = Xoshiro256StarStar::new(1);
        // Machine 1 disappears between calls; cursor moves past it.
        let c1 = cands(&[(0, 0.0), (1, 0.0)]);
        assert_eq!(c1[p.choose(&c1, &mut rng)].machine, 0);
        let c2 = cands(&[(3, 0.0), (9, 0.0)]);
        assert_eq!(c2[p.choose(&c2, &mut rng)].machine, 3);
    }

    #[test]
    fn least_loaded_picks_minimum_with_stable_ties() {
        let mut p = LeastLoadedPlacement;
        let mut rng = Xoshiro256StarStar::new(1);
        let c = cands(&[(0, 0.3), (1, 0.05), (2, 0.05), (3, 0.2)]);
        // Minimum is shared by machines 1 and 2; the earliest wins.
        assert_eq!(c[p.choose(&c, &mut rng)].machine, 1);
    }

    #[test]
    fn kind_round_trips_names() {
        for kind in PlacementKind::ALL {
            assert_eq!(PlacementKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(PlacementKind::parse("nope"), None);
    }
}
