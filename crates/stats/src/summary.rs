//! Online (single-pass) summary statistics.

/// Welford's online algorithm for mean/variance plus min/max tracking.
///
/// Numerically stable for long simulation runs; mergeable so per-thread
/// partial summaries can be combined.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Incorporate one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another summary into this one (Chan et al. parallel update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert!(s.min().is_infinite());
        assert!(s.max().is_infinite());
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn known_small_sample() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance (n-1 denominator) of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0)
            .collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &data[..400] {
            left.push(x);
        }
        for &x in &data[400..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Welford must not catastrophically cancel for large offsets.
        let mut s = RunningStats::new();
        let base = 1e9;
        for x in [4.0, 7.0, 13.0, 16.0] {
            s.push(base + x);
        }
        assert!((s.mean() - (base + 10.0)).abs() < 1e-3);
        assert!((s.variance() - 30.0).abs() < 1e-3, "var {}", s.variance());
    }
}
