//! Student-t quantiles for confidence intervals.
//!
//! The batch-means procedure needs the two-sided critical value
//! `t_{df, 1 - alpha/2}`. We use an exact small table for the common
//! 90/95/99% levels at the paper's df = 19 (20 batches), plus Hill's
//! asymptotic inversion for arbitrary `(df, p)` pairs.

use crate::special::inverse_normal_cdf;

/// Upper quantile `t` such that `P(T_df <= t) = p`.
///
/// Uses Hill (1970)'s approximation refined from the normal quantile;
/// accurate to better than 1e-3 for `df >= 2`, which is ample for
/// simulation confidence intervals. `df` must be >= 1 and `p` in (0, 1).
pub fn t_quantile(df: u32, p: f64) -> f64 {
    assert!(df >= 1, "t_quantile requires df >= 1");
    assert!(p > 0.0 && p < 1.0, "t_quantile requires p in (0,1)");
    if p == 0.5 {
        return 0.0;
    }
    if p < 0.5 {
        return -t_quantile(df, 1.0 - p);
    }
    if df == 1 {
        // Exact: Cauchy quantile.
        return (std::f64::consts::PI * (p - 0.5)).tan();
    }
    if df == 2 {
        // Exact closed form for df = 2.
        let a = 2.0 * p - 1.0;
        return a * (2.0 / (1.0 - a * a)).sqrt();
    }
    // Cornish–Fisher style expansion around the normal quantile.
    let z = inverse_normal_cdf(p);
    let g1 = (z.powi(3) + z) / 4.0;
    let g2 = (5.0 * z.powi(5) + 16.0 * z.powi(3) + 3.0 * z) / 96.0;
    let g3 = (3.0 * z.powi(7) + 19.0 * z.powi(5) + 17.0 * z.powi(3) - 15.0 * z) / 384.0;
    let g4 = (79.0 * z.powi(9) + 776.0 * z.powi(7) + 1482.0 * z.powi(5)
        - 1920.0 * z.powi(3)
        - 945.0 * z)
        / 92_160.0;
    let d = df as f64;
    z + g1 / d + g2 / (d * d) + g3 / (d * d * d) + g4 / (d * d * d * d)
}

/// Two-sided critical value for a `confidence` (e.g. 0.90) interval
/// with `df` degrees of freedom: `t_{df, 1 - alpha/2}`.
pub fn t_critical(df: u32, confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    t_quantile(df, 1.0 - (1.0 - confidence) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn median_is_zero() {
        for df in [1, 2, 5, 19, 100] {
            assert_eq!(t_quantile(df, 0.5), 0.0);
        }
    }

    #[test]
    fn symmetry() {
        for df in [2u32, 5, 19] {
            for p in [0.9, 0.95, 0.975] {
                close(t_quantile(df, p), -t_quantile(df, 1.0 - p), 1e-9);
            }
        }
    }

    #[test]
    fn df1_cauchy_exact() {
        // t_{1, 0.975} = tan(pi * 0.475) = 12.7062...
        close(t_quantile(1, 0.975), 12.706_2, 1e-3);
        close(t_quantile(1, 0.95), 6.313_8, 1e-3);
    }

    #[test]
    fn df2_exact() {
        close(t_quantile(2, 0.975), 4.302_7, 1e-3);
        close(t_quantile(2, 0.95), 2.920_0, 1e-3);
    }

    #[test]
    fn table_values() {
        // Standard t-table entries.
        close(t_quantile(5, 0.975), 2.570_6, 2e-3);
        close(t_quantile(10, 0.975), 2.228_1, 2e-3);
        close(t_quantile(19, 0.95), 1.729_1, 2e-3); // paper's 90% CI, 20 batches
        close(t_quantile(19, 0.975), 2.093_0, 2e-3);
        close(t_quantile(30, 0.975), 2.042_3, 2e-3);
        close(t_quantile(120, 0.975), 1.979_9, 2e-3);
    }

    #[test]
    fn approaches_normal_for_large_df() {
        close(t_quantile(100_000, 0.975), 1.959_96, 1e-3);
    }

    #[test]
    fn critical_value_matches_quantile() {
        close(t_critical(19, 0.90), t_quantile(19, 0.95), 1e-12);
        close(t_critical(19, 0.95), t_quantile(19, 0.975), 1e-12);
    }

    #[test]
    #[should_panic(expected = "df >= 1")]
    fn rejects_zero_df() {
        t_quantile(0, 0.9);
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0,1)")]
    fn rejects_bad_confidence() {
        t_critical(19, 1.0);
    }
}
