//! Autocorrelation diagnostics for batch-means validity.
//!
//! Batch means are only approximately iid; if batches are too small the
//! lag-1 autocorrelation of the batch-mean sequence stays high and the
//! confidence interval understates the variance. The standard check
//! (e.g. Law & Kelton) is to grow the batch size until the lag-1
//! autocorrelation of the batch means is negligible. This module
//! supplies the estimator and the check.

use crate::error::StatsError;

/// Sample autocorrelation of `data` at the given lag (biased,
/// normalized by the lag-0 autocovariance).
pub fn autocorrelation(data: &[f64], lag: usize) -> Result<f64, StatsError> {
    if lag == 0 {
        return Ok(1.0);
    }
    if data.len() < lag + 2 {
        return Err(StatsError::InsufficientData {
            needed: lag + 2,
            got: data.len(),
        });
    }
    let n = data.len();
    let mean = data.iter().sum::<f64>() / n as f64;
    let denom: f64 = data.iter().map(|x| (x - mean) * (x - mean)).sum();
    if denom == 0.0 {
        // A constant series: define the autocorrelation as 0 so the
        // batch-means check treats it as uncorrelated.
        return Ok(0.0);
    }
    let num: f64 = (0..n - lag)
        .map(|i| (data[i] - mean) * (data[i + lag] - mean))
        .sum();
    Ok(num / denom)
}

/// Verdict of the batch-means independence diagnostic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchDiagnostic {
    /// Lag-1 autocorrelation of the batch means.
    pub lag1: f64,
    /// The acceptance threshold used.
    pub threshold: f64,
    /// Whether the batch means look independent enough.
    pub acceptable: bool,
}

/// Check a batch-mean sequence for residual correlation. The customary
/// threshold is `|rho_1| <= 2/sqrt(B)` (approximately two standard
/// errors of an iid autocorrelation estimate).
pub fn check_batch_independence(batch_means: &[f64]) -> Result<BatchDiagnostic, StatsError> {
    let lag1 = autocorrelation(batch_means, 1)?;
    let threshold = 2.0 / (batch_means.len() as f64).sqrt();
    Ok(BatchDiagnostic {
        lag1,
        threshold,
        acceptable: lag1.abs() <= threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{Distribution, Exponential};
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn lag_zero_is_one() {
        assert_eq!(autocorrelation(&[1.0, 2.0, 3.0], 0).unwrap(), 1.0);
    }

    #[test]
    fn iid_series_has_small_lag1() {
        let mut rng = Xoshiro256StarStar::new(1);
        let d = Exponential::with_mean(1.0).unwrap();
        let data: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        let rho = autocorrelation(&data, 1).unwrap();
        assert!(rho.abs() < 0.06, "rho {rho}");
        let diag = check_batch_independence(&data).unwrap();
        assert!(diag.acceptable);
    }

    #[test]
    fn ar1_series_detected() {
        // x_t = 0.9 x_{t-1} + noise: strongly autocorrelated.
        let mut rng = Xoshiro256StarStar::new(2);
        let mut x = 0.0;
        let data: Vec<f64> = (0..2000)
            .map(|_| {
                x = 0.9 * x + rng.next_f64() - 0.5;
                x
            })
            .collect();
        let rho = autocorrelation(&data, 1).unwrap();
        assert!(rho > 0.8, "rho {rho}");
        assert!(!check_batch_independence(&data).unwrap().acceptable);
    }

    #[test]
    fn alternating_series_negative() {
        let data: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let rho = autocorrelation(&data, 1).unwrap();
        assert!(rho < -0.9);
    }

    #[test]
    fn constant_series_defined_as_zero() {
        let data = vec![5.0; 50];
        assert_eq!(autocorrelation(&data, 1).unwrap(), 0.0);
        assert!(check_batch_independence(&data).unwrap().acceptable);
    }

    #[test]
    fn too_short_errors() {
        assert!(autocorrelation(&[1.0, 2.0], 1).is_err());
        assert!(autocorrelation(&[1.0, 2.0, 3.0], 5).is_err());
    }
}
