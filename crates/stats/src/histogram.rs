//! Fixed-bin histograms with quantile estimation.

use crate::error::StatsError;

/// A histogram over `[low, high)` with equal-width bins plus underflow
/// and overflow counters.
///
/// Used by the simulators to record task-time and job-time distributions
/// (the model extension that goes beyond the paper's means).
#[derive(Debug, Clone)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram over `[low, high)` with `bins >= 1` bins.
    pub fn new(low: f64, high: f64, bins: usize) -> Result<Self, StatsError> {
        if !(low.is_finite() && high.is_finite()) || low >= high {
            return Err(StatsError::InvalidRange { low, high });
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        Ok(Self {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        })
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let width = (self.high - self.low) / self.bins.len() as f64;
            let idx = ((x - self.low) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `[start, end)` of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.high - self.low) / self.bins.len() as f64;
        (
            self.low + i as f64 * width,
            self.low + (i + 1) as f64 * width,
        )
    }

    /// Approximate quantile `q in [0,1]` by linear interpolation within
    /// the containing bin. Under/overflow mass clamps to the range ends.
    pub fn quantile(&self, q: f64) -> Result<f64, StatsError> {
        if self.count == 0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1]");
        let target = q * self.count as f64;
        let mut cum = self.underflow as f64;
        if target <= cum {
            return Ok(self.low);
        }
        for (i, &c) in self.bins.iter().enumerate() {
            let next = cum + c as f64;
            if target <= next && c > 0 {
                let (start, end) = self.bin_bounds(i);
                let frac = (target - cum) / c as f64;
                return Ok(start + frac * (end - start));
            }
            cum = next;
        }
        Ok(self.high)
    }

    /// Fraction of observations at or above `x` (bin-resolution accuracy).
    pub fn tail_fraction(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut above = self.overflow;
        for (i, &c) in self.bins.iter().enumerate() {
            let (start, _) = self.bin_bounds(i);
            if start >= x {
                above += c;
            }
        }
        above as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_construction() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn bins_receive_values() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for x in [0.5, 1.5, 1.7, 9.9] {
            h.record(x);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(-0.1);
        h.record(1.0); // boundary: goes to overflow ([low, high))
        h.record(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn bin_bounds_cover_range() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_bounds(0), (0.0, 2.0));
        assert_eq!(h.bin_bounds(4), (8.0, 10.0));
    }

    #[test]
    fn quantiles_of_uniform_grid() {
        let mut h = Histogram::new(0.0, 100.0, 100).unwrap();
        for i in 0..1000 {
            h.record(i as f64 / 10.0);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 1.5, "median {median}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 90.0).abs() < 1.5, "p90 {p90}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.0);
    }

    #[test]
    fn quantile_on_empty_errors() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!(h.quantile(0.5).is_err());
    }

    #[test]
    fn tail_fraction_counts_upper_mass() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for x in [1.0, 2.0, 8.5, 9.5, 20.0] {
            h.record(x);
        }
        // Mass at >= 8.0: 8.5, 9.5 and the overflow 20.0 = 3 of 5.
        assert!((h.tail_fraction(8.0) - 0.6).abs() < 1e-12);
        assert_eq!(h.tail_fraction(0.0), 1.0);
    }
}
