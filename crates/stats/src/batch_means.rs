//! Batch-means confidence intervals.
//!
//! The paper (§2.2): "All results have confidence intervals of 1 percent
//! or less at a 90 percent confidence level. Confidence intervals are
//! calculated using batch means \[Kobayashi 1978\] with 20 batches per
//! simulation run and a batch size of 1000 samples."
//!
//! [`BatchMeans`] reproduces that procedure: observations are grouped
//! into fixed-size batches, the batch means are treated as approximately
//! iid normal, and a Student-t interval is formed over them.

use crate::error::StatsError;
use crate::student_t::t_critical;
use crate::summary::RunningStats;

/// The paper's batch count (20 batches per run).
pub const PAPER_BATCHES: usize = 20;
/// The paper's batch size (1000 samples per batch).
pub const PAPER_BATCH_SIZE: usize = 1000;
/// The paper's confidence level (90%).
pub const PAPER_CONFIDENCE: f64 = 0.90;

/// Accumulates observations into fixed-size batches and reports a
/// Student-t confidence interval over the batch means.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: usize,
    current: RunningStats,
    batch_means: Vec<f64>,
    overall: RunningStats,
}

impl BatchMeans {
    /// Create a collector with the given batch size (>= 1).
    pub fn new(batch_size: usize) -> Result<Self, StatsError> {
        if batch_size == 0 {
            return Err(StatsError::InvalidParameter {
                name: "batch_size",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        Ok(Self {
            batch_size,
            current: RunningStats::new(),
            batch_means: Vec::new(),
            overall: RunningStats::new(),
        })
    }

    /// Collector configured exactly as in the paper:
    /// 1000-sample batches (and callers typically run 20 batches).
    pub fn paper_configuration() -> Self {
        Self::new(PAPER_BATCH_SIZE).expect("paper batch size is valid")
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        self.overall.push(x);
        if self.current.count() as usize >= self.batch_size {
            self.batch_means.push(self.current.mean());
            self.current = RunningStats::new();
        }
    }

    /// Number of completed batches.
    pub fn completed_batches(&self) -> usize {
        self.batch_means.len()
    }

    /// Total observations pushed (including any partial batch).
    pub fn observations(&self) -> u64 {
        self.overall.count()
    }

    /// Grand mean over all observations.
    pub fn grand_mean(&self) -> f64 {
        self.overall.mean()
    }

    /// The completed batch means.
    pub fn batch_means(&self) -> &[f64] {
        &self.batch_means
    }

    /// Whether at least `PAPER_BATCHES` batches have completed.
    pub fn paper_run_complete(&self) -> bool {
        self.batch_means.len() >= PAPER_BATCHES
    }

    /// Produce the confidence-interval report at the given level.
    ///
    /// Requires at least two completed batches.
    pub fn report(&self, confidence: f64) -> Result<BatchMeansReport, StatsError> {
        let b = self.batch_means.len();
        if b < 2 {
            return Err(StatsError::InsufficientData { needed: 2, got: b });
        }
        let mut stats = RunningStats::new();
        for &m in &self.batch_means {
            stats.push(m);
        }
        let t = t_critical((b - 1) as u32, confidence);
        let half_width = t * stats.std_error();
        Ok(BatchMeansReport {
            mean: stats.mean(),
            half_width,
            confidence,
            batches: b,
            batch_size: self.batch_size,
        })
    }

    /// Convenience: the paper's 90% interval.
    pub fn paper_report(&self) -> Result<BatchMeansReport, StatsError> {
        self.report(PAPER_CONFIDENCE)
    }
}

/// A batch-means confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMeansReport {
    /// Mean of the batch means (the point estimate).
    pub mean: f64,
    /// Half-width of the confidence interval.
    pub half_width: f64,
    /// Confidence level used (e.g. 0.90).
    pub confidence: f64,
    /// Number of batches the interval is based on.
    pub batches: usize,
    /// Samples per batch.
    pub batch_size: usize,
}

impl BatchMeansReport {
    /// Relative half-width `half_width / |mean|` (infinite if mean = 0).
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }

    /// The paper's acceptance criterion: relative half-width <= 1%.
    pub fn meets_paper_precision(&self) -> bool {
        self.relative_half_width() <= 0.01
    }

    /// Whether `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.half_width
    }

    /// Interval lower bound.
    pub fn lower(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Interval upper bound.
    pub fn upper(&self) -> f64 {
        self.mean + self.half_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{Distribution, Exponential};
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn rejects_zero_batch_size() {
        assert!(BatchMeans::new(0).is_err());
    }

    #[test]
    fn batches_complete_at_exact_boundaries() {
        let mut bm = BatchMeans::new(10).unwrap();
        for i in 0..35 {
            bm.push(i as f64);
        }
        assert_eq!(bm.completed_batches(), 3);
        assert_eq!(bm.observations(), 35);
        // First batch mean = mean of 0..10 = 4.5
        assert!((bm.batch_means()[0] - 4.5).abs() < 1e-12);
        assert!((bm.batch_means()[1] - 14.5).abs() < 1e-12);
    }

    #[test]
    fn report_requires_two_batches() {
        let mut bm = BatchMeans::new(100).unwrap();
        for i in 0..150 {
            bm.push(i as f64);
        }
        assert_eq!(bm.completed_batches(), 1);
        assert!(bm.report(0.9).is_err());
    }

    #[test]
    fn deterministic_data_zero_width() {
        let mut bm = BatchMeans::new(5).unwrap();
        for _ in 0..50 {
            bm.push(7.0);
        }
        let r = bm.report(0.9).unwrap();
        assert!((r.mean - 7.0).abs() < 1e-12);
        assert!(r.half_width < 1e-12);
        assert!(r.meets_paper_precision());
        assert!(r.contains(7.0));
        assert!(!r.contains(7.1));
    }

    #[test]
    fn interval_covers_true_mean_for_iid_data() {
        // 90% CI should cover the true mean in roughly 90% of replications;
        // check coverage is at least 80% over 200 replications.
        let mut covered = 0;
        let dist = Exponential::with_mean(5.0).unwrap();
        for rep in 0..200 {
            let mut rng = Xoshiro256StarStar::new(1000 + rep);
            let mut bm = BatchMeans::new(200).unwrap();
            for _ in 0..200 * 20 {
                bm.push(dist.sample(&mut rng));
            }
            let r = bm.report(0.9).unwrap();
            if r.contains(5.0) {
                covered += 1;
            }
        }
        assert!(covered >= 160, "coverage too low: {covered}/200");
    }

    #[test]
    fn paper_configuration_constants() {
        let mut bm = BatchMeans::paper_configuration();
        assert!(!bm.paper_run_complete());
        for _ in 0..PAPER_BATCHES * PAPER_BATCH_SIZE {
            bm.push(1.0);
        }
        assert!(bm.paper_run_complete());
        assert_eq!(bm.completed_batches(), PAPER_BATCHES);
        let r = bm.paper_report().unwrap();
        assert_eq!(r.confidence, PAPER_CONFIDENCE);
        assert_eq!(r.batches, PAPER_BATCHES);
        assert_eq!(r.batch_size, PAPER_BATCH_SIZE);
    }

    #[test]
    fn report_bounds_consistent() {
        let mut bm = BatchMeans::new(10).unwrap();
        let mut rng = Xoshiro256StarStar::new(4);
        let dist = Exponential::with_mean(2.0).unwrap();
        for _ in 0..500 {
            bm.push(dist.sample(&mut rng));
        }
        let r = bm.report(0.95).unwrap();
        assert!(r.lower() <= r.mean && r.mean <= r.upper());
        assert!((r.upper() - r.lower() - 2.0 * r.half_width).abs() < 1e-12);
        assert!(r.contains(r.mean));
    }

    #[test]
    fn grand_mean_tracks_all_observations() {
        let mut bm = BatchMeans::new(4).unwrap();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
            bm.push(x);
        }
        assert!((bm.grand_mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn relative_half_width_of_zero_mean() {
        let mut bm = BatchMeans::new(2).unwrap();
        for x in [1.0, -1.0, 1.0, -1.0] {
            bm.push(x);
        }
        let r = bm.report(0.9).unwrap();
        assert_eq!(r.mean, 0.0);
        assert!(r.relative_half_width().is_infinite());
        assert!(!r.meets_paper_precision());
    }
}
