//! Expected extremes of iid standard normals, computed exactly.
//!
//! `E[max of W] = ∫ x · W · Φ(x)^{W-1} · φ(x) dx`, evaluated with
//! composite Gauss–Legendre quadrature over `[-9, 9]` (the integrand is
//! negligible outside). Used to calibrate the model crate's O(1)
//! extreme-value approximations; Blom's formula is within ~1% of these
//! values, and this module quantifies exactly where.

use crate::special::standard_normal_cdf;

/// Standard normal density.
fn phi(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// 16-point Gauss–Legendre nodes and weights on [-1, 1], kept
/// verbatim from the published table.
#[allow(clippy::excessive_precision)]
const GL_NODES: [f64; 8] = [
    0.095_012_509_837_637_44,
    0.281_603_550_779_258_91,
    0.458_016_777_657_227_4,
    0.617_876_244_402_643_7,
    0.755_404_408_355_003_0,
    0.865_631_202_387_831_7,
    0.944_575_023_073_232_6,
    0.989_400_934_991_649_9,
];
const GL_WEIGHTS: [f64; 8] = [
    0.189_450_610_455_068_5,
    0.182_603_415_044_923_6,
    0.169_156_519_395_002_54,
    0.149_595_988_816_576_73,
    0.124_628_971_255_533_87,
    0.095_158_511_682_492_78,
    0.062_253_523_938_647_89,
    0.027_152_459_411_754_095,
];

/// Integrate `f` over `[a, b]` with composite 16-point Gauss–Legendre
/// over `panels` subintervals.
fn integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, panels: usize) -> f64 {
    assert!(panels >= 1 && b > a, "bad integration setup");
    let h = (b - a) / panels as f64;
    let mut total = 0.0;
    for i in 0..panels {
        let mid = a + (i as f64 + 0.5) * h;
        let half = 0.5 * h;
        let mut acc = 0.0;
        for (node, weight) in GL_NODES.iter().zip(&GL_WEIGHTS) {
            acc += weight * (f(mid + half * node) + f(mid - half * node));
        }
        total += acc * half;
    }
    total
}

/// Exact (to quadrature accuracy ~1e-10) expected maximum of `w` iid
/// standard normal variates.
pub fn expected_normal_max(w: u32) -> f64 {
    assert!(w >= 1, "need at least one variate");
    if w == 1 {
        return 0.0;
    }
    let wf = f64::from(w);
    integrate(
        |x| x * wf * standard_normal_cdf(x).powf(wf - 1.0) * phi(x),
        -9.0,
        9.0,
        72,
    )
}

/// Exact expected minimum (by symmetry, `-expected_normal_max`).
pub fn expected_normal_min(w: u32) -> f64 {
    -expected_normal_max(w)
}

/// Variance of the maximum of `w` iid standard normals.
pub fn normal_max_variance(w: u32) -> f64 {
    assert!(w >= 1, "need at least one variate");
    if w == 1 {
        return 1.0;
    }
    let wf = f64::from(w);
    let mean = expected_normal_max(w);
    let second = integrate(
        |x| x * x * wf * standard_normal_cdf(x).powf(wf - 1.0) * phi(x),
        -9.0,
        9.0,
        72,
    );
    second - mean * mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn known_table_values() {
        // Classical tables of E[max of W standard normals].
        close(expected_normal_max(1), 0.0, 1e-12);
        close(expected_normal_max(2), 0.564_190, 1e-4);
        close(expected_normal_max(3), 0.846_284, 1e-4);
        close(expected_normal_max(5), 1.162_964, 1e-4);
        close(expected_normal_max(10), 1.538_753, 1e-4);
        close(expected_normal_max(100), 2.507_594, 1e-4);
    }

    #[test]
    fn monotone_increasing_in_w() {
        let mut prev = -1.0;
        for w in [1u32, 2, 3, 5, 10, 30, 100, 300, 1000] {
            let m = expected_normal_max(w);
            assert!(m > prev, "not monotone at W={w}");
            prev = m;
        }
    }

    #[test]
    fn symmetry_of_min() {
        for w in [2u32, 10, 50] {
            close(expected_normal_min(w), -expected_normal_max(w), 1e-12);
        }
    }

    #[test]
    fn variance_shrinks_with_w() {
        // Var of the max decreases as W grows (extremes concentrate).
        close(normal_max_variance(1), 1.0, 1e-12);
        let v2 = normal_max_variance(2);
        let v100 = normal_max_variance(100);
        // Known: Var[max of 2] = 1 - 1/pi ≈ 0.6817.
        close(v2, 1.0 - 1.0 / std::f64::consts::PI, 1e-4);
        assert!(v100 < v2);
        assert!(v100 > 0.0);
    }

    #[test]
    fn blom_accuracy_quantified() {
        // Blom's formula runs ~1.4% high at W = 5 and within ~0.5% for
        // W >= 10 — exactly the band the model crate's approximations
        // assume.
        use crate::special::inverse_normal_cdf;
        for (w, tol) in [
            (5u32, 0.016),
            (10, 0.007),
            (50, 0.005),
            (100, 0.005),
            (500, 0.006),
        ] {
            let exact = expected_normal_max(w);
            let blom = inverse_normal_cdf((f64::from(w) - 0.375) / (f64::from(w) + 0.25));
            assert!(
                (blom - exact).abs() / exact < tol,
                "W={w}: blom {blom} vs exact {exact}"
            );
        }
    }

    #[test]
    fn quadrature_integrates_density_to_one() {
        let total = integrate(phi, -9.0, 9.0, 72);
        close(total, 1.0, 1e-10);
    }

    #[test]
    #[should_panic(expected = "need at least one")]
    fn rejects_zero() {
        expected_normal_max(0);
    }
}
