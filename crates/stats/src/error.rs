//! Error type shared by the statistics substrate.

use std::fmt;

/// Errors produced while constructing or using statistical objects.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be in (0, 1]"`.
        constraint: &'static str,
    },
    /// Too few samples to compute the requested statistic.
    InsufficientData {
        /// How many samples are required.
        needed: usize,
        /// How many samples were available.
        got: usize,
    },
    /// A histogram was constructed with inconsistent bounds.
    InvalidRange {
        /// Lower bound supplied.
        low: f64,
        /// Upper bound supplied.
        high: f64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            StatsError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: needed {needed} samples, got {got}")
            }
            StatsError::InvalidRange { low, high } => {
                write!(f, "invalid range: low {low} must be < high {high}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let e = StatsError::InvalidParameter {
            name: "rate",
            value: -1.0,
            constraint: "must be > 0",
        };
        assert_eq!(e.to_string(), "invalid parameter rate = -1: must be > 0");
    }

    #[test]
    fn display_insufficient_data() {
        let e = StatsError::InsufficientData { needed: 2, got: 0 };
        assert_eq!(e.to_string(), "insufficient data: needed 2 samples, got 0");
    }

    #[test]
    fn display_invalid_range() {
        let e = StatsError::InvalidRange {
            low: 3.0,
            high: 1.0,
        };
        assert_eq!(e.to_string(), "invalid range: low 3 must be < high 1");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<StatsError>();
    }
}
