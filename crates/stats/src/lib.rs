//! # nds-stats — statistics substrate for the NDS reproduction
//!
//! This crate provides everything the simulators and the analytical model
//! need that is "statistics shaped":
//!
//! * deterministic, splittable pseudo-random number generation
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256StarStar`], [`rng::StreamFactory`]),
//! * the service-time / think-time distributions used by the paper and its
//!   extensions ([`distributions`]),
//! * numerically careful special functions ([`special`]) shared with the
//!   analytical model crate,
//! * online summary statistics ([`summary::RunningStats`]),
//! * the batch-means confidence-interval procedure the paper cites from
//!   Kobayashi ([`batch_means`]), backed by Student-t quantiles
//!   ([`student_t`]),
//! * simple fixed-bin histograms ([`histogram`]).
//!
//! The paper (Leutenegger & Sun, SC'93) validates its analysis with a CSIM
//! simulation using "batch means with 20 batches per simulation run and a
//! batch size of 1000 samples" at a 90% confidence level; [`batch_means`]
//! reproduces exactly that procedure.

#![forbid(unsafe_code)]

pub mod autocorr;
pub mod batch_means;
pub mod distributions;
pub mod error;
pub mod histogram;
pub mod order_stats;
pub mod rng;
pub mod special;
pub mod student_t;
pub mod summary;

pub use batch_means::{BatchMeans, BatchMeansReport};
pub use distributions::{
    BoundedPareto, ClosedForm, Deterministic, Distribution, Erlang, Exponential, Geometric,
    Hyperexponential, Mixture, Shifted, UniformRange, Weibull,
};
pub use error::StatsError;
pub use histogram::Histogram;
pub use rng::{SplitMix64, StreamFactory, Xoshiro256StarStar};
pub use summary::RunningStats;
