//! Service-time and think-time distributions.
//!
//! The paper's discrete-time model uses a **geometric** owner think time
//! (mean `1/P`) and a **deterministic** owner service demand `O`. Its
//! stated future work ("typical processes experience a much larger
//! variance", citing Sauer & Chandy) motivates the higher-variance
//! families implemented here: [`Exponential`], [`Erlang`],
//! [`Hyperexponential`], and arbitrary [`Mixture`]s (used to model rare
//! long-running owner jobs). [`Weibull`] and [`BoundedPareto`] serve
//! the robustness extensions: machine lifetime (MTBF/MTTR) and
//! heavy-tailed trace demands respectively.

use crate::error::StatsError;
use crate::rng::Xoshiro256StarStar;

/// A closed-form sampling recipe equivalent to a distribution's
/// `sample` — same formula, same RNG consumption, bit-identical
/// draws. Hot loops that sample through `Arc<dyn Distribution>`
/// millions of times (the scheduler's owner think/use cycles) cache
/// this at setup and inline the draw, skipping the virtual call and
/// pointer chase per sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClosedForm {
    /// `-ln(u) / rate` with `u` from `next_f64_open` — exactly
    /// [`Exponential::sample`].
    Exponential {
        /// The rate parameter (mean `1/rate`).
        rate: f64,
    },
    /// A point mass: every draw returns `value` and consumes no
    /// randomness — exactly [`Deterministic::sample`].
    Deterministic {
        /// The constant value.
        value: f64,
    },
}

impl ClosedForm {
    /// Draw one sample; bit-identical to the originating
    /// distribution's `sample` on the same RNG state.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        match *self {
            ClosedForm::Exponential { rate } => -rng.next_f64_open().ln() / rate,
            ClosedForm::Deterministic { value } => value,
        }
    }
}

/// A sampleable, positively supported distribution with known moments.
///
/// All distributions in this workspace are cheap value types; sampling
/// takes the RNG explicitly so components can own independent streams.
pub trait Distribution: std::fmt::Debug + Send + Sync {
    /// Draw one sample.
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64;

    /// Expected value.
    fn mean(&self) -> f64;

    /// Variance.
    fn variance(&self) -> f64;

    /// Squared coefficient of variation `Var/Mean^2` (0 for deterministic).
    fn cv2(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance() / (m * m)
        }
    }

    /// A [`ClosedForm`] recipe drawing bit-identical samples, if this
    /// distribution has one (default: none).
    fn closed_form(&self) -> Option<ClosedForm> {
        None
    }
}

/// Point mass at `value` — the paper's owner service demand `O`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// A point mass at `value >= 0`.
    pub fn new(value: f64) -> Result<Self, StatsError> {
        if !value.is_finite() || value < 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "value",
                value,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(Self { value })
    }

    /// The constant returned by every sample.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Distribution for Deterministic {
    fn sample(&self, _rng: &mut Xoshiro256StarStar) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn closed_form(&self) -> Option<ClosedForm> {
        Some(ClosedForm::Deterministic { value: self.value })
    }
}

/// Exponential distribution with the given rate (mean `1/rate`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Exponential with `rate > 0`.
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { rate })
    }

    /// Exponential with the given mean (`mean > 0`).
    pub fn with_mean(mean: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and > 0",
            });
        }
        Self::new(1.0 / mean)
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        -rng.next_f64_open().ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn closed_form(&self) -> Option<ClosedForm> {
        Some(ClosedForm::Exponential { rate: self.rate })
    }
}

/// Geometric distribution on `{1, 2, 3, ...}`: number of Bernoulli(`p`)
/// trials up to and including the first success. Mean `1/p`.
///
/// This is exactly the paper's owner think time: "at each time unit the
/// owner requests the processor with probability P", so the gap between
/// the end of an owner burst and the next request is Geometric(P).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Geometric with success probability `p` in `(0, 1]`.
    pub fn new(p: f64) -> Result<Self, StatsError> {
        if !p.is_finite() || p <= 0.0 || p > 1.0 {
            return Err(StatsError::InvalidParameter {
                name: "p",
                value: p,
                constraint: "must be in (0, 1]",
            });
        }
        Ok(Self { p })
    }

    /// The per-trial success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draw an integer sample (1-based trial count).
    pub fn sample_int(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        // Inversion: ceil(ln(U) / ln(1-p)) with U in (0,1].
        let u = rng.next_f64_open();
        let x = (u.ln() / (1.0 - self.p).ln()).ceil();
        x.max(1.0) as u64
    }
}

impl Distribution for Geometric {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        self.sample_int(rng) as f64
    }

    fn mean(&self) -> f64 {
        1.0 / self.p
    }

    fn variance(&self) -> f64 {
        (1.0 - self.p) / (self.p * self.p)
    }
}

/// Erlang-`k` distribution (sum of `k` iid exponentials), CV² = 1/k.
///
/// Used to model owner demands *less* variable than exponential but not
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    k: u32,
    rate: f64,
}

impl Erlang {
    /// Erlang with `k >= 1` phases each of rate `rate > 0`.
    /// Mean is `k / rate`.
    pub fn new(k: u32, rate: f64) -> Result<Self, StatsError> {
        if k == 0 {
            return Err(StatsError::InvalidParameter {
                name: "k",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        if !rate.is_finite() || rate <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { k, rate })
    }

    /// Erlang-`k` with a target mean.
    pub fn with_mean(k: u32, mean: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and > 0",
            });
        }
        Self::new(k, k as f64 / mean)
    }

    /// Number of phases.
    pub fn phases(&self) -> u32 {
        self.k
    }
}

impl Distribution for Erlang {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        // Product-of-uniforms form avoids k separate ln calls.
        let mut prod = 1.0;
        for _ in 0..self.k {
            prod *= rng.next_f64_open();
        }
        -prod.ln() / self.rate
    }

    fn mean(&self) -> f64 {
        self.k as f64 / self.rate
    }

    fn variance(&self) -> f64 {
        self.k as f64 / (self.rate * self.rate)
    }
}

/// Two-phase hyperexponential distribution, CV² >= 1.
///
/// With probability `p1` the sample is Exp(`r1`), otherwise Exp(`r2`).
/// The `fit` constructor produces the standard *balanced-means* fit for a
/// target mean and CV², the textbook way (Sauer & Chandy) to model the
/// high-variance owner demands the paper flags as future work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hyperexponential {
    p1: f64,
    r1: f64,
    r2: f64,
}

impl Hyperexponential {
    /// Explicit two-phase construction: branch probability `p1 in (0,1)`,
    /// rates `r1, r2 > 0`.
    pub fn new(p1: f64, r1: f64, r2: f64) -> Result<Self, StatsError> {
        if !p1.is_finite() || p1 <= 0.0 || p1 >= 1.0 {
            return Err(StatsError::InvalidParameter {
                name: "p1",
                value: p1,
                constraint: "must be in (0, 1)",
            });
        }
        for (name, r) in [("r1", r1), ("r2", r2)] {
            if !r.is_finite() || r <= 0.0 {
                return Err(StatsError::InvalidParameter {
                    name,
                    value: r,
                    constraint: "must be finite and > 0",
                });
            }
        }
        Ok(Self { p1, r1, r2 })
    }

    /// Balanced-means fit: returns the H2 distribution with the requested
    /// `mean > 0` and `cv2 >= 1`, with `p1·(1/r1) = p2·(1/r2)`.
    pub fn fit(mean: f64, cv2: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and > 0",
            });
        }
        if !cv2.is_finite() || cv2 < 1.0 {
            return Err(StatsError::InvalidParameter {
                name: "cv2",
                value: cv2,
                constraint: "must be finite and >= 1 for a hyperexponential",
            });
        }
        if (cv2 - 1.0).abs() < 1e-12 {
            // Degenerates to exponential; emulate with two equal phases.
            let r = 1.0 / mean;
            return Self::new(0.5, r, r);
        }
        let root = ((cv2 - 1.0) / (cv2 + 1.0)).sqrt();
        let p1 = 0.5 * (1.0 + root);
        let r1 = 2.0 * p1 / mean;
        let r2 = 2.0 * (1.0 - p1) / mean;
        Self::new(p1, r1, r2)
    }

    /// Probability of drawing from the first phase.
    pub fn p1(&self) -> f64 {
        self.p1
    }
}

impl Distribution for Hyperexponential {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        let rate = if rng.bernoulli(self.p1) {
            self.r1
        } else {
            self.r2
        };
        -rng.next_f64_open().ln() / rate
    }

    fn mean(&self) -> f64 {
        self.p1 / self.r1 + (1.0 - self.p1) / self.r2
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        let second = 2.0 * (self.p1 / (self.r1 * self.r1) + (1.0 - self.p1) / (self.r2 * self.r2));
        second - m * m
    }
}

/// Continuous uniform on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformRange {
    low: f64,
    high: f64,
}

impl UniformRange {
    /// Uniform over `[low, high)` with `low < high`.
    pub fn new(low: f64, high: f64) -> Result<Self, StatsError> {
        if !(low.is_finite() && high.is_finite()) || low >= high {
            return Err(StatsError::InvalidRange { low, high });
        }
        Ok(Self { low, high })
    }
}

impl Distribution for UniformRange {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        self.low + (self.high - self.low) * rng.next_f64()
    }

    fn mean(&self) -> f64 {
        0.5 * (self.low + self.high)
    }

    fn variance(&self) -> f64 {
        let w = self.high - self.low;
        w * w / 12.0
    }
}

/// Bounded (truncated) Pareto on `[low, high)` with shape `alpha`.
///
/// The canonical heavy-tailed job-size model for datacenter traces:
/// most jobs are near `low`, a rare few approach `high`, and — unlike
/// the unbounded Pareto — every moment is finite, so trace generators
/// stay reproducible and summable. Sampling is by inverse CDF and
/// consumes exactly one uniform per draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    low: f64,
    high: f64,
}

impl BoundedPareto {
    /// Bounded Pareto with shape `alpha > 0` on `0 < low < high`.
    pub fn new(alpha: f64, low: f64, high: f64) -> Result<Self, StatsError> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must be finite and > 0",
            });
        }
        if !low.is_finite() || low <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "low",
                value: low,
                constraint: "must be finite and > 0",
            });
        }
        if !high.is_finite() || high <= low {
            return Err(StatsError::InvalidParameter {
                name: "high",
                value: high,
                constraint: "must be finite and > low",
            });
        }
        Ok(Self { alpha, low, high })
    }

    /// The tail index.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The lower support bound.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// The upper support bound.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Raw moment `E[X^k]`: the density is
    /// `α L^α x^(-α-1) / (1 - (L/H)^α)` on `[L, H]`, so the integral
    /// `∫ x^(k-α-1) dx` is logarithmic exactly at `α == k`.
    fn raw_moment(&self, k: f64) -> f64 {
        let (a, l, h) = (self.alpha, self.low, self.high);
        let norm = a * l.powf(a) / (1.0 - (l / h).powf(a));
        if (a - k).abs() < 1e-12 {
            norm * (h / l).ln() / l.powf(a - k)
        } else {
            norm * (h.powf(k - a) - l.powf(k - a)) / (k - a)
        }
    }
}

impl Distribution for BoundedPareto {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        // Inverse CDF: F(x) = (1 - (L/x)^α) / (1 - (L/H)^α). With
        // u in [0, 1) the radicand stays in ((L/H)^α, 1], so the
        // sample lands in [L, H) without clamping.
        let u = rng.next_f64();
        let scale = 1.0 - (self.low / self.high).powf(self.alpha);
        self.low / (1.0 - u * scale).powf(1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        self.raw_moment(1.0)
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        self.raw_moment(2.0) - m * m
    }
}

/// Weibull distribution with shape `k` and scale `λ`.
///
/// The standard lifetime model for machine failure processes: `k < 1`
/// gives infant-mortality (decreasing hazard), `k == 1` degenerates to
/// [`Exponential`], and `k > 1` gives wear-out (increasing hazard) —
/// exactly the MTBF/MTTR families a fault-injection model needs.
/// Sampling is by inverse CDF and consumes exactly one uniform per
/// draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Weibull with `shape > 0` and `scale > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
        if !shape.is_finite() || shape <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "shape",
                value: shape,
                constraint: "must be finite and > 0",
            });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "scale",
                value: scale,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { shape, scale })
    }

    /// Weibull with the given `shape > 0` and target `mean > 0`:
    /// solves `mean = scale · Γ(1 + 1/shape)` for the scale.
    pub fn with_mean(shape: f64, mean: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and > 0",
            });
        }
        if !shape.is_finite() || shape <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "shape",
                value: shape,
                constraint: "must be finite and > 0",
            });
        }
        let scale = mean / crate::special::ln_gamma(1.0 + 1.0 / shape).exp();
        Self::new(shape, scale)
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Raw moment `E[X^k] = λ^k · Γ(1 + k/shape)`.
    fn raw_moment(&self, k: f64) -> f64 {
        self.scale.powf(k) * crate::special::ln_gamma(1.0 + k / self.shape).exp()
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        // Inverse CDF: F(x) = 1 - exp(-(x/λ)^k), so with u in (0, 1]
        // the sample is λ·(-ln u)^(1/k) — one uniform per draw.
        self.scale * (-rng.next_f64_open().ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.raw_moment(1.0)
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        self.raw_moment(2.0) - m * m
    }
}

/// Finite mixture of distributions with normalized weights.
///
/// Models the "long-running workstation owner jobs" extension: e.g. 99%
/// short interactive demands mixed with 1% multi-minute compute jobs.
#[derive(Debug)]
pub struct Mixture {
    components: Vec<(f64, Box<dyn Distribution>)>,
}

impl Mixture {
    /// Build from `(weight, distribution)` pairs; weights must be positive
    /// and are normalized to sum to 1.
    pub fn new(components: Vec<(f64, Box<dyn Distribution>)>) -> Result<Self, StatsError> {
        if components.is_empty() {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        if !total.is_finite() || total <= 0.0 || components.iter().any(|(w, _)| *w <= 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "weights",
                value: total,
                constraint: "all weights must be > 0",
            });
        }
        let components = components
            .into_iter()
            .map(|(w, d)| (w / total, d))
            .collect();
        Ok(Self { components })
    }

    /// Number of mixture components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the mixture has no components (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl Distribution for Mixture {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        let mut u = rng.next_f64();
        for (w, d) in &self.components {
            if u < *w {
                return d.sample(rng);
            }
            u -= *w;
        }
        // Floating-point slack: fall through to the last component.
        self.components
            .last()
            .expect("mixture is non-empty")
            .1
            .sample(rng)
    }

    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, d)| w * d.mean()).sum()
    }

    fn variance(&self) -> f64 {
        // Var = E[X^2] - E[X]^2 with E[X^2] mixed per component.
        let mean = self.mean();
        let second: f64 = self
            .components
            .iter()
            .map(|(w, d)| {
                let m = d.mean();
                w * (d.variance() + m * m)
            })
            .sum();
        second - mean * mean
    }
}

/// A distribution shifted right by a constant offset (support `>= offset`).
///
/// Used, e.g., to give owner processes a minimum context-switch cost.
#[derive(Debug)]
pub struct Shifted<D: Distribution> {
    offset: f64,
    inner: D,
}

impl<D: Distribution> Shifted<D> {
    /// Shift `inner` right by `offset >= 0`.
    pub fn new(offset: f64, inner: D) -> Result<Self, StatsError> {
        if !offset.is_finite() || offset < 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "offset",
                value: offset,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(Self { offset, inner })
    }
}

impl<D: Distribution> Distribution for Shifted<D> {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        self.offset + self.inner.sample(rng)
    }

    fn mean(&self) -> f64 {
        self.offset + self.inner.mean()
    }

    fn variance(&self) -> f64 {
        self.inner.variance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::RunningStats;

    fn sample_stats<D: Distribution>(d: &D, n: usize, seed: u64) -> RunningStats {
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut s = RunningStats::new();
        for _ in 0..n {
            s.push(d.sample(&mut rng));
        }
        s
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(10.0).unwrap();
        let mut rng = Xoshiro256StarStar::new(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 10.0);
        }
        assert_eq!(d.mean(), 10.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.cv2(), 0.0);
    }

    #[test]
    fn deterministic_rejects_negative() {
        assert!(Deterministic::new(-1.0).is_err());
        assert!(Deterministic::new(f64::NAN).is_err());
    }

    #[test]
    fn exponential_moments_empirical() {
        let d = Exponential::with_mean(4.0).unwrap();
        let s = sample_stats(&d, 200_000, 42);
        assert!((s.mean() - 4.0).abs() < 0.05, "mean {}", s.mean());
        assert!((s.variance() - 16.0).abs() < 0.5, "var {}", s.variance());
        assert!((d.cv2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_rejects_bad_params() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-2.0).is_err());
        assert!(Exponential::with_mean(0.0).is_err());
    }

    #[test]
    fn geometric_mean_matches() {
        let p = 0.05;
        let d = Geometric::new(p).unwrap();
        let s = sample_stats(&d, 200_000, 7);
        assert!((s.mean() - 20.0).abs() < 0.2, "mean {}", s.mean());
        assert!((d.variance() - (1.0 - p) / (p * p)).abs() < 1e-12);
    }

    #[test]
    fn geometric_support_is_positive_integers() {
        let d = Geometric::new(0.5).unwrap();
        let mut rng = Xoshiro256StarStar::new(3);
        for _ in 0..10_000 {
            let x = d.sample_int(&mut rng);
            assert!(x >= 1);
        }
    }

    #[test]
    fn geometric_p_one_always_one() {
        let d = Geometric::new(1.0).unwrap();
        let mut rng = Xoshiro256StarStar::new(3);
        for _ in 0..100 {
            assert_eq!(d.sample_int(&mut rng), 1);
        }
    }

    #[test]
    fn geometric_rejects_bad_p() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Geometric::new(-0.1).is_err());
    }

    #[test]
    fn erlang_moments() {
        let d = Erlang::with_mean(4, 8.0).unwrap();
        assert!((d.mean() - 8.0).abs() < 1e-12);
        assert!((d.cv2() - 0.25).abs() < 1e-12);
        let s = sample_stats(&d, 100_000, 11);
        assert!((s.mean() - 8.0).abs() < 0.1, "mean {}", s.mean());
        assert!((s.variance() - 16.0).abs() < 0.6, "var {}", s.variance());
    }

    #[test]
    fn erlang_one_is_exponential() {
        let d = Erlang::new(1, 0.5).unwrap();
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert!((d.cv2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_rejects_zero_phases() {
        assert!(Erlang::new(0, 1.0).is_err());
    }

    #[test]
    fn hyperexponential_fit_hits_targets() {
        for (mean, cv2) in [(10.0, 4.0), (2.0, 9.0), (5.0, 1.0), (1.0, 25.0)] {
            let d = Hyperexponential::fit(mean, cv2).unwrap();
            assert!(
                (d.mean() - mean).abs() < 1e-9,
                "mean {} vs {mean}",
                d.mean()
            );
            assert!((d.cv2() - cv2).abs() < 1e-6, "cv2 {} vs {cv2}", d.cv2());
        }
    }

    #[test]
    fn hyperexponential_empirical_mean() {
        let d = Hyperexponential::fit(10.0, 16.0).unwrap();
        let s = sample_stats(&d, 400_000, 19);
        assert!((s.mean() - 10.0).abs() < 0.3, "mean {}", s.mean());
    }

    #[test]
    fn hyperexponential_rejects_cv2_below_one() {
        assert!(Hyperexponential::fit(1.0, 0.5).is_err());
        assert!(Hyperexponential::new(0.0, 1.0, 1.0).is_err());
        assert!(Hyperexponential::new(0.5, 0.0, 1.0).is_err());
    }

    #[test]
    fn uniform_moments() {
        let d = UniformRange::new(2.0, 6.0).unwrap();
        assert_eq!(d.mean(), 4.0);
        assert!((d.variance() - 16.0 / 12.0).abs() < 1e-12);
        let mut rng = Xoshiro256StarStar::new(5);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
    }

    #[test]
    fn uniform_rejects_inverted() {
        assert!(UniformRange::new(5.0, 5.0).is_err());
        assert!(UniformRange::new(6.0, 2.0).is_err());
    }

    #[test]
    fn bounded_pareto_moments_and_support() {
        let d = BoundedPareto::new(1.5, 1.0, 1000.0).unwrap();
        let s = sample_stats(&d, 400_000, 31);
        assert!(
            (s.mean() - d.mean()).abs() < 0.05 * d.mean(),
            "mean {} vs analytic {}",
            s.mean(),
            d.mean()
        );
        assert!(d.variance() > 0.0);
        assert!(d.cv2() > 1.0, "α=1.5 over three decades is heavy-tailed");
        let mut rng = Xoshiro256StarStar::new(13);
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..1000.0).contains(&x), "sample {x} escaped [L, H)");
        }
    }

    #[test]
    fn bounded_pareto_logarithmic_shapes_are_finite() {
        // α == 1 makes the mean integral logarithmic, α == 2 the second
        // moment: both closed forms must stay finite, and match a
        // nearby non-degenerate shape.
        for alpha in [1.0, 2.0] {
            let d = BoundedPareto::new(alpha, 2.0, 50.0).unwrap();
            let near = BoundedPareto::new(alpha + 1e-9, 2.0, 50.0).unwrap();
            assert!(d.mean().is_finite() && d.variance().is_finite());
            assert!((d.mean() - near.mean()).abs() < 1e-5 * d.mean());
            assert!((d.variance() - near.variance()).abs() < 1e-4 * d.variance());
            let s = sample_stats(&d, 200_000, 37);
            assert!(
                (s.mean() - d.mean()).abs() < 0.05 * d.mean(),
                "α={alpha}: mean {} vs analytic {}",
                s.mean(),
                d.mean()
            );
        }
    }

    #[test]
    fn bounded_pareto_rejects_bad_params() {
        assert!(BoundedPareto::new(0.0, 1.0, 10.0).is_err());
        assert!(BoundedPareto::new(f64::NAN, 1.0, 10.0).is_err());
        assert!(BoundedPareto::new(1.5, 0.0, 10.0).is_err());
        assert!(BoundedPareto::new(1.5, -1.0, 10.0).is_err());
        assert!(BoundedPareto::new(1.5, 5.0, 5.0).is_err());
        assert!(BoundedPareto::new(1.5, 5.0, 2.0).is_err());
        assert!(BoundedPareto::new(1.5, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn weibull_moments_and_exponential_degeneration() {
        // k == 1 is Exponential(1/scale): same analytic moments.
        let d = Weibull::new(1.0, 4.0).unwrap();
        assert!((d.mean() - 4.0).abs() < 1e-9, "mean {}", d.mean());
        assert!((d.variance() - 16.0).abs() < 1e-8, "var {}", d.variance());
        // k = 2 (Rayleigh-like wear-out): Γ(1.5) = √π/2.
        let r = Weibull::new(2.0, 10.0).unwrap();
        let gamma_1_5 = 0.5 * std::f64::consts::PI.sqrt();
        assert!((r.mean() - 10.0 * gamma_1_5).abs() < 1e-9);
        let s = sample_stats(&r, 200_000, 61);
        assert!(
            (s.mean() - r.mean()).abs() < 0.02 * r.mean(),
            "mean {} vs analytic {}",
            s.mean(),
            r.mean()
        );
        assert!(
            (s.variance() - r.variance()).abs() < 0.05 * r.variance(),
            "var {} vs analytic {}",
            s.variance(),
            r.variance()
        );
        // Infant-mortality shapes are heavy-tailed: CV² > 1.
        let h = Weibull::new(0.5, 1.0).unwrap();
        assert!(h.cv2() > 1.0, "k<1 must have cv2 > 1, got {}", h.cv2());
    }

    #[test]
    fn weibull_with_mean_hits_target() {
        for (shape, mean) in [(0.7, 100.0), (1.0, 5.0), (3.0, 42.0)] {
            let d = Weibull::with_mean(shape, mean).unwrap();
            assert!(
                (d.mean() - mean).abs() < 1e-9 * mean,
                "shape {shape}: mean {} vs {mean}",
                d.mean()
            );
        }
    }

    #[test]
    fn weibull_rejects_bad_params() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(-1.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
        assert!(Weibull::new(1.0, f64::INFINITY).is_err());
        assert!(Weibull::with_mean(1.0, 0.0).is_err());
        assert!(Weibull::with_mean(0.0, 1.0).is_err());
    }

    #[test]
    fn mixture_moments() {
        // 90% short exp(mean 1), 10% long deterministic 100 — a crude
        // "long-running owner jobs" workload.
        let m = Mixture::new(vec![
            (
                0.9,
                Box::new(Exponential::with_mean(1.0).unwrap()) as Box<dyn Distribution>,
            ),
            (0.1, Box::new(Deterministic::new(100.0).unwrap())),
        ])
        .unwrap();
        assert!((m.mean() - (0.9 + 10.0)).abs() < 1e-12);
        // E[X^2] = 0.9*2 + 0.1*10000 = 1001.8; Var = 1001.8 - 10.9^2
        assert!((m.variance() - (1001.8 - 10.9 * 10.9)).abs() < 1e-9);
        let s = sample_stats(&m, 400_000, 23);
        assert!((s.mean() - 10.9).abs() < 0.3, "mean {}", s.mean());
    }

    #[test]
    fn mixture_normalizes_weights() {
        let m = Mixture::new(vec![
            (
                2.0,
                Box::new(Deterministic::new(1.0).unwrap()) as Box<dyn Distribution>,
            ),
            (2.0, Box::new(Deterministic::new(3.0).unwrap())),
        ])
        .unwrap();
        assert_eq!(m.len(), 2);
        assert!((m.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mixture_rejects_empty_and_nonpositive() {
        assert!(Mixture::new(vec![]).is_err());
        assert!(Mixture::new(vec![(
            -1.0,
            Box::new(Deterministic::new(1.0).unwrap()) as Box<dyn Distribution>
        )])
        .is_err());
    }

    #[test]
    fn shifted_moments() {
        let d = Shifted::new(5.0, Exponential::with_mean(2.0).unwrap()).unwrap();
        assert!((d.mean() - 7.0).abs() < 1e-12);
        assert!((d.variance() - 4.0).abs() < 1e-12);
        let mut rng = Xoshiro256StarStar::new(9);
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) >= 5.0);
        }
    }

    #[test]
    fn shifted_rejects_negative_offset() {
        assert!(Shifted::new(-1.0, Deterministic::new(1.0).unwrap()).is_err());
    }
}
