//! Deterministic pseudo-random number generation.
//!
//! The simulators in this workspace must be exactly reproducible from a
//! seed, independent of the version of any external crate. We therefore
//! implement the generators ourselves:
//!
//! * [`SplitMix64`] — tiny, used for seeding and stream derivation,
//! * [`Xoshiro256StarStar`] — the workhorse generator (Blackman & Vigna),
//! * [`StreamFactory`] — derives independent, reproducible streams, one per
//!   simulated workstation, mirroring CSIM's per-facility random streams.
//!
//! Both generators implement [`rand::RngCore`] so they compose with the
//! `rand` ecosystem where convenient.

use rand::RngCore;

/// SplitMix64 generator (Steele, Lea & Flood).
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256StarStar`] and to derive independent stream seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. All seeds, including 0, are valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[allow(clippy::should_implement_trait)] // established name; RngCore::next_u64 delegates here
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_from_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna, 2018).
///
/// 256 bits of state, period `2^256 - 1`, passes BigCrush. This is the
/// generator used by every stochastic component in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 expansion, as recommended by the authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next();
        }
        // The all-zero state is invalid (fixed point); SplitMix64 expansion
        // of any seed cannot produce it, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Next 64 uniformly distributed bits.
    #[allow(clippy::should_implement_trait)] // established name; RngCore::next_u64 delegates here
    pub fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        // 2^-53 scaling of the top 53 bits yields a uniform double in [0,1).
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]` — safe as an argument to `ln`.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Bernoulli trial with success probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[0, bound)` via Lemire's method.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's nearly-divisionless method.
        let mut x = self.next();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// The 2^128-step jump function, for manually spacing streams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for jump_word in JUMP {
            for b in 0..64 {
                if (jump_word & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next();
            }
        }
        self.s = [s0, s1, s2, s3];
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_from_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

fn fill_bytes_from_u64<R: RngCore>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

/// Derives independent random streams from a master seed.
///
/// Each simulated workstation (and each stochastic subsystem, e.g. owner
/// think times vs. owner service demands) gets its own stream so that
/// changing the number of workstations does not perturb the sample path of
/// the others — the standard variance-reduction discipline for simulation
/// experiments.
#[derive(Debug, Clone)]
pub struct StreamFactory {
    master: SplitMix64,
    issued: u64,
}

impl StreamFactory {
    /// Create a factory from a master seed.
    pub fn new(master_seed: u64) -> Self {
        Self {
            master: SplitMix64::new(master_seed),
            issued: 0,
        }
    }

    /// Number of streams issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Issue the next independent stream.
    pub fn stream(&mut self) -> Xoshiro256StarStar {
        self.issued += 1;
        Xoshiro256StarStar::new(self.master.next())
    }

    /// Issue a stream tied to a stable `(component, index)` label.
    ///
    /// Unlike [`StreamFactory::stream`], the result does not depend on the
    /// order of issuance, only on the master seed and the label — useful
    /// when workstations are constructed lazily or in parallel.
    pub fn labeled_stream(&self, component: &str, index: u64) -> Xoshiro256StarStar {
        let mut h = SplitMix64::new(self.master.state ^ 0xA076_1D64_78BD_642F);
        let mut acc = h.next();
        for &b in component.as_bytes() {
            acc = acc.rotate_left(8) ^ u64::from(b);
            acc = acc.wrapping_mul(0x100_0000_01B3);
        }
        acc ^= index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Xoshiro256StarStar::new(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next();
        let b = sm.next();
        assert_ne!(a, b);
        // Determinism: same seed, same sequence.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next(), a);
        assert_eq!(sm2.next(), b);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256StarStar::new(42);
        let mut b = Xoshiro256StarStar::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn xoshiro_seeds_differ() {
        let mut a = Xoshiro256StarStar::new(1);
        let mut b = Xoshiro256StarStar::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn next_f64_open_never_zero() {
        let mut rng = Xoshiro256StarStar::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64_open();
            assert!(x > 0.0 && x <= 1.0);
        }
    }

    #[test]
    fn next_f64_mean_close_to_half() {
        let mut rng = Xoshiro256StarStar::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Xoshiro256StarStar::new(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn bounded_respects_bound() {
        let mut rng = Xoshiro256StarStar::new(11);
        for _ in 0..10_000 {
            assert!(rng.next_bounded(13) < 13);
        }
    }

    #[test]
    fn bounded_covers_all_values() {
        let mut rng = Xoshiro256StarStar::new(13);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.next_bounded(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        Xoshiro256StarStar::new(1).next_bounded(0);
    }

    #[test]
    fn jump_decorrelates() {
        let mut a = Xoshiro256StarStar::new(3);
        let mut b = a.clone();
        b.jump();
        let va: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_factory_issues_distinct_streams() {
        let mut f = StreamFactory::new(2023);
        let mut s1 = f.stream();
        let mut s2 = f.stream();
        assert_eq!(f.issued(), 2);
        let v1: Vec<u64> = (0..8).map(|_| s1.next()).collect();
        let v2: Vec<u64> = (0..8).map(|_| s2.next()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn stream_factory_reproducible() {
        let mut f1 = StreamFactory::new(77);
        let mut f2 = StreamFactory::new(77);
        assert_eq!(f1.stream().next(), f2.stream().next());
    }

    #[test]
    fn labeled_streams_stable_and_distinct() {
        let f = StreamFactory::new(9);
        let mut a1 = f.labeled_stream("owner-think", 0);
        let mut a2 = f.labeled_stream("owner-think", 0);
        let mut b = f.labeled_stream("owner-think", 1);
        let mut c = f.labeled_stream("owner-demand", 0);
        assert_eq!(a1.next(), a2.next());
        let x = a1.next();
        assert_ne!(x, b.next());
        assert_ne!(x, c.next());
    }

    #[test]
    fn fill_bytes_works_with_remainder() {
        let mut rng = Xoshiro256StarStar::new(21);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
