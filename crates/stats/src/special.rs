//! Special functions used by the analytical model and the statistics code.
//!
//! All functions here are pure, allocation-free, and accurate to roughly
//! 1e-12 relative error over the domains the workspace exercises.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 for `x > 0`. For the half-integer and integer
/// arguments the model uses, the error is far below what the binomial
/// recurrences require.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, kept verbatim from the
    // published table (digits beyond f64 precision included).
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` with an exact table for small `n` and `ln_gamma` beyond.
pub fn ln_factorial(n: u64) -> f64 {
    // Exact doubles for 0!..=20! (20! < 2^63 so representable exactly
    // enough; the table avoids accumulation error in hot loops).
    const TABLE: [f64; 21] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5_040.0,
        40_320.0,
        362_880.0,
        3_628_800.0,
        39_916_800.0,
        479_001_600.0,
        6_227_020_800.0,
        87_178_291_200.0,
        1_307_674_368_000.0,
        20_922_789_888_000.0,
        355_687_428_096_000.0,
        6_402_373_705_728_000.0,
        121_645_100_408_832_000.0,
        2_432_902_008_176_640_000.0,
    ];
    if n <= 20 {
        TABLE[n as usize].ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`, the log binomial coefficient. Requires `k <= n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose requires k <= n, got k={k}, n={n}");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Numerically careful `ln(1 + x)`.
pub fn ln_1p(x: f64) -> f64 {
    x.ln_1p()
}

/// Inverse of the standard normal CDF (Acklam's algorithm).
///
/// Relative error below 1.15e-9 over `p in (0, 1)`; used for Student-t
/// quantiles and confidence intervals.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inverse_normal_cdf requires p in (0,1), got {p}"
    );
    // Acklam coefficients, kept verbatim from the published table.
    #[allow(clippy::excessive_precision)]
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the normal pdf/cdf.
    let e = standard_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Standard normal CDF via `erfc`.
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function (W. J. Cody-style rational approximation).
///
/// Max absolute error ~1.2e-7 from the classic Numerical-Recipes-style
/// Chebyshev fit, then refined; adequate for confidence intervals. For the
/// model's probability arithmetic we never rely on `erfc` tails.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_integers() {
        // Gamma(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0f64.ln(), 1e-12);
        close(ln_gamma(11.0), 3_628_800.0f64.ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_half() {
        // Gamma(1/2) = sqrt(pi)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_large() {
        // Check at x = 1000.5 against Python's math.lgamma.
        close(ln_gamma(1000.5), 5_908.674_175_848_678, 1e-10);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn ln_factorial_matches_direct() {
        for n in 0..=20u64 {
            let direct: f64 = (1..=n).map(|i| (i as f64).ln()).sum();
            close(ln_factorial(n), direct, 1e-12);
        }
        // Continuity across the table boundary.
        close(ln_factorial(21), ln_factorial(20) + 21.0f64.ln(), 1e-12);
    }

    #[test]
    fn ln_choose_small_cases() {
        close(ln_choose(5, 2), 10.0f64.ln(), 1e-12);
        close(ln_choose(10, 5), 252.0f64.ln(), 1e-12);
        close(ln_choose(52, 5), 2_598_960.0f64.ln(), 1e-11);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn ln_choose_symmetry() {
        for n in [10u64, 100, 1000] {
            for k in [1u64, 3, 7] {
                close(ln_choose(n, k), ln_choose(n, n - k), 1e-11);
            }
        }
    }

    #[test]
    #[should_panic(expected = "ln_choose requires k <= n")]
    fn ln_choose_rejects_k_gt_n() {
        ln_choose(3, 4);
    }

    #[test]
    fn normal_cdf_symmetry() {
        close(standard_normal_cdf(0.0), 0.5, 1e-7);
        for x in [0.5f64, 1.0, 1.96, 3.0] {
            close(standard_normal_cdf(x) + standard_normal_cdf(-x), 1.0, 1e-7);
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        close(standard_normal_cdf(1.959_963_985), 0.975, 1e-5);
        close(standard_normal_cdf(1.644_853_627), 0.95, 1e-5);
    }

    #[test]
    fn inverse_normal_round_trip() {
        for p in [0.001, 0.01, 0.05, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999] {
            let x = inverse_normal_cdf(p);
            close(standard_normal_cdf(x), p, 1e-6);
        }
    }

    #[test]
    fn inverse_normal_known_quantiles() {
        close(inverse_normal_cdf(0.975), 1.959_963_985, 1e-5);
        close(inverse_normal_cdf(0.95), 1.644_853_627, 1e-5);
        close(inverse_normal_cdf(0.5), 0.0, 1e-7);
    }

    #[test]
    #[should_panic(expected = "inverse_normal_cdf requires p in (0,1)")]
    fn inverse_normal_rejects_bounds() {
        inverse_normal_cdf(1.0);
    }

    #[test]
    fn erfc_limits() {
        close(erfc(0.0), 1.0, 1e-7);
        assert!(erfc(5.0) < 1e-10);
        close(erfc(-5.0), 2.0, 1e-10);
    }
}
