//! # nds-des — a discrete-event simulation engine (CSIM replacement)
//!
//! The paper validates its analysis with a simulation written in CSIM
//! (Schwetman 1986), a proprietary C library. This crate is the
//! from-scratch Rust substrate that fills that role for the whole
//! workspace:
//!
//! * [`engine::Engine`] — the closure calendar + simulation clock;
//!   schedule boxed closures ([`engine::Engine::schedule`]), run to a
//!   horizon or to quiescence — the ergonomic engine for doc examples
//!   and ad-hoc models,
//! * [`calendar::Calendar`] — the typed, zero-allocation calendar:
//!   plain event values in a slab with generation-counted handles, no
//!   per-event boxing and no hash-set cancellation bookkeeping — the
//!   substrate for hot-path engines with a closed event vocabulary
//!   (see the two-calendar design notes on [`calendar`]),
//! * [`facility::Facility`] — a CSIM-style service facility with
//!   **preemptive-priority** scheduling, the exact discipline the paper
//!   assumes ("when an owner process starts execution an executing
//!   parallel task is suspended and the owner process is immediately
//!   started"),
//! * [`monitor::Monitor`] — time-weighted and tally statistics collected
//!   during a run,
//! * [`registry::MetricsRegistry`] — named counters/gauges with
//!   periodic snapshotting, the exportable generalization of a bag of
//!   monitors,
//! * [`trace`] — the zero-cost [`trace::Tracer`] hook trait threaded
//!   through [`calendar::Calendar`] (disabled by default via the
//!   zero-sized [`trace::NoTrace`], which monomorphizes the hooks
//!   away), plus the [`trace::TraceLog`] debugging ring buffer.
//!
//! Unlike CSIM the engine is event-driven rather than process-oriented
//! (no coroutines), which keeps it deterministic, allocation-light, and
//! trivially reproducible from a seed. Determinism guarantee: two runs
//! with the same seed and same schedule order produce identical event
//! sequences — ties in time are broken by insertion sequence number.

#![forbid(unsafe_code)]

pub mod calendar;
pub mod engine;
pub mod error;
pub mod facility;
pub mod monitor;
pub mod registry;
pub mod resource;
pub mod time;
pub mod trace;

pub use calendar::{Calendar, EventHandle};
pub use engine::{Engine, EventId};
pub use error::DesError;
pub use facility::{Facility, Preempted, Request, RequestId, RequestOutcome};
pub use monitor::Monitor;
pub use registry::{MetricsRegistry, QuantileSketch, SeriesId, SeriesKind};
pub use resource::MultiFacility;
pub use time::SimTime;
pub use trace::{CalendarProbe, NoTrace, TraceEvent, TraceLog, Tracer};
