//! A sim-time metrics registry: named counters and gauges with
//! periodic snapshotting, generalizing [`crate::Monitor`] from one
//! signal to a whole run's worth.
//!
//! Each registered series wraps a [`Monitor`] (so the time-weighted
//! mean, extrema, and change count come for free) and additionally
//! records its value on a fixed sim-time grid: every `every` units the
//! registry samples all series, producing aligned time-series suitable
//! for plotting or JSON export ([`MetricsRegistry::to_json`]).
//!
//! Sampling is **left-continuous**: the value recorded at grid time
//! `k·every` is the value the signal held *entering* that instant —
//! updates are applied after any due snapshots, matching the
//! piecewise-constant convention [`Monitor`] integrates under.
//!
//! ```
//! use nds_des::{MetricsRegistry, SimTime};
//!
//! let mut reg = MetricsRegistry::new(10.0);
//! let depth = reg.gauge("queue_depth");
//! reg.set(SimTime::new(0.0), depth, 3.0);
//! reg.set(SimTime::new(25.0), depth, 1.0);
//! reg.finish(SimTime::new(40.0));
//! assert_eq!(reg.ticks(), &[0.0, 10.0, 20.0, 30.0, 40.0]);
//! assert_eq!(reg.samples(depth), &[0.0, 3.0, 3.0, 1.0, 1.0]);
//! assert!(reg.to_json().contains("\"queue_depth\""));
//! ```

use crate::monitor::Monitor;
use crate::time::SimTime;
use std::fmt::Write as _;

/// Handle to one registered series (index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeriesId(usize);

/// What a series semantically is (purely descriptive — both kinds are
/// stored identically; the kind is carried into the JSON export so
/// consumers can pick sensible renderings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// A monotone running total (events observed, work served, ...).
    Counter,
    /// An instantaneous level (queue depth, free machines, ...).
    Gauge,
}

impl SeriesKind {
    /// Stable lowercase name used in the JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
        }
    }
}

#[derive(Debug, Clone)]
struct Series {
    name: String,
    kind: SeriesKind,
    monitor: Monitor,
    samples: Vec<f64>,
}

/// Named counters/gauges sampled on a fixed sim-time grid.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    every: f64,
    /// Time of the next snapshot not yet taken.
    next_tick: f64,
    ticks: Vec<f64>,
    series: Vec<Series>,
    /// Clock at [`MetricsRegistry::finish`], for the summary means.
    end: Option<f64>,
}

impl MetricsRegistry {
    /// A registry snapshotting every `every` sim-time units (the first
    /// snapshot is at time 0, before any update lands).
    ///
    /// # Panics
    ///
    /// If `every` is not finite and positive.
    pub fn new(every: f64) -> Self {
        assert!(
            every.is_finite() && every > 0.0,
            "snapshot period must be finite and positive, got {every}"
        );
        Self {
            every,
            next_tick: 0.0,
            ticks: Vec::new(),
            series: Vec::new(),
            end: None,
        }
    }

    /// The snapshot period.
    pub fn every(&self) -> f64 {
        self.every
    }

    /// Register a counter series.
    pub fn counter(&mut self, name: impl Into<String>) -> SeriesId {
        self.register(name, SeriesKind::Counter)
    }

    /// Register a gauge series.
    pub fn gauge(&mut self, name: impl Into<String>) -> SeriesId {
        self.register(name, SeriesKind::Gauge)
    }

    fn register(&mut self, name: impl Into<String>, kind: SeriesKind) -> SeriesId {
        assert!(
            self.ticks.is_empty(),
            "series must be registered before the first snapshot"
        );
        let name = name.into();
        let id = SeriesId(self.series.len());
        self.series.push(Series {
            monitor: Monitor::new(name.clone()),
            name,
            kind,
            samples: Vec::new(),
        });
        id
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series is registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Take every snapshot due at or before `now`. Updates at `now`
    /// itself land *after* the `now` snapshot (left-continuous).
    fn advance(&mut self, now: f64) {
        while self.next_tick <= now {
            self.ticks.push(self.next_tick);
            for s in &mut self.series {
                s.samples.push(s.monitor.current());
            }
            self.next_tick += self.every;
        }
    }

    /// Record that series `id` changed to `value` at `now`. Times must
    /// be nondecreasing across all updates (one simulation clock).
    pub fn set(&mut self, now: SimTime, id: SeriesId, value: f64) {
        self.advance(now.as_f64());
        self.series[id.0].monitor.set(now, value);
    }

    /// Adjust series `id` by `delta` (counter convenience).
    pub fn add(&mut self, now: SimTime, id: SeriesId, delta: f64) {
        self.advance(now.as_f64());
        self.series[id.0].monitor.add(now, delta);
    }

    /// Current value of series `id`.
    pub fn value(&self, id: SeriesId) -> f64 {
        self.series[id.0].monitor.current()
    }

    /// The series' underlying [`Monitor`] (time-weighted statistics).
    pub fn monitor(&self, id: SeriesId) -> &Monitor {
        &self.series[id.0].monitor
    }

    /// Close the run at `now`: take the remaining due snapshots plus a
    /// final one at `now` itself (even off-grid, so the export always
    /// ends with the closing state), and pin the summary horizon.
    pub fn finish(&mut self, now: SimTime) {
        let t = now.as_f64();
        self.advance(t);
        if self.ticks.last() != Some(&t) {
            self.ticks.push(t);
            for s in &mut self.series {
                s.samples.push(s.monitor.current());
            }
            // Keep the grid invariant: the next due tick stays ahead.
            while self.next_tick <= t {
                self.next_tick += self.every;
            }
        }
        self.end = Some(t);
    }

    /// Snapshot times taken so far.
    pub fn ticks(&self) -> &[f64] {
        &self.ticks
    }

    /// Sampled values of series `id`, aligned with
    /// [`MetricsRegistry::ticks`].
    pub fn samples(&self, id: SeriesId) -> &[f64] {
        &self.series[id.0].samples
    }

    /// Render the whole registry as one JSON object: the grid, and per
    /// series its kind, summary statistics, final value, and aligned
    /// samples.
    pub fn to_json(&self) -> String {
        let horizon = self
            .end
            .or_else(|| self.ticks.last().copied())
            .unwrap_or(0.0);
        let mut out = String::from("{");
        let _ = write!(out, "\"every\":{}", json_num(self.every));
        let _ = write!(out, ",\"end\":{}", json_num(horizon));
        out.push_str(",\"ticks\":[");
        for (i, t) in self.ticks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_num(*t));
        }
        out.push_str("],\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"kind\":\"{}\",\"final\":{},\"mean\":{},\"min\":{},\"max\":{},\"samples\":[",
                json_str(&s.name),
                s.kind.name(),
                json_num(s.monitor.current()),
                json_num(s.monitor.time_average(SimTime::new(horizon.max(0.0)))),
                s.monitor.min().map_or_else(|| "null".into(), json_num),
                s.monitor.max().map_or_else(|| "null".into(), json_num),
            );
            for (k, v) in s.samples.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&json_num(*v));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Render a float as a JSON number (`null` for non-finite values,
/// which JSON cannot carry). Rust's shortest-roundtrip `Display` is
/// already valid JSON for finite floats.
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Render a string as a JSON string literal with minimal escaping.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> SimTime {
        SimTime::new(v)
    }

    #[test]
    fn snapshots_on_the_grid_are_left_continuous() {
        let mut reg = MetricsRegistry::new(5.0);
        let g = reg.gauge("g");
        reg.set(t(0.0), g, 2.0);
        // The t=0 snapshot fired before the update: initial value 0.
        reg.set(t(5.0), g, 7.0);
        // The t=5 snapshot sampled the value entering t=5.
        reg.finish(t(12.0));
        assert_eq!(reg.ticks(), &[0.0, 5.0, 10.0, 12.0]);
        assert_eq!(reg.samples(g), &[0.0, 2.0, 7.0, 7.0]);
        assert_eq!(reg.value(g), 7.0);
    }

    #[test]
    fn counters_accumulate_and_average() {
        let mut reg = MetricsRegistry::new(10.0);
        let c = reg.counter("served");
        reg.add(t(0.0), c, 1.0);
        reg.add(t(4.0), c, 1.0);
        reg.add(t(8.0), c, 3.0);
        reg.finish(t(10.0));
        assert_eq!(reg.value(c), 5.0);
        assert_eq!(reg.samples(c), &[0.0, 5.0]);
        // Time average of the step function 1·4 + 2·4 + 5·2 over 10.
        assert!((reg.monitor(c).time_average(t(10.0)) - 2.2).abs() < 1e-12);
    }

    #[test]
    fn finish_on_grid_does_not_duplicate_the_tick() {
        let mut reg = MetricsRegistry::new(5.0);
        let g = reg.gauge("g");
        reg.set(t(1.0), g, 4.0);
        reg.finish(t(10.0));
        assert_eq!(reg.ticks(), &[0.0, 5.0, 10.0]);
        assert_eq!(reg.samples(g), &[0.0, 4.0, 4.0]);
    }

    #[test]
    fn json_contains_all_series_and_handles_empties() {
        let mut reg = MetricsRegistry::new(2.0);
        let a = reg.gauge("alpha");
        let _b = reg.counter("beta");
        reg.set(t(1.0), a, 9.0);
        reg.finish(t(3.0));
        let json = reg.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"alpha\""));
        assert!(json.contains("\"kind\":\"gauge\""));
        assert!(json.contains("\"kind\":\"counter\""));
        // beta was never set: its extrema export as null, not ±inf.
        assert!(json.contains("\"min\":null"));
        assert!(!json.contains("inf"));
    }

    #[test]
    fn json_primitives_escape_and_nullify() {
        assert_eq!(json_num(1.0), "1");
        assert_eq!(json_num(0.25), "0.25");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_nonpositive_period() {
        let _ = MetricsRegistry::new(0.0);
    }

    #[test]
    #[should_panic(expected = "before the first snapshot")]
    fn rejects_late_registration() {
        let mut reg = MetricsRegistry::new(1.0);
        let g = reg.gauge("g");
        reg.set(t(0.5), g, 1.0);
        let _ = reg.counter("late");
    }
}
