//! A sim-time metrics registry: named counters and gauges with
//! periodic snapshotting, generalizing [`crate::Monitor`] from one
//! signal to a whole run's worth.
//!
//! Each registered series wraps a [`Monitor`] (so the time-weighted
//! mean, extrema, and change count come for free) and additionally
//! records its value on a fixed sim-time grid: every `every` units the
//! registry samples all series, producing aligned time-series suitable
//! for plotting or JSON export ([`MetricsRegistry::to_json`]).
//!
//! Sampling is **left-continuous**: the value recorded at grid time
//! `k·every` is the value the signal held *entering* that instant —
//! updates are applied after any due snapshots, matching the
//! piecewise-constant convention [`Monitor`] integrates under.
//!
//! ```
//! use nds_des::{MetricsRegistry, SimTime};
//!
//! let mut reg = MetricsRegistry::new(10.0);
//! let depth = reg.gauge("queue_depth");
//! reg.set(SimTime::new(0.0), depth, 3.0);
//! reg.set(SimTime::new(25.0), depth, 1.0);
//! reg.finish(SimTime::new(40.0));
//! assert_eq!(reg.ticks(), &[0.0, 10.0, 20.0, 30.0, 40.0]);
//! assert_eq!(reg.samples(depth), &[0.0, 3.0, 3.0, 1.0, 1.0]);
//! assert!(reg.to_json().contains("\"queue_depth\""));
//! ```

use crate::monitor::Monitor;
use crate::time::SimTime;
use std::fmt::Write as _;

/// Mantissa bits kept in a [`QuantileSketch`] bucket key: each
/// power-of-two octave splits into `2^SUB_BITS` equal-width linear
/// sub-buckets, bounding the midpoint's relative error by
/// `2^-(SUB_BITS+1)` = [`QuantileSketch::GAMMA`].
const SUB_BITS: u32 = 6;
/// How far `f64::to_bits` is shifted right to form a bucket key.
const KEY_SHIFT: u32 = 52 - SUB_BITS;

/// A deterministic, bounded-memory quantile sketch over nonnegative
/// observations (DDSketch-style log-binned histogram).
///
/// Values are binned by pure integer math on their IEEE-754 bit
/// pattern — sign-free exponent plus the top `SUB_BITS` mantissa
/// bits — so two runs feeding the same value sequence hold
/// bit-identical bucket maps on any host (no `ln`, no wall-clock, no
/// RNG), and any reported quantile of *normal* positive values is
/// within relative error [`QuantileSketch::GAMMA`] of the exact
/// nearest-rank quantile. Memory is O(occupied buckets): at most
/// `2^SUB_BITS` per octave actually observed, independent of the
/// observation count.
///
/// Non-finite observations are ignored; negative observations clamp
/// to the dedicated zero bucket (the signals this sketch serves —
/// response, wait, slowdown — are nonnegative by construction).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantileSketch {
    /// Bucket key (`bits >> KEY_SHIFT`) → observation count, kept
    /// sorted by key so a cumulative walk yields quantiles directly.
    /// A flat sorted vec beats a tree map here: lookups are a binary
    /// search over contiguous memory on the per-observation hot path,
    /// and inserts (which shift the tail) only happen on a bucket's
    /// first occupancy — O(occupied buckets) times total.
    buckets: Vec<(u64, u64)>,
    /// Observations that were exactly zero (or clamped negatives).
    zero: u64,
    /// Total observations held (including the zero bucket).
    count: u64,
    /// Exact running sum, for the exact mean.
    sum: f64,
    /// Exact extrema of the observed values.
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// Guaranteed relative-error bound for quantiles of positive
    /// normal values: half of one sub-bucket's width relative to its
    /// lower bound, `2^-(SUB_BITS+1)`.
    pub const GAMMA: f64 = 1.0 / (1u64 << (SUB_BITS + 1)) as f64;

    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation in. Ignores non-finite values; clamps
    /// negatives to zero.
    pub fn observe(&mut self, value: f64) {
        self.observe_n(value, 1);
    }

    /// Fold `n` identical observations in at O(1) cost (a gang
    /// admitting `n` members reports one wait `n` times). `n = 0` is
    /// a no-op; otherwise identical to `n` calls of
    /// [`QuantileSketch::observe`] except that the running sum folds
    /// `value * n` in one step.
    pub fn observe_n(&mut self, value: f64, n: u32) {
        if n == 0 || !value.is_finite() {
            return;
        }
        let n = u64::from(n);
        let v = if value > 0.0 { value } else { 0.0 };
        if v == 0.0 {
            self.zero += n;
        } else {
            let key = v.to_bits() >> KEY_SHIFT;
            match self.buckets.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(i) => self.buckets[i].1 += n,
                Err(i) => self.buckets.insert(i, (key, n)),
            }
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += n;
        // Cast is exact far beyond any feasible observation count.
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum += v * n as f64;
        }
    }

    /// Total observations held.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all observations (after clamping).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean, if anything was observed.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            // Cast is exact far beyond any feasible observation count.
            #[allow(clippy::cast_precision_loss)]
            Some(self.sum / self.count as f64)
        }
    }

    /// Exact minimum observed value (after clamping), if any.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Exact maximum observed value (after clamping), if any.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// The nearest-rank `q`-quantile estimate (`q` clamped to [0, 1]):
    /// the representative of the bucket holding the value of rank
    /// `ceil(q·count)`. `None` when empty. For positive normal values
    /// the estimate is within [`QuantileSketch::GAMMA`] relative error
    /// of the exact nearest-rank quantile.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Cast is exact far beyond any feasible observation count.
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zero {
            return Some(0.0);
        }
        let mut cum = self.zero;
        for &(key, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                // The true rank-holder lies in this bucket *and* in
                // [min, max]; clamping the midpoint into that
                // intersection only tightens the error bound.
                return Some(Self::bucket_mid(key).clamp(self.min, self.max));
            }
        }
        // Unreachable: cum totals self.count ≥ rank. Fall back to max.
        Some(self.max)
    }

    /// The occupied buckets in ascending key order (the zero bucket is
    /// reported separately by [`QuantileSketch::zero_count`]). Exposed
    /// so determinism tests can pin bucket maps bit-for-bit.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().copied()
    }

    /// Observations that landed in the zero bucket.
    pub fn zero_count(&self) -> u64 {
        self.zero
    }

    /// Midpoint of bucket `key`'s value range.
    fn bucket_mid(key: u64) -> f64 {
        let lo = f64::from_bits(key << KEY_SHIFT);
        let hi = f64::from_bits((key + 1) << KEY_SHIFT);
        if hi.is_finite() {
            0.5 * (lo + hi)
        } else {
            lo
        }
    }

    /// Render as one JSON object: count, error bound, exact summary
    /// stats, headline quantiles, and the raw bucket map (key/count
    /// pairs, for bit-identity checks and offline re-aggregation).
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| v.map_or_else(|| "null".into(), json_num);
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"count\":{},\"zero\":{},\"gamma\":{},\"sum\":{},\"mean\":{},\"min\":{},\"max\":{}",
            self.count,
            self.zero,
            json_num(Self::GAMMA),
            json_num(self.sum),
            opt(self.mean()),
            opt(self.min()),
            opt(self.max()),
        );
        for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99)] {
            let _ = write!(out, ",\"{label}\":{}", opt(self.quantile(q)));
        }
        out.push_str(",\"buckets\":[");
        for (i, (k, n)) in self.buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{k},{n}]");
        }
        out.push_str("]}");
        out
    }
}

/// Handle to one registered series (index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeriesId(usize);

/// What a series semantically is (purely descriptive — both kinds are
/// stored identically; the kind is carried into the JSON export so
/// consumers can pick sensible renderings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// A monotone running total (events observed, work served, ...).
    Counter,
    /// An instantaneous level (queue depth, free machines, ...).
    Gauge,
    /// A stream of scalar observations folded into a bounded-memory
    /// [`QuantileSketch`]; the gridded signal is the cumulative
    /// observation count, and the JSON export carries the sketch.
    Histogram,
}

impl SeriesKind {
    /// Stable lowercase name used in the JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Series {
    name: String,
    kind: SeriesKind,
    monitor: Monitor,
    samples: Vec<f64>,
    /// Present exactly when `kind` is [`SeriesKind::Histogram`].
    sketch: Option<QuantileSketch>,
}

/// Named counters/gauges sampled on a fixed sim-time grid.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    every: f64,
    /// Time of the next snapshot not yet taken.
    next_tick: f64,
    ticks: Vec<f64>,
    series: Vec<Series>,
    /// Clock at [`MetricsRegistry::finish`], for the summary means.
    end: Option<f64>,
}

impl MetricsRegistry {
    /// A registry snapshotting every `every` sim-time units (the first
    /// snapshot is at time 0, before any update lands).
    ///
    /// # Panics
    ///
    /// If `every` is not finite and positive.
    pub fn new(every: f64) -> Self {
        assert!(
            every.is_finite() && every > 0.0,
            "snapshot period must be finite and positive, got {every}"
        );
        Self {
            every,
            next_tick: 0.0,
            ticks: Vec::new(),
            series: Vec::new(),
            end: None,
        }
    }

    /// The snapshot period.
    pub fn every(&self) -> f64 {
        self.every
    }

    /// Register a counter series.
    pub fn counter(&mut self, name: impl Into<String>) -> SeriesId {
        self.register(name, SeriesKind::Counter)
    }

    /// Register a gauge series.
    pub fn gauge(&mut self, name: impl Into<String>) -> SeriesId {
        self.register(name, SeriesKind::Gauge)
    }

    /// Register a histogram series: observations fold into a
    /// [`QuantileSketch`], and the gridded signal is the cumulative
    /// observation count.
    pub fn histogram(&mut self, name: impl Into<String>) -> SeriesId {
        self.register(name, SeriesKind::Histogram)
    }

    fn register(&mut self, name: impl Into<String>, kind: SeriesKind) -> SeriesId {
        assert!(
            self.ticks.is_empty(),
            "series must be registered before the first snapshot"
        );
        let name = name.into();
        let id = SeriesId(self.series.len());
        let sketch = match kind {
            SeriesKind::Histogram => Some(QuantileSketch::new()),
            SeriesKind::Counter | SeriesKind::Gauge => None,
        };
        self.series.push(Series {
            monitor: Monitor::new(name.clone()),
            name,
            kind,
            samples: Vec::new(),
            sketch,
        });
        id
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series is registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Take every snapshot due at or before `now`. Updates at `now`
    /// itself land *after* the `now` snapshot (left-continuous).
    fn advance(&mut self, now: f64) {
        while self.next_tick <= now {
            self.ticks.push(self.next_tick);
            for s in &mut self.series {
                s.samples.push(Self::grid_value(s));
            }
            self.next_tick += self.every;
        }
    }

    /// The value a snapshot records for `s`: the monitor's current
    /// level, except histogram series, whose gridded signal is the
    /// cumulative observation count read straight off the sketch (so
    /// [`MetricsRegistry::observe`] never touches the monitor on the
    /// per-observation hot path).
    fn grid_value(s: &Series) -> f64 {
        match &s.sketch {
            // Cast is exact far beyond any feasible observation count.
            #[allow(clippy::cast_precision_loss)]
            Some(sketch) => sketch.count() as f64,
            None => s.monitor.current(),
        }
    }

    /// Record that series `id` changed to `value` at `now`. Times must
    /// be nondecreasing across all updates (one simulation clock).
    pub fn set(&mut self, now: SimTime, id: SeriesId, value: f64) {
        self.advance(now.as_f64());
        self.series[id.0].monitor.set(now, value);
    }

    /// Adjust series `id` by `delta` (counter convenience).
    pub fn add(&mut self, now: SimTime, id: SeriesId, delta: f64) {
        self.advance(now.as_f64());
        self.series[id.0].monitor.add(now, delta);
    }

    /// Fold one observation into histogram series `id` at `now`. The
    /// gridded signal tracks the cumulative observation count.
    ///
    /// # Panics
    ///
    /// If `id` is not a histogram series.
    pub fn observe(&mut self, now: SimTime, id: SeriesId, value: f64) {
        self.observe_n(now, id, value, 1);
    }

    /// Fold `n` identical observations into histogram series `id` at
    /// `now` in one step (see [`QuantileSketch::observe_n`]).
    ///
    /// # Panics
    ///
    /// If `id` is not a histogram series.
    pub fn observe_n(&mut self, now: SimTime, id: SeriesId, value: f64, n: u32) {
        self.advance(now.as_f64());
        let s = &mut self.series[id.0];
        let sketch = s
            .sketch
            .as_mut()
            .expect("invariant: observe() requires a histogram series");
        sketch.observe_n(value, n);
    }

    /// The sketch behind histogram series `id` (`None` for counters
    /// and gauges).
    pub fn sketch(&self, id: SeriesId) -> Option<&QuantileSketch> {
        self.series[id.0].sketch.as_ref()
    }

    /// Current value of series `id` (for histogram series, the
    /// cumulative observation count).
    pub fn value(&self, id: SeriesId) -> f64 {
        Self::grid_value(&self.series[id.0])
    }

    /// The series' underlying [`Monitor`] (time-weighted statistics).
    /// Histogram series never update their monitor — read their
    /// [`MetricsRegistry::sketch`] instead.
    pub fn monitor(&self, id: SeriesId) -> &Monitor {
        &self.series[id.0].monitor
    }

    /// Close the run at `now`: take the remaining due snapshots plus a
    /// final one at `now` itself (even off-grid, so the export always
    /// ends with the closing state), and pin the summary horizon.
    pub fn finish(&mut self, now: SimTime) {
        let t = now.as_f64();
        self.advance(t);
        if self.ticks.last() != Some(&t) {
            self.ticks.push(t);
            for s in &mut self.series {
                s.samples.push(Self::grid_value(s));
            }
            // Keep the grid invariant: the next due tick stays ahead.
            while self.next_tick <= t {
                self.next_tick += self.every;
            }
        }
        self.end = Some(t);
    }

    /// Snapshot times taken so far.
    pub fn ticks(&self) -> &[f64] {
        &self.ticks
    }

    /// Sampled values of series `id`, aligned with
    /// [`MetricsRegistry::ticks`].
    pub fn samples(&self, id: SeriesId) -> &[f64] {
        &self.series[id.0].samples
    }

    /// Render the whole registry as one JSON object: the grid, and per
    /// series its kind, summary statistics, final value, and aligned
    /// samples.
    pub fn to_json(&self) -> String {
        let horizon = self
            .end
            .or_else(|| self.ticks.last().copied())
            .unwrap_or(0.0);
        let mut out = String::from("{");
        let _ = write!(out, "\"every\":{}", json_num(self.every));
        let _ = write!(out, ",\"end\":{}", json_num(horizon));
        out.push_str(",\"ticks\":[");
        for (i, t) in self.ticks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_num(*t));
        }
        out.push_str("],\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Histogram series report observation statistics (their
            // monitor is bypassed on the hot path); counters and
            // gauges report the monitor's time-weighted statistics.
            let opt = |v: Option<f64>| v.map_or_else(|| "null".into(), json_num);
            let (fin, mean, min, max) = match &s.sketch {
                Some(sk) => (
                    json_num(Self::grid_value(s)),
                    opt(sk.mean()),
                    opt(sk.min()),
                    opt(sk.max()),
                ),
                None => (
                    json_num(s.monitor.current()),
                    json_num(s.monitor.time_average(SimTime::new(horizon.max(0.0)))),
                    opt(s.monitor.min()),
                    opt(s.monitor.max()),
                ),
            };
            let _ = write!(
                out,
                "{{\"name\":{},\"kind\":\"{}\",\"final\":{},\"mean\":{},\"min\":{},\"max\":{},\"samples\":[",
                json_str(&s.name),
                s.kind.name(),
                fin,
                mean,
                min,
                max,
            );
            for (k, v) in s.samples.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&json_num(*v));
            }
            out.push(']');
            if let Some(sketch) = &s.sketch {
                let _ = write!(out, ",\"sketch\":{}", sketch.to_json());
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Render a float as a JSON number (`null` for non-finite values,
/// which JSON cannot carry). Rust's shortest-roundtrip `Display` is
/// already valid JSON for finite floats.
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Render a string as a JSON string literal with minimal escaping.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> SimTime {
        SimTime::new(v)
    }

    #[test]
    fn snapshots_on_the_grid_are_left_continuous() {
        let mut reg = MetricsRegistry::new(5.0);
        let g = reg.gauge("g");
        reg.set(t(0.0), g, 2.0);
        // The t=0 snapshot fired before the update: initial value 0.
        reg.set(t(5.0), g, 7.0);
        // The t=5 snapshot sampled the value entering t=5.
        reg.finish(t(12.0));
        assert_eq!(reg.ticks(), &[0.0, 5.0, 10.0, 12.0]);
        assert_eq!(reg.samples(g), &[0.0, 2.0, 7.0, 7.0]);
        assert_eq!(reg.value(g), 7.0);
    }

    #[test]
    fn counters_accumulate_and_average() {
        let mut reg = MetricsRegistry::new(10.0);
        let c = reg.counter("served");
        reg.add(t(0.0), c, 1.0);
        reg.add(t(4.0), c, 1.0);
        reg.add(t(8.0), c, 3.0);
        reg.finish(t(10.0));
        assert_eq!(reg.value(c), 5.0);
        assert_eq!(reg.samples(c), &[0.0, 5.0]);
        // Time average of the step function 1·4 + 2·4 + 5·2 over 10.
        assert!((reg.monitor(c).time_average(t(10.0)) - 2.2).abs() < 1e-12);
    }

    #[test]
    fn finish_on_grid_does_not_duplicate_the_tick() {
        let mut reg = MetricsRegistry::new(5.0);
        let g = reg.gauge("g");
        reg.set(t(1.0), g, 4.0);
        reg.finish(t(10.0));
        assert_eq!(reg.ticks(), &[0.0, 5.0, 10.0]);
        assert_eq!(reg.samples(g), &[0.0, 4.0, 4.0]);
    }

    #[test]
    fn json_contains_all_series_and_handles_empties() {
        let mut reg = MetricsRegistry::new(2.0);
        let a = reg.gauge("alpha");
        let _b = reg.counter("beta");
        reg.set(t(1.0), a, 9.0);
        reg.finish(t(3.0));
        let json = reg.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"alpha\""));
        assert!(json.contains("\"kind\":\"gauge\""));
        assert!(json.contains("\"kind\":\"counter\""));
        // beta was never set: its extrema export as null, not ±inf.
        assert!(json.contains("\"min\":null"));
        assert!(!json.contains("inf"));
    }

    #[test]
    fn json_primitives_escape_and_nullify() {
        assert_eq!(json_num(1.0), "1");
        assert_eq!(json_num(0.25), "0.25");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn sketch_is_exact_on_small_inputs_and_bounded_on_spread() {
        let mut sk = QuantileSketch::new();
        assert!(sk.quantile(0.5).is_none());
        for v in [1.0, 2.0, 3.0, 4.0] {
            sk.observe(v);
        }
        assert_eq!(sk.count(), 4);
        assert_eq!(sk.min(), Some(1.0));
        assert_eq!(sk.max(), Some(4.0));
        assert_eq!(sk.mean(), Some(2.5));
        // Nearest-rank p50 of [1,2,3,4] is 2; the estimate must be
        // within GAMMA of it.
        let p50 = sk.quantile(0.5).expect("nonempty");
        assert!((p50 - 2.0).abs() <= 2.0 * QuantileSketch::GAMMA, "{p50}");
        // Extremes stay within the bound and never exceed [min, max].
        let p0 = sk.quantile(0.0).expect("nonempty");
        let p100 = sk.quantile(1.0).expect("nonempty");
        assert!((p0 - 1.0).abs() <= QuantileSketch::GAMMA, "{p0}");
        assert!((1.0..=4.0).contains(&p0) && (1.0..=4.0).contains(&p100));
        assert_eq!(p100, 4.0); // max is a bucket lower bound: clamps exact
    }

    #[test]
    fn sketch_zero_bucket_and_hostile_values() {
        let mut sk = QuantileSketch::new();
        sk.observe(0.0);
        sk.observe(-3.0); // clamps to zero
        sk.observe(f64::NAN); // ignored
        sk.observe(f64::INFINITY); // ignored
        sk.observe(5.0);
        assert_eq!(sk.count(), 3);
        assert_eq!(sk.zero_count(), 2);
        assert_eq!(sk.quantile(0.5), Some(0.0));
        let p100 = sk.quantile(1.0).expect("nonempty");
        assert!((p100 - 5.0).abs() <= 5.0 * QuantileSketch::GAMMA, "{p100}");
        let json = sk.to_json();
        assert!(json.contains("\"count\":3") && json.contains("\"zero\":2"));
    }

    #[test]
    fn sketch_bucketing_is_monotone_and_bit_stable() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut v = 1e-6;
        while v < 1e9 {
            a.observe(v);
            b.observe(v);
            v *= 1.37;
        }
        // Same observation sequence → identical bucket maps, bit for bit.
        assert_eq!(a, b);
        let keys: Vec<u64> = a.buckets().map(|(k, _)| k).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        // Every quantile is within the advertised relative error of
        // some observed value's bucket (spot-check monotonicity too).
        let q25 = a.quantile(0.25).expect("nonempty");
        let q75 = a.quantile(0.75).expect("nonempty");
        assert!(q25 < q75);
    }

    #[test]
    fn histogram_series_exports_sketch_and_counts_on_grid() {
        let mut reg = MetricsRegistry::new(10.0);
        let h = reg.histogram("response");
        reg.observe(t(0.0), h, 4.0);
        reg.observe(t(15.0), h, 8.0);
        reg.observe(t(15.0), h, 2.0);
        reg.finish(t(20.0));
        // Grid carries the cumulative count, left-continuously.
        assert_eq!(reg.samples(h), &[0.0, 1.0, 3.0]);
        let sk = reg.sketch(h).expect("histogram has a sketch");
        assert_eq!(sk.count(), 3);
        let json = reg.to_json();
        assert!(json.contains("\"kind\":\"histogram\""));
        assert!(json.contains("\"sketch\":{\"count\":3"));
        assert!(json.contains("\"p99\":"));
        // Counter/gauge series carry no sketch key.
        let mut plain = MetricsRegistry::new(10.0);
        let _ = plain.gauge("g");
        plain.finish(t(1.0));
        assert!(!plain.to_json().contains("\"sketch\""));
    }

    #[test]
    #[should_panic(expected = "requires a histogram series")]
    fn observe_rejects_non_histogram_series() {
        let mut reg = MetricsRegistry::new(1.0);
        let g = reg.gauge("g");
        reg.observe(t(0.0), g, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_nonpositive_period() {
        let _ = MetricsRegistry::new(0.0);
    }

    #[test]
    #[should_panic(expected = "before the first snapshot")]
    fn rejects_late_registration() {
        let mut reg = MetricsRegistry::new(1.0);
        let g = reg.gauge("g");
        reg.set(t(0.5), g, 1.0);
        let _ = reg.counter("late");
    }
}
