//! The typed event calendar: the zero-allocation sibling of
//! [`crate::engine::Engine`].
//!
//! [`Calendar<E>`] stores plain event *values* instead of boxed
//! closures. Each heap entry packs the `(time, seq)` ordering key into
//! one integer and carries its payload inline; cancellable events are
//! additionally backed by a generation slab addressed by
//! [`EventHandle`]s, while fire-and-forget events ([`Calendar::post`])
//! skip the slab entirely. That buys the hot path three things the
//! closure calendar cannot offer:
//!
//! * **no per-event heap allocation** — scheduling an event reuses a
//!   slab slot and pushes a `Copy` entry onto the heap; once the heap
//!   and slab have grown to their high-water mark, the steady state
//!   allocates nothing at all;
//! * **O(1) cancellation without hash sets** — cancelling bumps the
//!   slot's generation, instantly invalidating the matching heap entry
//!   (validity at pop time is a single integer compare against the
//!   slab, replacing the `alive`/`cancelled` `HashSet` pair);
//! * **an inverted control flow** — [`Calendar::pop`] hands the next
//!   event *value* back to the caller, so the driving loop owns its
//!   state directly (`&mut Sim`) instead of threading it through
//!   `Rc<RefCell<..>>` captures.
//!
//! Ordering is identical to the closure engine: earliest time first,
//! ties broken by insertion sequence number, which keeps runs
//! bit-for-bit deterministic. The two calendars deliberately coexist —
//! `Engine` remains the ergonomic choice for doc examples and
//! ad-hoc models, `Calendar<E>` is the substrate for engines with a
//! closed event vocabulary (see `nds-sched`'s `SchedEvent`).

use crate::error::DesError;
use crate::time::SimTime;
use crate::trace::{NoTrace, Tracer};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Identifies a scheduled event in a [`Calendar`], usable for
/// cancellation. Handles are generation-counted: once the event fires
/// or is cancelled, the handle goes stale and all further operations
/// on it are no-ops — even if the underlying slot has been reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    slot: u32,
    gen: u32,
}

/// The `(time, seq)` ordering key packed into one `u128` integer
/// compare: the IEEE-754 bits of a nonnegative finite `f64` order
/// exactly like the float itself, so `time_bits << 64 | seq` is the
/// lexicographic key — one branchless compare per heap sift step
/// instead of a float compare plus a tie-break branch. (`t + 0.0`
/// normalizes a negative zero, whose sign bit would otherwise invert
/// its ordering.)
fn pack_key(time: SimTime, seq: u64) -> u128 {
    let bits = (time.as_f64() + 0.0).to_bits();
    (u128::from(bits)) << 64 | u128::from(seq)
}

/// Slot sentinel marking an entry scheduled through [`Calendar::post`]:
/// no slab slot backs it, it cannot be cancelled, and pop-time validity
/// needs no check at all.
const UNMANAGED: u32 = u32::MAX;

/// One heap entry: packed ordering key, the event payload *inline*
/// (nothing is fetched from a side table on the hot path), and — for
/// cancellable events — the generation-checked slab coordinates.
#[derive(Debug, Clone, Copy)]
struct Entry<E> {
    /// [`pack_key`] of `(time, seq)`.
    key: u128,
    payload: E,
    /// Slab slot validating this entry, or [`UNMANAGED`].
    slot: u32,
    gen: u32,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first,
// exactly as the closure engine does.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key)
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Recover the event time from a packed key (the high 64 bits are the
/// normalized IEEE bits of the time).
fn key_time(key: u128) -> SimTime {
    SimTime::from_trusted(f64::from_bits((key >> 64) as u64))
}

/// A typed event calendar + simulation clock.
///
/// The second type parameter is a [`Tracer`] observing the event flow;
/// it defaults to the zero-sized [`NoTrace`], whose `ENABLED = false`
/// makes every hook site statically dead — a `Calendar<E>` is
/// bit-for-bit the pre-tracing calendar. Pass a real tracer via
/// [`Calendar::with_tracer`] to observe schedules/pops/cancels without
/// touching the engine code (see [`crate::CalendarProbe`]).
///
/// # Example
///
/// ```
/// use nds_des::{Calendar, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::new(2.0), Ev::Pong).unwrap();
/// cal.schedule(SimTime::new(1.0), Ev::Ping).unwrap();
/// let (t, ev) = cal.pop().unwrap();
/// assert_eq!((t.as_f64(), ev), (1.0, Ev::Ping));
/// let (t, ev) = cal.pop().unwrap();
/// assert_eq!((t.as_f64(), ev), (2.0, Ev::Pong));
/// assert!(cal.pop().is_none());
/// assert_eq!(cal.now().as_f64(), 2.0);
/// ```
#[derive(Debug)]
pub struct Calendar<E, T = NoTrace> {
    clock: SimTime,
    next_seq: u64,
    heap: BinaryHeap<Entry<E>>,
    /// Per-slot retirement generation; a handle or heap entry is live
    /// only while its recorded generation matches. (Payloads live in
    /// the heap entries themselves — the slab holds nothing but
    /// generations.)
    gens: Vec<u32>,
    /// Retired slot indices awaiting reuse.
    free: Vec<u32>,
    /// Pre-sorted far-future events ([`Calendar::schedule_sorted`]),
    /// consumed front to back and merged with the heap at pop time by
    /// `(time, seq)` (stored packed). Keeps statically-known event
    /// streams (e.g. an open workload's arrival sequence) out of the
    /// heap, so heap depth tracks the *live horizon*, not the whole
    /// experiment.
    backlog: VecDeque<(SimTime, u128, E)>,
    /// The backlog head's packed key, or `u128::MAX` when the backlog
    /// is empty — saves the deque deref on every pop.
    backlog_head: u128,
    /// Scheduled-but-not-yet-fired-or-cancelled events.
    live: usize,
    executed: u64,
    /// The observing [`Tracer`] — zero-sized and statically ignored
    /// for the default [`NoTrace`].
    tracer: T,
}

impl<E, T: Tracer<E> + Default> Default for Calendar<E, T> {
    fn default() -> Self {
        Self::with_tracer(0, T::default())
    }
}

// `new`/`with_capacity` are defined only for the `NoTrace` calendar so
// plain `Calendar::new()` expressions keep inferring the default
// tracer (type-parameter defaults do not participate in expression
// inference); traced calendars come from `with_tracer`.
impl<E> Calendar<E> {
    /// A fresh calendar at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A fresh calendar with room for `capacity` simultaneous events
    /// before any allocation.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_tracer(capacity, NoTrace)
    }
}

impl<E, T: Tracer<E>> Calendar<E, T> {
    /// A fresh calendar observed by `tracer`.
    pub fn with_tracer(capacity: usize, tracer: T) -> Self {
        Self {
            clock: SimTime::ZERO,
            next_seq: 0,
            heap: BinaryHeap::with_capacity(capacity),
            gens: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            backlog: VecDeque::new(),
            backlog_head: u128::MAX,
            live: 0,
            executed: 0,
            tracer,
        }
    }

    /// The observing tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// The observing tracer, mutably (to drain buffered observations
    /// mid-run).
    pub fn tracer_mut(&mut self) -> &mut T {
        &mut self.tracer
    }

    /// Consume the calendar and hand back its tracer.
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (excluding cancelled ones).
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Whether no event is pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `event` at absolute time `at` (>= now).
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) -> Result<EventHandle, DesError> {
        if at < self.clock {
            return Err(DesError::ScheduleInPast {
                now: self.clock.as_f64(),
                requested: at.as_f64(),
            });
        }
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.gens.len()).expect("slab outgrew u32 indices");
                assert!(slot != UNMANAGED, "slab outgrew u32 indices");
                self.gens.push(0);
                slot
            }
        };
        let gen = self.gens[slot as usize];
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        if T::ENABLED {
            self.tracer.on_schedule(at, &event);
        }
        self.heap.push(Entry {
            key: pack_key(at, seq),
            payload: event,
            slot,
            gen,
        });
        Ok(EventHandle { slot, gen })
    }

    /// Schedule `event` to fire `delay` after the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, event: E) -> Result<EventHandle, DesError> {
        self.schedule(self.clock + delay, event)
    }

    /// Bulk-schedule a time-sorted stream of far-future events without
    /// routing them through the heap.
    ///
    /// The events enter a FIFO backlog that [`Calendar::pop`] merges
    /// with the heap by `(time, seq)`; sequence numbers are allocated
    /// here, in iteration order, exactly as if each event had been
    /// [`Calendar::schedule`]d in turn — tie-breaking against heap
    /// events and within the batch is therefore *identical* to the
    /// plain path. What changes is purely mechanical: the heap (and
    /// slab) stay sized to the live event horizon instead of holding
    /// the whole experiment's arrival stream, which is worth a large
    /// constant factor on open-stream workloads (see `perf_core`).
    ///
    /// Backlog events cannot be cancelled (no handles are returned) —
    /// use the plain path for anything that might be revoked. Times
    /// must be nondecreasing within the batch, at or after the current
    /// clock, and at or after any earlier backlog tail; a violating
    /// event returns [`DesError::ScheduleInPast`] and leaves the
    /// events before it scheduled.
    pub fn schedule_sorted(
        &mut self,
        events: impl IntoIterator<Item = (SimTime, E)>,
    ) -> Result<(), DesError> {
        for (at, event) in events {
            let floor = self
                .backlog
                .back()
                .map_or(self.clock, |&(t, _, _)| t.max(self.clock));
            if at < floor {
                return Err(DesError::ScheduleInPast {
                    now: floor.as_f64(),
                    requested: at.as_f64(),
                });
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.live += 1;
            if T::ENABLED {
                self.tracer.on_schedule(at, &event);
            }
            let key = pack_key(at, seq);
            if self.backlog.is_empty() {
                self.backlog_head = key;
            }
            self.backlog.push_back((at, key, event));
        }
        Ok(())
    }

    /// Whether `handle` refers to a still-pending event.
    pub fn is_live(&self, handle: EventHandle) -> bool {
        self.gens
            .get(handle.slot as usize)
            .is_some_and(|&gen| gen == handle.gen)
    }

    /// Schedule an *uncancellable* event at absolute time `at`
    /// (>= now): no handle is returned and no slab slot is consumed,
    /// so pop-time validity needs no generation check at all. The
    /// fire-and-forget lane for events that are never revoked (owner
    /// arrivals/departures, job arrivals); ordering against
    /// [`Calendar::schedule`]d events is identical (one shared
    /// sequence counter).
    #[inline]
    pub fn post(&mut self, at: SimTime, event: E) -> Result<(), DesError> {
        if at < self.clock {
            return Err(DesError::ScheduleInPast {
                now: self.clock.as_f64(),
                requested: at.as_f64(),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        if T::ENABLED {
            self.tracer.on_schedule(at, &event);
        }
        self.heap.push(Entry {
            key: pack_key(at, seq),
            payload: event,
            slot: UNMANAGED,
            gen: 0,
        });
        Ok(())
    }

    /// [`Calendar::post`] at `delay` after the current time.
    #[inline]
    pub fn post_in(&mut self, delay: SimTime, event: E) -> Result<(), DesError> {
        self.post(self.clock + delay, event)
    }

    /// Cancel a pending event. Returns `true` if the event existed and
    /// had not yet fired; `false` for a stale handle (the event
    /// already fired or was cancelled — cancellation is idempotent).
    /// The matching heap entry is invalidated by the generation bump
    /// and skipped at pop time.
    #[inline]
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        match self.gens.get_mut(handle.slot as usize) {
            Some(gen) if *gen == handle.gen => {
                *gen = gen.wrapping_add(1);
                self.free.push(handle.slot);
                self.live -= 1;
                if T::ENABLED {
                    self.tracer.on_cancel(self.clock);
                }
                true
            }
            _ => false,
        }
    }

    /// Drop cancelled entries off the top of the heap so `peek` sees a
    /// live entry (or nothing).
    fn clean_top(&mut self) {
        while let Some(entry) = self.heap.peek() {
            if entry.slot == UNMANAGED || self.gens[entry.slot as usize] == entry.gen {
                return;
            }
            // Stale: the event was cancelled (and the slot perhaps
            // reused since); drop the entry and keep looking.
            self.heap.pop();
        }
    }

    /// Remove and return the next event, advancing the clock to its
    /// time, or `None` when the calendar is empty. Cancelled entries
    /// encountered on the way are discarded without counting as
    /// executed. Heap and backlog events interleave by `(time, seq)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.clean_top();
        let from_backlog = match self.heap.peek() {
            None if self.backlog_head == u128::MAX => return None,
            None => true,
            Some(entry) => self.backlog_head < entry.key,
        };
        let (key, event) = if from_backlog {
            let (_, key, event) = self.backlog.pop_front().expect("head key was live");
            self.backlog_head = self.backlog.front().map_or(u128::MAX, |&(_, k, _)| k);
            (key, event)
        } else {
            let entry = self.heap.pop().expect("peeked above");
            if entry.slot != UNMANAGED {
                self.gens[entry.slot as usize] = self.gens[entry.slot as usize].wrapping_add(1);
                self.free.push(entry.slot);
            }
            (entry.key, entry.payload)
        };
        self.live -= 1;
        let time = key_time(key);
        debug_assert!(time >= self.clock, "time went backwards");
        self.clock = time;
        self.executed += 1;
        if T::ENABLED {
            self.tracer.on_pop(time, &event);
        }
        Some((time, event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Tag(u32);

    fn drain(cal: &mut Calendar<Tag>) -> Vec<(f64, u32)> {
        std::iter::from_fn(|| cal.pop())
            .map(|(t, Tag(tag))| (t.as_f64(), tag))
            .collect()
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut cal = Calendar::new();
        for (i, &t) in [5.0, 1.0, 3.0].iter().enumerate() {
            cal.schedule(SimTime::new(t), Tag(i as u32)).unwrap();
        }
        assert_eq!(drain(&mut cal), vec![(1.0, 1), (3.0, 2), (5.0, 0)]);
        assert_eq!(cal.executed(), 3);
        assert_eq!(cal.now().as_f64(), 5.0);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut cal = Calendar::new();
        for tag in 0..5 {
            cal.schedule(SimTime::new(2.0), Tag(tag)).unwrap();
        }
        let tags: Vec<u32> = drain(&mut cal).into_iter().map(|(_, tag)| tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn scheduling_in_past_rejected() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(10.0), Tag(0)).unwrap();
        cal.pop().unwrap();
        assert!(matches!(
            cal.schedule(SimTime::new(5.0), Tag(1)),
            Err(DesError::ScheduleInPast { .. })
        ));
        // Scheduling exactly at the clock is fine.
        cal.schedule(SimTime::new(10.0), Tag(2)).unwrap();
        assert_eq!(cal.pending(), 1);
    }

    #[test]
    fn cancel_prevents_execution_once() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1.0), Tag(7)).unwrap();
        assert!(cal.is_live(h));
        assert!(cal.cancel(h));
        assert!(!cal.is_live(h));
        assert!(!cal.cancel(h), "double cancel is a no-op");
        assert!(cal.pop().is_none(), "cancelled events never fire");
        assert_eq!(cal.executed(), 0);
    }

    #[test]
    fn stale_handles_survive_slot_reuse() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::new(1.0), Tag(1)).unwrap();
        assert!(cal.cancel(a));
        // The slot is reused by a fresh event; the old handle must not
        // be able to touch it.
        let b = cal.schedule(SimTime::new(2.0), Tag(2)).unwrap();
        assert!(!cal.cancel(a));
        assert!(cal.is_live(b));
        assert_eq!(cal.pop(), Some((SimTime::new(2.0), Tag(2))));
        // And a handle that already fired is equally dead.
        assert!(!cal.cancel(b));
    }

    #[test]
    fn posted_events_interleave_with_scheduled_ones() {
        let mut cal = Calendar::new();
        cal.post(SimTime::new(2.0), Tag(0)).unwrap();
        let h = cal.schedule(SimTime::new(1.0), Tag(1)).unwrap();
        cal.post(SimTime::new(1.0), Tag(2)).unwrap();
        cal.post_in(SimTime::new(3.0), Tag(3)).unwrap();
        assert_eq!(cal.pending(), 4);
        // Tie at t=1.0 breaks by insertion order: the handle first.
        assert_eq!(cal.pop(), Some((SimTime::new(1.0), Tag(1))));
        assert_eq!(cal.pop(), Some((SimTime::new(1.0), Tag(2))));
        assert_eq!(cal.pop(), Some((SimTime::new(2.0), Tag(0))));
        assert_eq!(cal.pop(), Some((SimTime::new(3.0), Tag(3))));
        assert!(cal.pop().is_none());
        let _ = h;
        // Posting into the past is rejected like scheduling.
        assert!(matches!(
            cal.post(SimTime::new(1.0), Tag(9)),
            Err(DesError::ScheduleInPast { .. })
        ));
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::new(1.0), Tag(0)).unwrap();
        cal.schedule(SimTime::new(2.0), Tag(1)).unwrap();
        assert_eq!(cal.pending(), 2);
        cal.cancel(a);
        assert_eq!(cal.pending(), 1);
        assert!(!cal.is_empty());
        cal.pop();
        assert!(cal.is_empty());
    }

    #[test]
    fn schedule_in_offsets_from_the_clock() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(3.0), Tag(0)).unwrap();
        cal.pop().unwrap();
        cal.schedule_in(SimTime::new(4.0), Tag(1)).unwrap();
        assert_eq!(cal.pop(), Some((SimTime::new(7.0), Tag(1))));
    }

    #[test]
    fn slab_reuses_slots_without_growth() {
        let mut cal = Calendar::new();
        // Steady-state schedule/pop churn must stay within the slab's
        // high-water mark: two slots for two simultaneous events.
        let mut handles = Vec::new();
        for round in 0..100u32 {
            let t = SimTime::new(f64::from(round) + 1.0);
            handles.push(cal.schedule(t, Tag(round)).unwrap());
            cal.schedule(t, Tag(round + 1000)).unwrap();
            cal.pop().unwrap();
            cal.pop().unwrap();
        }
        assert_eq!(cal.gens.len(), 2, "slab high-water mark is 2 slots");
        assert_eq!(cal.executed(), 200);
        for h in handles {
            assert!(!cal.is_live(h), "fired handles are all stale");
        }
    }
}
