//! Simulation time.
//!
//! Time is an `f64` wrapped in a newtype with a total order, so it can
//! key the event calendar. The discrete-time replica of the paper's
//! model uses integer-valued times exactly representable in `f64`; the
//! continuous-time generalizations use arbitrary nonnegative reals.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time. Always finite and nonnegative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from a nonnegative, finite number of time units.
    pub fn new(t: f64) -> Self {
        assert!(
            t.is_finite() && t >= 0.0,
            "SimTime must be finite and >= 0, got {t}"
        );
        // `+ 0.0` maps -0.0 to +0.0 (IEEE 754), keeping `Ord` (via
        // `total_cmp`, where -0.0 < +0.0) consistent with `PartialEq`.
        SimTime(t + 0.0)
    }

    /// The raw value in time units.
    pub fn as_f64(&self) -> f64 {
        self.0
    }

    /// Construct from a value already known to be finite and
    /// nonnegative (e.g. round-tripped through a calendar key) without
    /// re-running the public constructor's assertion on the hot path.
    pub(crate) fn from_trusted(t: f64) -> Self {
        debug_assert!(t.is_finite() && t >= 0.0, "trusted SimTime {t}");
        SimTime(t + 0.0)
    }

    /// Saturating subtraction (never goes below zero).
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0) + 0.0)
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

// `total_cmp` gives a branch-free total order with no NaN escape hatch;
// constructors normalize -0.0 to +0.0 so it agrees with `PartialEq`.
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::new(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::new(self.0 - rhs.0)
    }
}

impl From<f64> for SimTime {
    fn from(t: f64) -> Self {
        SimTime::new(t)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.5);
        assert!(a < b);
        assert_eq!((a + b).as_f64(), 3.5);
        assert_eq!((b - a).as_f64(), 1.5);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a).as_f64(), 1.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        t += SimTime::new(3.0);
        t += SimTime::new(4.0);
        assert_eq!(t.as_f64(), 7.0);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn rejects_negative() {
        SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn rejects_nan() {
        SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic]
    fn subtraction_below_zero_panics() {
        let _ = SimTime::new(1.0) - SimTime::new(2.0);
    }

    #[test]
    fn negative_zero_normalizes() {
        // -0.0 passes the `>= 0` assertion; under `total_cmp` it sorts
        // before +0.0, so constructors must normalize it away.
        let neg = SimTime::new(-0.0);
        assert_eq!(neg.cmp(&SimTime::ZERO), Ordering::Equal);
        assert_eq!(neg.as_f64().to_bits(), 0.0f64.to_bits());
        let sat = SimTime::new(1.0).saturating_sub(SimTime::new(1.0));
        assert_eq!(sat.as_f64().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn from_and_display() {
        let t: SimTime = 4.25.into();
        assert_eq!(t.to_string(), "4.25");
    }
}
