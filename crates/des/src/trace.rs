//! Event tracing: the zero-cost [`Tracer`] hook trait wired through
//! [`crate::Calendar`], plus the legacy [`TraceLog`] ring buffer.
//!
//! # The `Tracer` trait
//!
//! [`Calendar<E, T>`](crate::Calendar) carries a tracer as a *generic
//! parameter* defaulting to the zero-sized [`NoTrace`]. Every hook call
//! inside the calendar is guarded by `if T::ENABLED`, a constant the
//! optimizer resolves per monomorphization — with `NoTrace` the guard
//! is `if false` and the disabled path compiles to exactly the code
//! that existed before tracing was added (no branch, no call, no extra
//! field reads). Enabling tracing is purely a type-level opt-in:
//!
//! ```
//! use nds_des::{Calendar, CalendarProbe, SimTime};
//!
//! let mut cal: Calendar<u32, CalendarProbe> = Calendar::with_tracer(0, CalendarProbe::default());
//! cal.schedule(SimTime::new(1.0), 7).unwrap();
//! let h = cal.schedule(SimTime::new(2.0), 8).unwrap();
//! cal.cancel(h);
//! cal.pop().unwrap();
//! let probe = cal.tracer();
//! assert_eq!((probe.schedules(), probe.pops(), probe.cancels()), (2, 1, 1));
//! assert_eq!(probe.high_water(), 2);
//! ```
//!
//! Higher layers define richer tracers on the same pattern (see
//! `nds-sched`'s `SchedTracer` / flight recorder); this module only
//! owns the calendar-level vocabulary.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// Observer of a [`crate::Calendar`]'s event flow.
///
/// All hooks default to no-ops, so a tracer implements only what it
/// cares about. `ENABLED` defaults to `true`; the one implementation
/// that sets it `false` is [`NoTrace`], which turns every hook site
/// into statically dead code.
pub trait Tracer<E> {
    /// Whether the calendar should invoke the hooks at all. Checked as
    /// `if T::ENABLED` on every hot-path call site, so a `false` here
    /// removes the tracing code at monomorphization time.
    const ENABLED: bool = true;

    /// An event was scheduled (or posted / backlogged) for time `at`.
    #[inline]
    fn on_schedule(&mut self, at: SimTime, event: &E) {
        let _ = (at, event);
    }

    /// An event is about to be delivered at time `at`.
    #[inline]
    fn on_pop(&mut self, at: SimTime, event: &E) {
        let _ = (at, event);
    }

    /// A pending event was cancelled at clock time `now`.
    #[inline]
    fn on_cancel(&mut self, now: SimTime) {
        let _ = now;
    }
}

/// The zero-sized "tracing off" tracer: `ENABLED = false` makes every
/// hook site in [`crate::Calendar`] statically dead, so
/// `Calendar<E, NoTrace>` (the default) monomorphizes to exactly the
/// pre-tracing calendar. This is the type parameter's default, so
/// existing code compiles — and runs — unchanged.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NoTrace;

impl<E> Tracer<E> for NoTrace {
    const ENABLED: bool = false;
}

/// A counting tracer: schedules, pops, cancels, and the concurrent
/// live-event high-water mark. Event-type agnostic — useful to size
/// calendars ([`crate::Calendar::with_capacity`]) and to sanity-check
/// engines (`schedules == pops + cancels` once a run drains).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CalendarProbe {
    schedules: u64,
    pops: u64,
    cancels: u64,
    high_water: u64,
}

impl CalendarProbe {
    /// Events scheduled (all lanes: `schedule`, `post`,
    /// `schedule_sorted`).
    pub fn schedules(&self) -> u64 {
        self.schedules
    }

    /// Events delivered.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Events cancelled before firing.
    pub fn cancels(&self) -> u64 {
        self.cancels
    }

    /// Maximum number of simultaneously pending events observed.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Events scheduled but neither delivered nor cancelled yet.
    pub fn outstanding(&self) -> u64 {
        self.schedules - self.pops - self.cancels
    }
}

impl<E> Tracer<E> for CalendarProbe {
    #[inline]
    fn on_schedule(&mut self, _at: SimTime, _event: &E) {
        self.schedules += 1;
        self.high_water = self.high_water.max(self.outstanding());
    }

    #[inline]
    fn on_pop(&mut self, _at: SimTime, _event: &E) {
        self.pops += 1;
    }

    #[inline]
    fn on_cancel(&mut self, _now: SimTime) {
        self.cancels += 1;
    }
}

/// One traced occurrence inside a simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Component that emitted it (e.g. `"ws-3"`).
    pub source: String,
    /// What happened (e.g. `"owner preempts task"`).
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] {}: {}", self.time, self.source, self.message)
    }
}

/// A bounded ring buffer of trace events — the free-form, string-y
/// debugging log (the structured, typed path is the [`Tracer`] trait).
/// Disabled logs (capacity 0) cost one branch per emit.
#[derive(Debug, Clone)]
pub struct TraceLog {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    emitted: u64,
}

impl TraceLog {
    /// A log retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            emitted: 0,
        }
    }

    /// A log that records nothing (but still counts emissions).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether events are being retained.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Emit an event.
    pub fn emit(&mut self, time: SimTime, source: impl Into<String>, message: impl Into<String>) {
        self.emitted += 1;
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(TraceEvent {
            time,
            source: source.into(),
            message: message.into(),
        });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Total events ever emitted (including dropped ones).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the retained events as lines.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::Calendar;

    fn t(v: f64) -> SimTime {
        SimTime::new(v)
    }

    #[test]
    fn retains_in_order() {
        let mut tr = TraceLog::new(10);
        tr.emit(t(1.0), "a", "one");
        tr.emit(t(2.0), "b", "two");
        let msgs: Vec<_> = tr.events().map(|e| e.message.clone()).collect();
        assert_eq!(msgs, vec!["one", "two"]);
        assert_eq!(tr.len(), 2);
        assert!(!tr.is_empty());
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut tr = TraceLog::new(3);
        for i in 0..5 {
            tr.emit(t(i as f64), "s", format!("m{i}"));
        }
        let msgs: Vec<_> = tr.events().map(|e| e.message.clone()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
        assert_eq!(tr.emitted(), 5);
    }

    #[test]
    fn disabled_log_counts_only() {
        let mut tr = TraceLog::disabled();
        assert!(!tr.is_enabled());
        tr.emit(t(0.0), "s", "m");
        assert_eq!(tr.emitted(), 1);
        assert!(tr.is_empty());
    }

    #[test]
    fn dump_formats_lines() {
        let mut tr = TraceLog::new(4);
        tr.emit(t(1.5), "ws-0", "owner preempts task");
        let dump = tr.dump();
        assert!(dump.contains("ws-0"));
        assert!(dump.contains("owner preempts task"));
        assert!(dump.contains("1.5"));
    }

    #[test]
    fn no_trace_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoTrace>(), 0);
        const { assert!(!<NoTrace as Tracer<u32>>::ENABLED) };
        const { assert!(<CalendarProbe as Tracer<u32>>::ENABLED) };
        // A NoTrace calendar is the same size as the tracer-less one
        // was: the field is zero-sized.
        assert_eq!(
            std::mem::size_of::<Calendar<u32>>(),
            std::mem::size_of::<Calendar<u32, NoTrace>>()
        );
    }

    #[test]
    fn probe_counts_all_lanes() {
        let mut cal: Calendar<u32, CalendarProbe> =
            Calendar::with_tracer(4, CalendarProbe::default());
        cal.schedule(t(1.0), 1).unwrap();
        cal.post(t(2.0), 2).unwrap();
        cal.schedule_sorted([(t(5.0), 3), (t(6.0), 4)]).unwrap();
        let h = cal.schedule(t(3.0), 5).unwrap();
        assert_eq!(cal.tracer().schedules(), 5);
        assert_eq!(cal.tracer().high_water(), 5);
        assert!(cal.cancel(h));
        assert_eq!(cal.tracer().cancels(), 1);
        while cal.pop().is_some() {}
        let probe = cal.into_tracer();
        assert_eq!(probe.pops(), 4);
        assert_eq!(probe.outstanding(), 0);
        assert_eq!(probe.high_water(), 5, "high water survives the drain");
    }
}
