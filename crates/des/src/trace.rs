//! Structured event tracing for debugging simulations.
//!
//! A [`Tracer`] is a bounded ring buffer of [`TraceEvent`]s. Simulation
//! components emit events through it; when a run misbehaves the last `N`
//! events explain what happened without the cost of unbounded logging.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One traced occurrence inside a simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Component that emitted it (e.g. `"ws-3"`).
    pub source: String,
    /// What happened (e.g. `"owner preempts task"`).
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] {}: {}", self.time, self.source, self.message)
    }
}

/// A bounded ring buffer of trace events. Disabled tracers (capacity 0)
/// cost one branch per emit.
#[derive(Debug, Clone)]
pub struct Tracer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    emitted: u64,
}

impl Tracer {
    /// A tracer retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            emitted: 0,
        }
    }

    /// A tracer that records nothing (but still counts emissions).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether events are being retained.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Emit an event.
    pub fn emit(&mut self, time: SimTime, source: impl Into<String>, message: impl Into<String>) {
        self.emitted += 1;
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(TraceEvent {
            time,
            source: source.into(),
            message: message.into(),
        });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Total events ever emitted (including dropped ones).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the retained events as lines.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> SimTime {
        SimTime::new(v)
    }

    #[test]
    fn retains_in_order() {
        let mut tr = Tracer::new(10);
        tr.emit(t(1.0), "a", "one");
        tr.emit(t(2.0), "b", "two");
        let msgs: Vec<_> = tr.events().map(|e| e.message.clone()).collect();
        assert_eq!(msgs, vec!["one", "two"]);
        assert_eq!(tr.len(), 2);
        assert!(!tr.is_empty());
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut tr = Tracer::new(3);
        for i in 0..5 {
            tr.emit(t(i as f64), "s", format!("m{i}"));
        }
        let msgs: Vec<_> = tr.events().map(|e| e.message.clone()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
        assert_eq!(tr.emitted(), 5);
    }

    #[test]
    fn disabled_tracer_counts_only() {
        let mut tr = Tracer::disabled();
        assert!(!tr.is_enabled());
        tr.emit(t(0.0), "s", "m");
        assert_eq!(tr.emitted(), 1);
        assert!(tr.is_empty());
    }

    #[test]
    fn dump_formats_lines() {
        let mut tr = Tracer::new(4);
        tr.emit(t(1.5), "ws-0", "owner preempts task");
        let dump = tr.dump();
        assert!(dump.contains("ws-0"));
        assert!(dump.contains("owner preempts task"));
        assert!(dump.contains("1.5"));
    }
}
