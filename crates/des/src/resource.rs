//! A multi-server preemptive-priority resource.
//!
//! [`Facility`](crate::facility::Facility) models the paper's
//! single-CPU workstation. `MultiFacility` generalizes to `k` servers —
//! an SMP workstation where up to `k` requests run concurrently and a
//! high-priority arrival evicts the *lowest-priority* running request
//! when no server is free. Used by the multiprocessor-workstation
//! extension experiments.

use crate::error::DesError;
use crate::facility::{Preempted, Request, RequestId, RequestOutcome};
use crate::time::SimTime;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct Active {
    id: RequestId,
    priority: i32,
    since: SimTime,
    remaining: f64,
}

/// `k`-server preempt-resume resource with FIFO order within a
/// priority class.
#[derive(Debug, Clone)]
pub struct MultiFacility {
    name: String,
    servers: usize,
    active: Vec<Active>,
    queue: VecDeque<(i32, RequestId, f64)>,
    busy_area: f64,
    completions: u64,
    preemptions: u64,
}

impl MultiFacility {
    /// A resource with `servers >= 1` identical servers.
    pub fn new(name: impl Into<String>, servers: usize) -> Self {
        assert!(servers >= 1, "need at least one server");
        Self {
            name: name.into(),
            servers,
            active: Vec::with_capacity(servers),
            queue: VecDeque::new(),
            busy_area: 0.0,
            completions: 0,
            preemptions: 0,
        }
    }

    /// The resource's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Requests currently in service.
    pub fn in_service(&self) -> Vec<RequestId> {
        self.active.iter().map(|a| a.id).collect()
    }

    /// Queued (waiting) request count.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Completed services so far.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Preemptions so far.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Cumulative busy server-time up to `now`.
    pub fn busy_time(&self, now: SimTime) -> f64 {
        let mut area = self.busy_area;
        for a in &self.active {
            area += (now.max(a.since) - a.since).as_f64();
        }
        area
    }

    /// Submit a request at `now`. Mirrors
    /// [`Facility::submit`](crate::facility::Facility::submit) but may
    /// run up to `servers` requests concurrently.
    pub fn submit(
        &mut self,
        now: SimTime,
        req: Request,
    ) -> Result<(RequestOutcome, Option<Preempted>), DesError> {
        if !req.demand.is_finite() || req.demand <= 0.0 {
            return Err(DesError::InvalidDemand { value: req.demand });
        }
        if self.active.len() < self.servers {
            self.active.push(Active {
                id: req.id,
                priority: req.priority,
                since: now,
                remaining: req.demand,
            });
            return Ok((
                RequestOutcome::Started {
                    completion: now + SimTime::new(req.demand),
                },
                None,
            ));
        }
        // All servers busy: find the weakest running request.
        let victim_idx = self
            .active
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.priority
                    .cmp(&b.priority)
                    // Among equals, evict the most recently started.
                    .then_with(|| b.since.cmp(&a.since))
            })
            .map(|(i, _)| i)
            .expect("servers are busy");
        if self.active[victim_idx].priority < req.priority {
            let victim = self.active[victim_idx];
            let done = (now - victim.since).as_f64();
            let remaining = (victim.remaining - done).max(0.0);
            self.busy_area += done;
            self.preemptions += 1;
            self.queue
                .push_front((victim.priority, victim.id, remaining));
            self.active[victim_idx] = Active {
                id: req.id,
                priority: req.priority,
                since: now,
                remaining: req.demand,
            };
            Ok((
                RequestOutcome::Started {
                    completion: now + SimTime::new(req.demand),
                },
                Some(Preempted {
                    id: victim.id,
                    remaining,
                }),
            ))
        } else {
            self.queue.push_back((req.priority, req.id, req.demand));
            Ok((RequestOutcome::Queued, None))
        }
    }

    /// Complete the in-service request with the given id at `now`.
    /// Returns the promoted request (if any) and its completion time.
    pub fn complete(
        &mut self,
        now: SimTime,
        id: RequestId,
    ) -> Result<Option<(RequestId, SimTime)>, DesError> {
        let idx = self
            .active
            .iter()
            .position(|a| a.id == id)
            .ok_or(DesError::UnknownRequest { id })?;
        let finished = self.active.swap_remove(idx);
        self.busy_area += (now - finished.since).as_f64();
        self.completions += 1;
        // Promote the strongest waiter.
        let best = self
            .queue
            .iter()
            .enumerate()
            .max_by(|(ia, (pa, _, _)), (ib, (pb, _, _))| pa.cmp(pb).then_with(|| ib.cmp(ia)))
            .map(|(i, _)| i);
        Ok(best
            .and_then(|i| self.queue.remove(i))
            .map(|(priority, id, remaining)| {
                self.active.push(Active {
                    id,
                    priority,
                    since: now,
                    remaining,
                });
                (id, now + SimTime::new(remaining))
            }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> SimTime {
        SimTime::new(v)
    }

    fn req(id: RequestId, priority: i32, demand: f64) -> Request {
        Request {
            id,
            priority,
            demand,
        }
    }

    #[test]
    fn k_requests_run_concurrently() {
        let mut f = MultiFacility::new("smp", 2);
        let (o1, _) = f.submit(t(0.0), req(1, 0, 5.0)).unwrap();
        let (o2, _) = f.submit(t(0.0), req(2, 0, 5.0)).unwrap();
        assert!(matches!(o1, RequestOutcome::Started { .. }));
        assert!(matches!(o2, RequestOutcome::Started { .. }));
        let (o3, _) = f.submit(t(0.0), req(3, 0, 5.0)).unwrap();
        assert_eq!(o3, RequestOutcome::Queued);
        assert_eq!(f.in_service().len(), 2);
        assert_eq!(f.queue_len(), 1);
    }

    #[test]
    fn owner_preempts_weakest_task_only_when_full() {
        let mut f = MultiFacility::new("smp", 2);
        f.submit(t(0.0), req(1, 0, 10.0)).unwrap();
        // Second server free: owner takes it, no preemption.
        let (_, pre) = f.submit(t(1.0), req(100, 10, 2.0)).unwrap();
        assert!(pre.is_none());
        // Third arrival (owner) must evict the task, not the owner.
        let (_, pre) = f.submit(t(1.5), req(101, 10, 2.0)).unwrap();
        let pre = pre.unwrap();
        assert_eq!(pre.id, 1);
        assert_eq!(pre.remaining, 8.5);
        assert_eq!(f.preemptions(), 1);
    }

    #[test]
    fn equal_priority_never_preempts() {
        let mut f = MultiFacility::new("smp", 1);
        f.submit(t(0.0), req(1, 5, 5.0)).unwrap();
        let (o, pre) = f.submit(t(1.0), req(2, 5, 5.0)).unwrap();
        assert_eq!(o, RequestOutcome::Queued);
        assert!(pre.is_none());
    }

    #[test]
    fn complete_promotes_strongest_waiter() {
        let mut f = MultiFacility::new("smp", 1);
        f.submit(t(0.0), req(1, 0, 4.0)).unwrap();
        f.submit(t(0.0), req(2, 0, 4.0)).unwrap();
        f.submit(t(0.0), req(3, 5, 4.0)).unwrap(); // preempts 1
                                                   // Now 3 in service; queue holds 1 (remaining 4, front) and 2.
        let next = f.complete(t(4.0), 3).unwrap();
        let (id, completion) = next.unwrap();
        assert_eq!(id, 1, "preempted task resumes before task 2");
        assert_eq!(completion, t(8.0));
    }

    #[test]
    fn work_conservation_across_preemption() {
        let mut f = MultiFacility::new("smp", 1);
        f.submit(t(0.0), req(1, 0, 10.0)).unwrap();
        f.submit(t(4.0), req(2, 1, 3.0)).unwrap();
        f.complete(t(7.0), 2).unwrap();
        f.complete(t(13.0), 1).unwrap();
        assert_eq!(f.busy_time(t(13.0)), 13.0);
        assert_eq!(f.completions(), 2);
    }

    #[test]
    fn single_server_matches_facility_semantics() {
        // Spot-check the k=1 case against the single-server Facility.
        use crate::facility::Facility;
        let mut multi = MultiFacility::new("m", 1);
        let mut single = Facility::new("s");
        multi.submit(t(0.0), req(1, 0, 10.0)).unwrap();
        single.submit(t(0.0), req(1, 0, 10.0)).unwrap();
        let (_, pm) = multi.submit(t(3.0), req(2, 9, 2.0)).unwrap();
        let (_, ps) = single.submit(t(3.0), req(2, 9, 2.0)).unwrap();
        assert_eq!(pm, ps);
        let nm = multi.complete(t(5.0), 2).unwrap();
        let (_, ns) = single.complete_current(t(5.0)).unwrap();
        assert_eq!(nm, ns);
    }

    #[test]
    fn unknown_completion_rejected() {
        let mut f = MultiFacility::new("smp", 2);
        assert!(matches!(
            f.complete(t(0.0), 9),
            Err(DesError::UnknownRequest { id: 9 })
        ));
    }

    #[test]
    fn more_servers_reduce_interference() {
        // With 2 servers, an owner burst does not stall the task at all
        // when a server is free.
        let mut f = MultiFacility::new("smp", 2);
        f.submit(t(0.0), req(1, 0, 10.0)).unwrap();
        let (_, pre) = f.submit(t(2.0), req(100, 10, 5.0)).unwrap();
        assert!(pre.is_none(), "no preemption needed with a free server");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn rejects_zero_servers() {
        MultiFacility::new("x", 0);
    }
}
