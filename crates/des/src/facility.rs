//! A single-server service facility with preemptive-priority scheduling.
//!
//! This is the CSIM-style "facility" the paper's simulation needs: each
//! workstation's CPU is one `Facility`; owner processes submit requests
//! at a higher priority than parallel tasks and **preempt** them
//! immediately, exactly matching the paper's assumption ("when an owner
//! process starts execution an executing parallel task is suspended and
//! the owner process is immediately started").
//!
//! The facility is a pure state machine: every operation takes the
//! current time and returns what changed, and the caller (the cluster
//! simulator) schedules or cancels completion events on the
//! [`crate::engine::Engine`]. That keeps ownership simple — no interior
//! mutability — and makes the scheduler unit-testable without an engine.
//!
//! Preempted work is resumed (not restarted): remaining demand is
//! tracked per request, matching a preempt-resume CPU.

use crate::error::DesError;
use crate::time::SimTime;
use std::collections::VecDeque;

/// Identifies a request submitted to a facility.
pub type RequestId = u64;

/// A unit of work submitted to the facility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Caller-chosen identifier (must be unique among live requests).
    pub id: RequestId,
    /// Larger numbers preempt smaller ones.
    pub priority: i32,
    /// Remaining service demand in time units (> 0).
    pub demand: f64,
}

/// What happened when a request was submitted or service completed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestOutcome {
    /// The request went straight into service; its completion event
    /// should be scheduled at the given time.
    Started {
        /// Absolute completion time if it runs uninterrupted.
        completion: SimTime,
    },
    /// The request was queued behind equal-or-higher-priority work.
    Queued,
}

/// Details of a preemption triggered by a submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Preempted {
    /// The request that was evicted from service.
    pub id: RequestId,
    /// Demand it still needs when it next reaches the server.
    pub remaining: f64,
}

#[derive(Debug, Clone, Copy)]
struct Active {
    id: RequestId,
    priority: i32,
    /// Time service (re)started.
    since: SimTime,
    /// Demand outstanding at `since`.
    remaining: f64,
}

/// Single-server, preemptive-priority facility with FIFO order within a
/// priority class and cumulative statistics.
#[derive(Debug, Clone)]
pub struct Facility {
    name: String,
    active: Option<Active>,
    /// Waiting requests; FIFO within priority, scanned for the max.
    queue: VecDeque<(i32, RequestId, f64)>,
    // --- statistics ---
    busy_area: f64,
    completions: u64,
    preemptions: u64,
}

impl Facility {
    /// Create a facility with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            active: None,
            queue: VecDeque::new(),
            busy_area: 0.0,
            completions: 0,
            preemptions: 0,
        }
    }

    /// The facility's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether a request is currently in service.
    pub fn is_busy(&self) -> bool {
        self.active.is_some()
    }

    /// The request currently in service, if any.
    pub fn in_service(&self) -> Option<RequestId> {
        self.active.map(|a| a.id)
    }

    /// Number of queued (not in-service) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total completed services.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Total preemptions performed.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Cumulative busy time up to `now` (for utilization probes).
    pub fn busy_time(&self, now: SimTime) -> f64 {
        let mut area = self.busy_area;
        if let Some(a) = self.active {
            area += (now.max(a.since) - a.since).as_f64();
        }
        area
    }

    /// Submit a request at `now`.
    ///
    /// Returns the outcome for the new request plus, if it preempted the
    /// running one, the preemption details. The caller must cancel the
    /// preempted request's completion event and, on
    /// [`RequestOutcome::Started`], schedule the new completion.
    pub fn submit(
        &mut self,
        now: SimTime,
        req: Request,
    ) -> Result<(RequestOutcome, Option<Preempted>), DesError> {
        if !req.demand.is_finite() || req.demand <= 0.0 {
            return Err(DesError::InvalidDemand { value: req.demand });
        }
        match self.active {
            Some(active) if req.priority > active.priority => {
                // Preempt: bank the work done so far, requeue the victim
                // at the *front* of its class so it resumes first.
                let done = (now - active.since).as_f64();
                let remaining = (active.remaining - done).max(0.0);
                self.busy_area += done;
                self.preemptions += 1;
                self.queue
                    .push_front((active.priority, active.id, remaining));
                self.active = Some(Active {
                    id: req.id,
                    priority: req.priority,
                    since: now,
                    remaining: req.demand,
                });
                Ok((
                    RequestOutcome::Started {
                        completion: now + SimTime::new(req.demand),
                    },
                    Some(Preempted {
                        id: active.id,
                        remaining,
                    }),
                ))
            }
            Some(_) => {
                self.queue.push_back((req.priority, req.id, req.demand));
                Ok((RequestOutcome::Queued, None))
            }
            None => {
                self.active = Some(Active {
                    id: req.id,
                    priority: req.priority,
                    since: now,
                    remaining: req.demand,
                });
                Ok((
                    RequestOutcome::Started {
                        completion: now + SimTime::new(req.demand),
                    },
                    None,
                ))
            }
        }
    }

    /// Complete the in-service request at `now` (the caller's completion
    /// event fired). Returns the finished id and, if a queued request was
    /// promoted into service, its id and new completion time for the
    /// caller to schedule.
    pub fn complete_current(
        &mut self,
        now: SimTime,
    ) -> Result<(RequestId, Option<(RequestId, SimTime)>), DesError> {
        let active = self.active.take().ok_or(DesError::FacilityIdle)?;
        self.busy_area += (now - active.since).as_f64();
        self.completions += 1;
        let next = self.pop_next();
        let started = next.map(|(priority, id, remaining)| {
            self.active = Some(Active {
                id,
                priority,
                since: now,
                remaining,
            });
            (id, now + SimTime::new(remaining))
        });
        Ok((active.id, started))
    }

    /// Remove a queued (not in-service) request, e.g. on task abort.
    pub fn cancel_queued(&mut self, id: RequestId) -> Result<(), DesError> {
        let before = self.queue.len();
        self.queue.retain(|&(_, qid, _)| qid != id);
        if self.queue.len() == before {
            Err(DesError::UnknownRequest { id })
        } else {
            Ok(())
        }
    }

    /// Highest-priority queued request, FIFO within the class.
    fn pop_next(&mut self) -> Option<(i32, RequestId, f64)> {
        let best = self
            .queue
            .iter()
            .enumerate()
            .max_by(|(ia, (pa, _, _)), (ib, (pb, _, _))| {
                // Max priority; on ties prefer the EARLIER index (FIFO),
                // so compare indices inverted.
                pa.cmp(pb).then_with(|| ib.cmp(ia))
            })
            .map(|(i, _)| i)?;
        self.queue.remove(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> SimTime {
        SimTime::new(v)
    }

    fn req(id: RequestId, priority: i32, demand: f64) -> Request {
        Request {
            id,
            priority,
            demand,
        }
    }

    #[test]
    fn idle_facility_starts_immediately() {
        let mut f = Facility::new("cpu");
        let (outcome, pre) = f.submit(t(0.0), req(1, 0, 5.0)).unwrap();
        assert_eq!(outcome, RequestOutcome::Started { completion: t(5.0) });
        assert!(pre.is_none());
        assert!(f.is_busy());
        assert_eq!(f.in_service(), Some(1));
    }

    #[test]
    fn equal_priority_queues_fifo() {
        let mut f = Facility::new("cpu");
        f.submit(t(0.0), req(1, 0, 5.0)).unwrap();
        let (o2, _) = f.submit(t(1.0), req(2, 0, 3.0)).unwrap();
        let (o3, _) = f.submit(t(2.0), req(3, 0, 3.0)).unwrap();
        assert_eq!(o2, RequestOutcome::Queued);
        assert_eq!(o3, RequestOutcome::Queued);
        let (done, next) = f.complete_current(t(5.0)).unwrap();
        assert_eq!(done, 1);
        let (next_id, completion) = next.unwrap();
        assert_eq!(next_id, 2, "FIFO within class");
        assert_eq!(completion, t(8.0));
    }

    #[test]
    fn higher_priority_preempts() {
        let mut f = Facility::new("cpu");
        f.submit(t(0.0), req(1, 0, 10.0)).unwrap();
        // Owner arrives at t=4 with priority 10: preempts immediately.
        let (outcome, pre) = f.submit(t(4.0), req(2, 10, 3.0)).unwrap();
        assert_eq!(outcome, RequestOutcome::Started { completion: t(7.0) });
        let pre = pre.unwrap();
        assert_eq!(pre.id, 1);
        assert_eq!(pre.remaining, 6.0);
        assert_eq!(f.preemptions(), 1);
        // Owner finishes; task resumes with its remaining 6 units.
        let (done, next) = f.complete_current(t(7.0)).unwrap();
        assert_eq!(done, 2);
        let (next_id, completion) = next.unwrap();
        assert_eq!(next_id, 1);
        assert_eq!(completion, t(13.0));
    }

    #[test]
    fn lower_priority_does_not_preempt() {
        let mut f = Facility::new("cpu");
        f.submit(t(0.0), req(1, 10, 5.0)).unwrap();
        let (outcome, pre) = f.submit(t(1.0), req(2, 0, 2.0)).unwrap();
        assert_eq!(outcome, RequestOutcome::Queued);
        assert!(pre.is_none());
        assert_eq!(f.in_service(), Some(1));
    }

    #[test]
    fn equal_priority_does_not_preempt() {
        let mut f = Facility::new("cpu");
        f.submit(t(0.0), req(1, 5, 5.0)).unwrap();
        let (outcome, _) = f.submit(t(1.0), req(2, 5, 2.0)).unwrap();
        assert_eq!(outcome, RequestOutcome::Queued);
    }

    #[test]
    fn nested_preemption_resumes_in_priority_order() {
        let mut f = Facility::new("cpu");
        f.submit(t(0.0), req(1, 0, 10.0)).unwrap(); // task
        f.submit(t(2.0), req(2, 5, 4.0)).unwrap(); // owner level 1
        f.submit(t(3.0), req(3, 9, 1.0)).unwrap(); // urgent owner
        assert_eq!(f.in_service(), Some(3));
        // Urgent finishes at 4: owner level 1 resumes (3 left).
        let (_, next) = f.complete_current(t(4.0)).unwrap();
        let (id, completion) = next.unwrap();
        assert_eq!(id, 2);
        assert_eq!(completion, t(7.0));
        // Owner finishes: original task resumes with 8 remaining.
        let (_, next) = f.complete_current(t(7.0)).unwrap();
        let (id, completion) = next.unwrap();
        assert_eq!(id, 1);
        assert_eq!(completion, t(15.0));
    }

    #[test]
    fn preempted_work_is_conserved() {
        // Total busy time must equal total demand completed, regardless
        // of interleaving.
        let mut f = Facility::new("cpu");
        f.submit(t(0.0), req(1, 0, 10.0)).unwrap();
        f.submit(t(4.0), req(2, 1, 3.0)).unwrap(); // preempts, runs 4..7
        f.complete_current(t(7.0)).unwrap(); // owner done, task resumes
        f.complete_current(t(13.0)).unwrap(); // task done (4 + 6 work)
        assert_eq!(f.busy_time(t(13.0)), 13.0);
        assert_eq!(f.completions(), 2);
    }

    #[test]
    fn busy_time_partial_service() {
        let mut f = Facility::new("cpu");
        assert_eq!(f.busy_time(t(5.0)), 0.0);
        f.submit(t(5.0), req(1, 0, 10.0)).unwrap();
        assert_eq!(f.busy_time(t(8.0)), 3.0);
    }

    #[test]
    fn complete_when_idle_errors() {
        let mut f = Facility::new("cpu");
        assert_eq!(f.complete_current(t(0.0)), Err(DesError::FacilityIdle));
    }

    #[test]
    fn invalid_demand_rejected() {
        let mut f = Facility::new("cpu");
        assert!(f.submit(t(0.0), req(1, 0, 0.0)).is_err());
        assert!(f.submit(t(0.0), req(1, 0, -2.0)).is_err());
        assert!(f.submit(t(0.0), req(1, 0, f64::NAN)).is_err());
    }

    #[test]
    fn cancel_queued_removes_request() {
        let mut f = Facility::new("cpu");
        f.submit(t(0.0), req(1, 0, 5.0)).unwrap();
        f.submit(t(0.0), req(2, 0, 5.0)).unwrap();
        assert_eq!(f.queue_len(), 1);
        f.cancel_queued(2).unwrap();
        assert_eq!(f.queue_len(), 0);
        assert!(f.cancel_queued(2).is_err());
        assert!(f.cancel_queued(1).is_err(), "in-service is not queued");
    }

    #[test]
    fn preempted_resumes_before_later_same_priority_arrivals() {
        let mut f = Facility::new("cpu");
        f.submit(t(0.0), req(1, 0, 10.0)).unwrap(); // task A running
        f.submit(t(1.0), req(2, 0, 10.0)).unwrap(); // task B queued
        f.submit(t(2.0), req(3, 5, 1.0)).unwrap(); // owner preempts A
        let (_, next) = f.complete_current(t(3.0)).unwrap();
        // A (preempted, 8 left) must resume before B.
        assert_eq!(next.unwrap().0, 1);
    }
}
