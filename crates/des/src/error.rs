//! Error type for the simulation engine.

use std::fmt;

/// Errors produced by the discrete-event engine and its resources.
#[derive(Debug, Clone, PartialEq)]
pub enum DesError {
    /// An event was scheduled in the past.
    ScheduleInPast {
        /// Current simulation time.
        now: f64,
        /// Requested (past) event time.
        requested: f64,
    },
    /// An operation referenced a request the facility does not hold.
    UnknownRequest {
        /// The offending request id.
        id: u64,
    },
    /// `complete_current` was called while the facility was idle.
    FacilityIdle,
    /// A demand or service time was invalid.
    InvalidDemand {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for DesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesError::ScheduleInPast { now, requested } => {
                write!(
                    f,
                    "cannot schedule at {requested} before current time {now}"
                )
            }
            DesError::UnknownRequest { id } => write!(f, "unknown request id {id}"),
            DesError::FacilityIdle => write!(f, "facility is idle"),
            DesError::InvalidDemand { value } => {
                write!(f, "invalid demand {value}: must be finite and > 0")
            }
        }
    }
}

impl std::error::Error for DesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        assert!(DesError::ScheduleInPast {
            now: 5.0,
            requested: 3.0
        }
        .to_string()
        .contains("before current time"));
        assert!(DesError::UnknownRequest { id: 7 }.to_string().contains('7'));
        assert_eq!(DesError::FacilityIdle.to_string(), "facility is idle");
        assert!(DesError::InvalidDemand { value: -1.0 }
            .to_string()
            .contains("-1"));
    }
}
