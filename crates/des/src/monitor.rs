//! Run-time statistics collection.
//!
//! [`Monitor`] tracks a piecewise-constant quantity (queue length,
//! number of busy stations, ...) and reports its **time-weighted**
//! average — the standard DES statistic CSIM calls a "table"/"qtable".
//! Point observations (tally statistics) are better served by
//! [`nds_stats::RunningStats`].

use crate::time::SimTime;

/// Time-weighted statistics for a piecewise-constant signal.
#[derive(Debug, Clone)]
pub struct Monitor {
    name: String,
    last_time: SimTime,
    current: f64,
    area: f64,
    min: f64,
    max: f64,
    changes: u64,
    started: bool,
    start_time: SimTime,
}

impl Monitor {
    /// Create a monitor with an initial value of 0 at time 0.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            last_time: SimTime::ZERO,
            current: 0.0,
            area: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            changes: 0,
            started: false,
            start_time: SimTime::ZERO,
        }
    }

    /// The monitor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record that the signal changed to `value` at time `now`.
    /// Times must be nondecreasing.
    pub fn set(&mut self, now: SimTime, value: f64) {
        assert!(
            now >= self.last_time,
            "monitor updates must move forward in time"
        );
        if !self.started {
            self.started = true;
            self.start_time = now;
        } else {
            self.area += self.current * (now - self.last_time).as_f64();
        }
        self.last_time = now;
        self.current = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.changes += 1;
    }

    /// Adjust the signal by a delta (convenience for counters).
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.current + delta;
        self.set(now, v);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Time-weighted mean over `[first update, now]`.
    /// Returns 0 if no time has elapsed.
    pub fn time_average(&self, now: SimTime) -> f64 {
        if !self.started {
            return 0.0;
        }
        let span = (now - self.start_time).as_f64();
        if span <= 0.0 {
            return self.current;
        }
        let area = self.area + self.current * (now - self.last_time).as_f64();
        area / span
    }

    /// Smallest value observed, or `None` if the signal was never set
    /// (a never-updated monitor has no observations to bound — the old
    /// behavior of returning `+inf` here leaked the internal sentinel).
    pub fn min(&self) -> Option<f64> {
        self.started.then_some(self.min)
    }

    /// Largest value observed, or `None` if the signal was never set.
    pub fn max(&self) -> Option<f64> {
        self.started.then_some(self.max)
    }

    /// Number of `set`/`add` calls.
    pub fn changes(&self) -> u64 {
        self.changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> SimTime {
        SimTime::new(v)
    }

    #[test]
    fn constant_signal_average() {
        let mut m = Monitor::new("q");
        m.set(t(0.0), 3.0);
        assert_eq!(m.time_average(t(10.0)), 3.0);
    }

    #[test]
    fn step_signal_average() {
        let mut m = Monitor::new("q");
        m.set(t(0.0), 0.0);
        m.set(t(4.0), 2.0); // 0 for 4 units
        m.set(t(8.0), 1.0); // 2 for 4 units
                            // Up to t=10: (0*4 + 2*4 + 1*2) / 10 = 1.0
        assert_eq!(m.time_average(t(10.0)), 1.0);
    }

    #[test]
    fn add_is_relative() {
        let mut m = Monitor::new("q");
        m.set(t(0.0), 1.0);
        m.add(t(2.0), 2.0);
        assert_eq!(m.current(), 3.0);
        m.add(t(4.0), -3.0);
        assert_eq!(m.current(), 0.0);
        // (1*2 + 3*2 + 0*1)/5 = 8/5
        assert_eq!(m.time_average(t(5.0)), 8.0 / 5.0);
    }

    #[test]
    fn min_max_changes() {
        let mut m = Monitor::new("q");
        m.set(t(0.0), 5.0);
        m.set(t(1.0), -2.0);
        m.set(t(2.0), 3.0);
        assert_eq!(m.min(), Some(-2.0));
        assert_eq!(m.max(), Some(5.0));
        assert_eq!(m.changes(), 3);
    }

    #[test]
    fn empty_monitor_average_zero() {
        let m = Monitor::new("q");
        assert_eq!(m.time_average(t(100.0)), 0.0);
    }

    #[test]
    fn empty_monitor_has_no_extrema() {
        // A never-updated monitor must not leak its ±inf sentinels.
        let m = Monitor::new("q");
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
        assert_eq!(m.changes(), 0);
    }

    #[test]
    fn single_update_pins_both_extrema() {
        let mut m = Monitor::new("q");
        m.set(t(3.0), 7.5);
        assert_eq!(m.min(), Some(7.5));
        assert_eq!(m.max(), Some(7.5));
    }

    #[test]
    fn average_starts_at_first_update() {
        let mut m = Monitor::new("q");
        m.set(t(10.0), 4.0);
        // Window is [10, 20], not [0, 20].
        assert_eq!(m.time_average(t(20.0)), 4.0);
    }

    #[test]
    #[should_panic(expected = "forward in time")]
    fn rejects_time_regression() {
        let mut m = Monitor::new("q");
        m.set(t(5.0), 1.0);
        m.set(t(4.0), 2.0);
    }
}
