//! The event calendar and simulation clock.
//!
//! Events are closures scheduled at a future [`SimTime`]; when the clock
//! reaches them they execute with mutable access to the engine so they
//! can schedule follow-up events. Ties in time are broken by insertion
//! sequence number, which makes runs bit-for-bit deterministic.

use crate::error::DesError;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// Identifies a scheduled event, usable for cancellation.
pub type EventId = u64;

type Action = Box<dyn FnOnce(&mut Engine)>;

struct Scheduled {
    time: SimTime,
    seq: u64,
    id: EventId,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first.
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event simulation engine: clock + event calendar.
///
/// # Example
///
/// ```
/// use nds_des::{Engine, SimTime};
///
/// let mut engine = Engine::new();
/// engine.schedule(SimTime::new(10.0), |e| {
///     // schedule a follow-up two units later
///     let next = e.now() + SimTime::new(2.0);
///     e.schedule(next, |_| {}).unwrap();
/// }).unwrap();
/// engine.run_to_quiescence(None);
/// assert_eq!(engine.now().as_f64(), 12.0);
/// ```
pub struct Engine {
    clock: SimTime,
    next_seq: u64,
    next_id: EventId,
    queue: BinaryHeap<Scheduled>,
    /// Ids scheduled but not yet fired or cancelled. Ordered sets keep
    /// every traversal of engine state deterministic.
    alive: BTreeSet<EventId>,
    /// Ids cancelled but still physically in the heap (lazy deletion).
    cancelled: BTreeSet<EventId>,
    executed: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// A fresh engine at time zero.
    pub fn new() -> Self {
        Self {
            clock: SimTime::ZERO,
            next_seq: 0,
            next_id: 0,
            queue: BinaryHeap::new(),
            alive: BTreeSet::new(),
            cancelled: BTreeSet::new(),
            executed: 0,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (excluding cancelled ones).
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Schedule `action` to run at absolute time `at` (>= now).
    pub fn schedule<F>(&mut self, at: SimTime, action: F) -> Result<EventId, DesError>
    where
        F: FnOnce(&mut Engine) + 'static,
    {
        if at < self.clock {
            return Err(DesError::ScheduleInPast {
                now: self.clock.as_f64(),
                requested: at.as_f64(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.alive.insert(id);
        self.queue.push(Scheduled {
            time: at,
            seq,
            id,
            action: Box::new(action),
        });
        Ok(id)
    }

    /// Schedule `action` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimTime, action: F) -> Result<EventId, DesError>
    where
        F: FnOnce(&mut Engine) + 'static,
    {
        self.schedule(self.clock + delay, action)
    }

    /// Cancel a pending event. Returns `true` if the event existed and
    /// had not yet fired (idempotent: cancelling twice returns `false`).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Lazy deletion: mark and skip at pop time.
        if self.alive.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Execute the next event, if any. Returns `false` when the calendar
    /// is empty.
    pub fn step(&mut self) -> bool {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            debug_assert!(ev.time >= self.clock, "time went backwards");
            self.alive.remove(&ev.id);
            self.clock = ev.time;
            self.executed += 1;
            (ev.action)(self);
            return true;
        }
        false
    }

    /// Run until the calendar is exhausted or `max_events` have executed.
    /// Returns the number of events executed by this call.
    pub fn run_to_quiescence(&mut self, max_events: Option<u64>) -> u64 {
        let start = self.executed;
        let limit = max_events.unwrap_or(u64::MAX);
        while self.executed - start < limit && self.step() {}
        self.executed - start
    }

    /// Run until the clock would pass `horizon` (events at exactly
    /// `horizon` still execute). Pending later events remain queued; the
    /// clock is advanced to `horizon` on return.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let start = self.executed;
        loop {
            // Peek for the next non-cancelled event.
            let next_time = loop {
                match self.queue.peek() {
                    None => break None,
                    Some(ev) if self.cancelled.contains(&ev.id) => {
                        let ev = self
                            .queue
                            .pop()
                            .expect("invariant: peek just saw this event");
                        self.cancelled.remove(&ev.id);
                    }
                    Some(ev) => break Some(ev.time),
                }
            };
            match next_time {
                Some(t) if t <= horizon => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.clock < horizon {
            self.clock = horizon;
        }
        self.executed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut e = Engine::new();
        for &t in &[5.0, 1.0, 3.0] {
            let order = order.clone();
            e.schedule(SimTime::new(t), move |eng| {
                order.borrow_mut().push(eng.now().as_f64());
            })
            .unwrap();
        }
        e.run_to_quiescence(None);
        assert_eq!(*order.borrow(), vec![1.0, 3.0, 5.0]);
        assert_eq!(e.executed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut e = Engine::new();
        for tag in 0..5 {
            let order = order.clone();
            e.schedule(SimTime::new(2.0), move |_| {
                order.borrow_mut().push(tag);
            })
            .unwrap();
        }
        e.run_to_quiescence(None);
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let fired = Rc::new(RefCell::new(0u32));
        let mut e = Engine::new();
        let f = fired.clone();
        e.schedule(SimTime::new(1.0), move |eng| {
            *f.borrow_mut() += 1;
            let f2 = f.clone();
            eng.schedule_in(SimTime::new(4.0), move |_| {
                *f2.borrow_mut() += 1;
            })
            .unwrap();
        })
        .unwrap();
        e.run_to_quiescence(None);
        assert_eq!(*fired.borrow(), 2);
        assert_eq!(e.now().as_f64(), 5.0);
    }

    #[test]
    fn scheduling_in_past_rejected() {
        let mut e = Engine::new();
        e.schedule(SimTime::new(10.0), |_| {}).unwrap();
        e.run_to_quiescence(None);
        assert!(matches!(
            e.schedule(SimTime::new(5.0), |_| {}),
            Err(DesError::ScheduleInPast { .. })
        ));
    }

    #[test]
    fn cancel_prevents_execution() {
        let fired = Rc::new(RefCell::new(false));
        let mut e = Engine::new();
        let f = fired.clone();
        let id = e
            .schedule(SimTime::new(1.0), move |_| {
                *f.borrow_mut() = true;
            })
            .unwrap();
        assert!(e.cancel(id));
        assert!(!e.cancel(id), "double cancel must be false");
        e.run_to_quiescence(None);
        assert!(!*fired.borrow());
        assert_eq!(e.executed(), 0);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut e = Engine::new();
        assert!(!e.cancel(42));
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut e = Engine::new();
        let a = e.schedule(SimTime::new(1.0), |_| {}).unwrap();
        e.schedule(SimTime::new(2.0), |_| {}).unwrap();
        assert_eq!(e.pending(), 2);
        e.cancel(a);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let count = Rc::new(RefCell::new(0u32));
        let mut e = Engine::new();
        for t in 1..=10 {
            let c = count.clone();
            e.schedule(SimTime::new(t as f64), move |_| {
                *c.borrow_mut() += 1;
            })
            .unwrap();
        }
        let ran = e.run_until(SimTime::new(4.5));
        assert_eq!(ran, 4);
        assert_eq!(*count.borrow(), 4);
        assert_eq!(e.now().as_f64(), 4.5);
        // Remaining events still fire afterwards.
        e.run_to_quiescence(None);
        assert_eq!(*count.borrow(), 10);
    }

    #[test]
    fn run_until_includes_horizon_events() {
        let count = Rc::new(RefCell::new(0u32));
        let mut e = Engine::new();
        let c = count.clone();
        e.schedule(SimTime::new(5.0), move |_| {
            *c.borrow_mut() += 1;
        })
        .unwrap();
        e.run_until(SimTime::new(5.0));
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn run_to_quiescence_respects_max_events() {
        let mut e = Engine::new();
        // A self-perpetuating clock: would run forever without the cap.
        fn tick(eng: &mut Engine) {
            eng.schedule_in(SimTime::new(1.0), tick).unwrap();
        }
        e.schedule(SimTime::new(0.0), tick).unwrap();
        let ran = e.run_to_quiescence(Some(100));
        assert_eq!(ran, 100);
        assert_eq!(e.now().as_f64(), 99.0);
    }

    #[test]
    fn clock_advances_to_horizon_even_without_events() {
        let mut e = Engine::new();
        e.run_until(SimTime::new(42.0));
        assert_eq!(e.now().as_f64(), 42.0);
    }
}
