//! Analytic treatment of **variable owner demands** — the paper's main
//! optimism caveat, made quantitative.
//!
//! The paper fixes the owner demand at a deterministic `O` and warns
//! (§2.1, §5) that real demands have far more variance, making its
//! results optimistic. Replace `O` with a general nonnegative demand
//! `S` (mean `O`, squared coefficient of variation `cv²`). A task of
//! demand `T` suffers `n ~ Binomial(T, P)` interruptions and
//!
//! ```text
//! task time  X = T + Σ_{i=1..n} S_i
//! E[X]         = T + T·P·O                    (unchanged — variance-free)
//! Var[X]       = T·P·Var(S) + O²·T·P·(1-P)
//!              = T·P·O²·(cv² + 1 - P)
//! ```
//!
//! so the *mean task time* does not feel variance at all, but the
//! *job* time — the max of `W` task times — does. This module
//! approximates `E[max]` with a normal/Blom order-statistic model on
//! the compound distribution, exposing exactly how much the paper's
//! deterministic assumption undersells interference.

use crate::approx::normal_max_constant;
use crate::params::OwnerParams;

/// Owner behaviour with a general service demand: mean `O` (from
/// [`OwnerParams`]) plus a squared coefficient of variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneralOwner {
    /// Mean demand and request probability (the base model parameters).
    pub base: OwnerParams,
    /// Squared coefficient of variation of the demand (0 = the paper's
    /// deterministic case, 1 = exponential, >1 = hyperexponential).
    pub demand_cv2: f64,
}

impl GeneralOwner {
    /// Construct from base parameters and a demand `cv² >= 0`.
    pub fn new(base: OwnerParams, demand_cv2: f64) -> Self {
        assert!(
            demand_cv2 >= 0.0 && demand_cv2.is_finite(),
            "cv2 must be finite and >= 0, got {demand_cv2}"
        );
        Self { base, demand_cv2 }
    }

    /// Expected task time — identical to the deterministic model
    /// (variance does not move the mean).
    pub fn expected_task_time(&self, t: f64) -> f64 {
        t * (1.0 + self.base.demand() * self.base.request_prob())
    }

    /// Variance of one task's time:
    /// `T·P·O²·(cv² + 1 - P)`.
    pub fn task_time_variance(&self, t: f64) -> f64 {
        let o = self.base.demand();
        let p = self.base.request_prob();
        t * p * o * o * (self.demand_cv2 + 1.0 - p)
    }

    /// Normal-order-statistic approximation of the expected **job**
    /// time over `w` workstations:
    /// `E_t + sd(task time) · a(W)`, clamped below the deterministic
    /// worst case is not meaningful here (unbounded demands), so only
    /// clamped below by `E_t`.
    pub fn approx_expected_job_time(&self, t: f64, w: u32) -> f64 {
        let mean = self.expected_task_time(t);
        let sd = self.task_time_variance(t).sqrt();
        mean + sd * normal_max_constant(w)
    }

    /// The **variance penalty**: the ratio of the approximate job time
    /// at this `cv²` to the job time at `cv² = 0` (the paper's model),
    /// same `T`, `W`, and base parameters. Always >= 1.
    pub fn variance_penalty(&self, t: f64, w: u32) -> f64 {
        let det = GeneralOwner::new(self.base, 0.0);
        self.approx_expected_job_time(t, w) / det.approx_expected_job_time(t, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expectation::expected_job_time_int;

    fn base(u: f64) -> OwnerParams {
        OwnerParams::from_utilization(10.0, u).unwrap()
    }

    #[test]
    fn mean_task_time_ignores_variance() {
        let a = GeneralOwner::new(base(0.1), 0.0);
        let b = GeneralOwner::new(base(0.1), 16.0);
        assert_eq!(a.expected_task_time(500.0), b.expected_task_time(500.0));
    }

    #[test]
    fn variance_formula_deterministic_case() {
        // cv2 = 0: Var = T·P·O²·(1-P) — pure binomial-count variance.
        let g = GeneralOwner::new(base(0.1), 0.0);
        let p = g.base.request_prob();
        let expected = 1000.0 * p * 100.0 * (1.0 - p);
        assert!((g.task_time_variance(1000.0) - expected).abs() < 1e-9);
    }

    #[test]
    fn variance_grows_linearly_in_cv2() {
        let t = 500.0;
        let v0 = GeneralOwner::new(base(0.1), 0.0).task_time_variance(t);
        let v4 = GeneralOwner::new(base(0.1), 4.0).task_time_variance(t);
        let v8 = GeneralOwner::new(base(0.1), 8.0).task_time_variance(t);
        assert!((v8 - v4) - (v4 - v0) < 1e-9);
        assert!(v4 > v0 && v8 > v4);
    }

    #[test]
    fn deterministic_case_tracks_exact_model() {
        // At cv² = 0 the approximation should sit near the exact E_j
        // for moderate interruption counts.
        let g = GeneralOwner::new(base(0.1), 0.0);
        for (t, w) in [(1000u64, 20u32), (2000, 60)] {
            let exact = expected_job_time_int(t, w, g.base);
            let approx = g.approx_expected_job_time(t as f64, w);
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.05, "T={t} W={w}: {approx} vs {exact}");
        }
    }

    #[test]
    fn penalty_increases_with_cv2_and_w() {
        let t = 1000.0;
        let p4 = GeneralOwner::new(base(0.1), 4.0);
        let p16 = GeneralOwner::new(base(0.1), 16.0);
        assert!(p16.variance_penalty(t, 60) > p4.variance_penalty(t, 60));
        assert!(p4.variance_penalty(t, 60) > 1.0);
        assert!(p4.variance_penalty(t, 100) > p4.variance_penalty(t, 10));
        // W = 1: no max effect, penalty collapses to 1.
        assert!((p16.variance_penalty(t, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_simulated_variance_ordering() {
        // The ext_variance experiment (W=12, T=300, U=10%) measured
        // mean max task times of ~384 (cv2<=1), ~426 (cv2=4) and ~494
        // (cv2=16). Check the analytic penalties rank the same way and
        // land within ~15% of the simulated ratios.
        let t = 300.0;
        let w = 12;
        let sim_ratio_4 = 426.2 / 383.8;
        let sim_ratio_16 = 493.9 / 383.8;
        let a4 = GeneralOwner::new(base(0.1), 4.0).approx_expected_job_time(t, w)
            / GeneralOwner::new(base(0.1), 1.0).approx_expected_job_time(t, w);
        let a16 = GeneralOwner::new(base(0.1), 16.0).approx_expected_job_time(t, w)
            / GeneralOwner::new(base(0.1), 1.0).approx_expected_job_time(t, w);
        assert!(a4 > 1.0 && a16 > a4);
        assert!(
            (a4 - sim_ratio_4).abs() / sim_ratio_4 < 0.15,
            "a4 {a4} vs sim {sim_ratio_4}"
        );
        assert!(
            (a16 - sim_ratio_16).abs() / sim_ratio_16 < 0.15,
            "a16 {a16} vs sim {sim_ratio_16}"
        );
    }

    #[test]
    #[should_panic(expected = "cv2 must be finite")]
    fn rejects_negative_cv2() {
        GeneralOwner::new(base(0.1), -1.0);
    }
}
