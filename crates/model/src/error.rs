//! Error type for the analytical model.

use std::fmt;

/// Errors produced while constructing model parameters or evaluating
/// the model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// A solver failed to bracket or converge on a solution.
    NoSolution {
        /// Description of what was being solved.
        what: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            ModelError::NoSolution { what } => write!(f, "no solution found: {what}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ModelError::InvalidParameter {
            name: "P",
            value: 2.0,
            constraint: "must be in (0,1)",
        };
        assert!(e.to_string().contains("P = 2"));
        let n = ModelError::NoSolution { what: "task ratio" };
        assert_eq!(n.to_string(), "no solution found: task ratio");
    }
}
