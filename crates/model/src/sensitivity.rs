//! Sensitivity analysis: which knob matters most?
//!
//! The paper's figures sweep one parameter at a time. A user deciding
//! whether to (a) buy quieter workstations (lower `U`), (b) batch work
//! into bigger tasks (raise `T`), or (c) shrink the pool (lower `W`)
//! wants the **elasticities** — the percentage change in weighted
//! efficiency per percent change in each parameter. This module
//! computes them by central finite differences on the exact model.

use crate::error::ModelError;
use crate::expectation::expected_job_time;
use crate::params::OwnerParams;

/// Elasticities of weighted efficiency at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Elasticities {
    /// `d ln(WE) / d ln(T)` — effect of scaling the per-task demand.
    pub wrt_task_demand: f64,
    /// `d ln(WE) / d ln(U)` — effect of scaling owner utilization.
    pub wrt_utilization: f64,
    /// `d ln(WE) / d ln(O)` — effect of scaling owner burst length at
    /// fixed utilization (fewer, longer bursts).
    pub wrt_owner_demand: f64,
    /// `d ln(WE) / d ln(W)` — effect of pool size (task demand fixed).
    pub wrt_workstations: f64,
}

fn weighted_efficiency(t: f64, w: u32, o: f64, u: f64) -> Result<f64, ModelError> {
    let owner = OwnerParams::from_utilization(o, u)?;
    let e_j = expected_job_time(t, w, owner);
    Ok(t / ((1.0 - u) * e_j))
}

/// Compute all elasticities at `(T, W, O, U)` with relative step `h`
/// (central differences; `h = 0.05` is a good default).
pub fn elasticities(t: f64, w: u32, o: f64, u: f64, h: f64) -> Result<Elasticities, ModelError> {
    if !(0.0..0.5).contains(&h) || h <= 0.0 {
        return Err(ModelError::InvalidParameter {
            name: "h (relative step)",
            value: h,
            constraint: "must be in (0, 0.5)",
        });
    }
    let log_deriv = |f_plus: f64, f_minus: f64| (f_plus.ln() - f_minus.ln()) / (2.0 * h.ln_1p());

    let t_el = {
        let plus = weighted_efficiency(t * (1.0 + h), w, o, u)?;
        let minus = weighted_efficiency(t / (1.0 + h), w, o, u)?;
        log_deriv(plus, minus)
    };
    let u_el = {
        let plus = weighted_efficiency(t, w, o, u * (1.0 + h))?;
        let minus = weighted_efficiency(t, w, o, u / (1.0 + h))?;
        log_deriv(plus, minus)
    };
    let o_el = {
        let plus = weighted_efficiency(t, w, o * (1.0 + h), u)?;
        let minus = weighted_efficiency(t, w, o / (1.0 + h), u)?;
        log_deriv(plus, minus)
    };
    let w_el = {
        // W is integral; use a one-step log difference around W.
        let w_plus = (f64::from(w) * (1.0 + h)).round().max(f64::from(w) + 1.0) as u32;
        let w_minus = (f64::from(w) / (1.0 + h))
            .round()
            .min(f64::from(w) - 1.0)
            .max(1.0) as u32;
        if w_minus == w_plus {
            0.0
        } else {
            let plus = weighted_efficiency(t, w_plus, o, u)?;
            let minus = weighted_efficiency(t, w_minus, o, u)?;
            (plus.ln() - minus.ln()) / (f64::from(w_plus).ln() - f64::from(w_minus).ln())
        }
    };
    Ok(Elasticities {
        wrt_task_demand: t_el,
        wrt_utilization: u_el,
        wrt_owner_demand: o_el,
        wrt_workstations: w_el,
    })
}

impl Elasticities {
    /// The knob with the largest absolute leverage, as a label.
    pub fn dominant(&self) -> &'static str {
        let pairs = [
            ("task demand", self.wrt_task_demand.abs()),
            ("utilization", self.wrt_utilization.abs()),
            ("owner demand", self.wrt_owner_demand.abs()),
            ("pool size", self.wrt_workstations.abs()),
        ];
        pairs
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty")
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_are_sensible() {
        // At a mid-range operating point: more T helps, more U hurts,
        // more W hurts (fixed T), longer bursts at fixed U hurt.
        let e = elasticities(100.0, 60, 10.0, 0.10, 0.05).unwrap();
        assert!(e.wrt_task_demand > 0.0, "{e:?}");
        assert!(e.wrt_utilization < 0.0, "{e:?}");
        assert!(e.wrt_owner_demand < 0.0, "{e:?}");
        assert!(e.wrt_workstations < 0.0, "{e:?}");
    }

    #[test]
    fn saturated_regime_is_insensitive() {
        // Huge task ratio: WE ~ 1 and nothing moves it much.
        let e = elasticities(100_000.0, 10, 10.0, 0.05, 0.05).unwrap();
        assert!(e.wrt_task_demand.abs() < 0.02, "{e:?}");
        assert!(e.wrt_utilization.abs() < 0.05, "{e:?}");
    }

    #[test]
    fn starved_regime_task_ratio_knobs_dominate() {
        // Tiny task ratio: the T/O ratio is the lever — either growing
        // tasks or shrinking owner bursts, which are nearly symmetric.
        let e = elasticities(10.0, 60, 10.0, 0.10, 0.05).unwrap();
        assert!(e.wrt_task_demand > 0.1, "{e:?}");
        assert!(
            matches!(e.dominant(), "task demand" | "owner demand"),
            "{e:?}"
        );
    }

    #[test]
    fn utilization_elasticity_strengthens_with_u() {
        let low = elasticities(100.0, 60, 10.0, 0.02, 0.05).unwrap();
        let high = elasticities(100.0, 60, 10.0, 0.20, 0.05).unwrap();
        assert!(
            high.wrt_utilization.abs() > low.wrt_utilization.abs(),
            "low {low:?} high {high:?}"
        );
    }

    #[test]
    fn rejects_bad_step() {
        assert!(elasticities(100.0, 10, 10.0, 0.1, 0.0).is_err());
        assert!(elasticities(100.0, 10, 10.0, 0.1, 0.9).is_err());
    }

    #[test]
    fn dominant_label_stable() {
        let e = Elasticities {
            wrt_task_demand: 0.5,
            wrt_utilization: -0.2,
            wrt_owner_demand: -0.1,
            wrt_workstations: -0.3,
        };
        assert_eq!(e.dominant(), "task demand");
    }
}
