//! Expected task and job completion times (paper eqs. 3 and 7).
//!
//! The paper's analysis treats the task demand `T` as the binomial trial
//! count, which is only meaningful at integers, yet every figure sweeps
//! `W` continuously so that `T = J/W` is usually fractional. We evaluate
//! the model at `floor(T)` and `ceil(T)` (with `O` interruptions scaled by
//! the true `T`'s work content) and interpolate linearly — exact at
//! integers, smooth in between, and monotone in between because both
//! endpoints move the same direction.

use crate::interference::InterferenceProfile;
use crate::params::{ModelInputs, OwnerParams};

/// Expected task execution time `E_t = T(1 + O·P)` (closed form of
/// paper eq. 3, exact for all real `T >= 0`).
pub fn expected_task_time(task_demand: f64, owner: OwnerParams) -> f64 {
    assert!(
        task_demand >= 0.0 && task_demand.is_finite(),
        "task demand must be finite and >= 0"
    );
    task_demand * (1.0 + owner.demand() * owner.request_prob())
}

/// Expected task time from the summation form of eq. 3 — used in tests
/// to validate the closed form, and exposed for instrumentation.
pub fn expected_task_time_sum(task_demand_int: u64, owner: OwnerParams) -> f64 {
    let b = crate::binomial::Binomial::new(task_demand_int, owner.request_prob());
    let off = b.support_offset();
    let interruption_work: f64 = b
        .pmf_slice()
        .iter()
        .enumerate()
        .map(|(i, &prob)| owner.demand() * (off + i as u64) as f64 * prob)
        .sum();
    task_demand_int as f64 + interruption_work
}

/// Expected job completion time `E_j = T + O · Σ i·Max[W,i]`
/// (paper eq. 7) for an **integer** task demand.
pub fn expected_job_time_int(task_demand: u64, workstations: u32, owner: OwnerParams) -> f64 {
    let prof = InterferenceProfile::new(task_demand, owner.request_prob(), workstations);
    task_demand as f64 + owner.demand() * prof.expected_max()
}

/// Expected job completion time for a real task demand `T >= 0`, by
/// linear interpolation between the integer lattice points.
pub fn expected_job_time(task_demand: f64, workstations: u32, owner: OwnerParams) -> f64 {
    assert!(
        task_demand >= 0.0 && task_demand.is_finite(),
        "task demand must be finite and >= 0"
    );
    let lo = task_demand.floor();
    let hi = task_demand.ceil();
    let e_lo = expected_job_time_int(lo as u64, workstations, owner);
    if lo == hi {
        return e_lo;
    }
    let e_hi = expected_job_time_int(hi as u64, workstations, owner);
    let frac = task_demand - lo;
    e_lo + frac * (e_hi - e_lo)
}

/// Expected job time for complete [`ModelInputs`].
pub fn expected_job_time_for(inputs: &ModelInputs) -> f64 {
    expected_job_time(
        inputs.task_demand(),
        inputs.workload().workstations(),
        inputs.owner(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Workload;

    fn owner(o: f64, u: f64) -> OwnerParams {
        OwnerParams::from_utilization(o, u).unwrap()
    }

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn closed_form_matches_summation() {
        for (t, o, u) in [(100u64, 10.0, 0.05), (1000, 10.0, 0.2), (10, 5.0, 0.01)] {
            let ow = owner(o, u);
            close(
                expected_task_time(t as f64, ow),
                expected_task_time_sum(t, ow),
                1e-8 * t as f64,
            );
        }
    }

    #[test]
    fn task_time_equals_t_over_one_minus_u() {
        // With P = U/(O(1-U)): E_t = T(1 + O·P) = T/(1-U).
        for u in [0.01, 0.05, 0.1, 0.2] {
            let ow = owner(10.0, u);
            close(expected_task_time(960.0, ow), 960.0 / (1.0 - u), 1e-9);
        }
    }

    #[test]
    fn job_time_single_station_is_task_time() {
        let ow = owner(10.0, 0.1);
        for t in [10u64, 100, 1000] {
            close(
                expected_job_time_int(t, 1, ow),
                expected_task_time(t as f64, ow),
                1e-8 * t as f64,
            );
        }
    }

    #[test]
    fn job_time_increases_with_w() {
        let ow = owner(10.0, 0.1);
        let mut prev = 0.0;
        for w in [1u32, 2, 5, 10, 50, 100] {
            let e = expected_job_time_int(100, w, ow);
            assert!(e >= prev, "E_j decreased at W={w}");
            prev = e;
        }
    }

    #[test]
    fn job_time_bounds() {
        // T <= E_j <= T + T·O (paper: "at most T + (T × O) units").
        let ow = owner(10.0, 0.2);
        let t = 50u64;
        for w in [1u32, 10, 100] {
            let e = expected_job_time_int(t, w, ow);
            assert!(e >= t as f64);
            assert!(e <= t as f64 + t as f64 * ow.demand());
        }
    }

    #[test]
    fn interpolation_exact_at_integers() {
        let ow = owner(10.0, 0.05);
        close(
            expected_job_time(100.0, 10, ow),
            expected_job_time_int(100, 10, ow),
            1e-12,
        );
    }

    #[test]
    fn interpolation_between_lattice_points() {
        let ow = owner(10.0, 0.05);
        let lo = expected_job_time_int(100, 10, ow);
        let hi = expected_job_time_int(101, 10, ow);
        let mid = expected_job_time(100.5, 10, ow);
        close(mid, 0.5 * (lo + hi), 1e-12);
        assert!(mid >= lo && mid <= hi);
    }

    #[test]
    fn zero_demand_zero_time() {
        let ow = owner(10.0, 0.1);
        assert_eq!(expected_job_time(0.0, 10, ow), 0.0);
        assert_eq!(expected_task_time(0.0, ow), 0.0);
    }

    #[test]
    fn inputs_wrapper_consistent() {
        let inputs = ModelInputs::new(Workload::new(1000.0, 10).unwrap(), owner(10.0, 0.1));
        close(
            expected_job_time_for(&inputs),
            expected_job_time(100.0, 10, owner(10.0, 0.1)),
            1e-12,
        );
    }

    #[test]
    fn paper_fig1_anchor_util_1pct() {
        // Paper §3.1: at 100 nodes, util 1%, J=1000, O=10 the speedup is
        // ~61% of optimal, i.e. E_j ~ 1000/61 ≈ 16.4.
        let ow = owner(10.0, 0.01);
        let e = expected_job_time_int(10, 100, ow);
        let speedup = 1000.0 / e;
        assert!(
            speedup > 55.0 && speedup < 67.0,
            "speedup {speedup} out of paper's ballpark"
        );
    }

    #[test]
    fn paper_fig1_anchor_util_20pct() {
        // Paper §3.1: util 20% at 100 nodes gives ~32.5% of optimal.
        let ow = owner(10.0, 0.20);
        let e = expected_job_time_int(10, 100, ow);
        let speedup = 1000.0 / e;
        assert!(
            speedup > 28.0 && speedup < 38.0,
            "speedup {speedup} out of paper's ballpark"
        );
    }
}
