//! Validated model parameters.
//!
//! Mirrors Table 1 of the paper:
//!
//! | Symbol | Meaning                                   | Here |
//! |--------|-------------------------------------------|------|
//! | `J`    | total demand of the parallel job          | [`Workload::job_demand`] |
//! | `W`    | number of workstations                    | [`Workload::workstations`] |
//! | `T`    | demand of one parallel task = `J/W`       | [`ModelInputs::task_demand`] |
//! | `O`    | time an owner process uses the CPU        | [`OwnerParams::demand`] |
//! | `U`    | owner utilization of a workstation        | [`OwnerParams::utilization`] |
//! | `P`    | per-unit-time owner request probability   | [`OwnerParams::request_prob`] |

use crate::error::ModelError;

/// Owner-process behaviour at one workstation: deterministic demand `O`
/// and geometric think time with per-step request probability `P`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OwnerParams {
    demand: f64,
    request_prob: f64,
}

impl OwnerParams {
    /// Construct from demand `O > 0` and request probability `P in (0, 1)`.
    pub fn new(demand: f64, request_prob: f64) -> Result<Self, ModelError> {
        if !demand.is_finite() || demand <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "O (owner demand)",
                value: demand,
                constraint: "must be finite and > 0",
            });
        }
        if !request_prob.is_finite() || request_prob <= 0.0 || request_prob >= 1.0 {
            return Err(ModelError::InvalidParameter {
                name: "P (request probability)",
                value: request_prob,
                constraint: "must be in (0, 1)",
            });
        }
        Ok(Self {
            demand,
            request_prob,
        })
    }

    /// Construct from demand `O` and target owner utilization
    /// `U in (0, 1)`, inverting the paper's eq. 8
    /// `U = O / (O + 1/P)` to `P = U / (O · (1 - U))`.
    ///
    /// Fails if the implied `P` is not in `(0, 1)` (i.e. the requested
    /// utilization is unreachable with geometric think times for this `O`).
    pub fn from_utilization(demand: f64, utilization: f64) -> Result<Self, ModelError> {
        if !utilization.is_finite() || utilization <= 0.0 || utilization >= 1.0 {
            return Err(ModelError::InvalidParameter {
                name: "U (owner utilization)",
                value: utilization,
                constraint: "must be in (0, 1)",
            });
        }
        if !demand.is_finite() || demand <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "O (owner demand)",
                value: demand,
                constraint: "must be finite and > 0",
            });
        }
        let p = utilization / (demand * (1.0 - utilization));
        Self::new(demand, p)
    }

    /// Owner service demand `O`.
    pub fn demand(&self) -> f64 {
        self.demand
    }

    /// Per-time-unit request probability `P`.
    pub fn request_prob(&self) -> f64 {
        self.request_prob
    }

    /// Owner utilization `U = O / (O + 1/P)` (paper eq. 8).
    pub fn utilization(&self) -> f64 {
        self.demand / (self.demand + 1.0 / self.request_prob)
    }

    /// Mean owner think time `1/P`.
    pub fn mean_think_time(&self) -> f64 {
        1.0 / self.request_prob
    }
}

/// A parallel job: total demand `J` spread over `W` workstations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    job_demand: f64,
    workstations: u32,
}

impl Workload {
    /// A job of total demand `J > 0` on `W >= 1` workstations.
    pub fn new(job_demand: f64, workstations: u32) -> Result<Self, ModelError> {
        if !job_demand.is_finite() || job_demand <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "J (job demand)",
                value: job_demand,
                constraint: "must be finite and > 0",
            });
        }
        if workstations == 0 {
            return Err(ModelError::InvalidParameter {
                name: "W (workstations)",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        Ok(Self {
            job_demand,
            workstations,
        })
    }

    /// Total job demand `J`.
    pub fn job_demand(&self) -> f64 {
        self.job_demand
    }

    /// Number of workstations `W`.
    pub fn workstations(&self) -> u32 {
        self.workstations
    }

    /// Per-task demand `T = J / W` (perfect balance, paper §2).
    pub fn task_demand(&self) -> f64 {
        self.job_demand / self.workstations as f64
    }
}

/// Complete model inputs: a workload plus homogeneous owner behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelInputs {
    workload: Workload,
    owner: OwnerParams,
}

impl ModelInputs {
    /// Combine a workload and owner parameters.
    pub fn new(workload: Workload, owner: OwnerParams) -> Self {
        Self { workload, owner }
    }

    /// Convenience constructor from the paper's usual sweep inputs:
    /// `(J, W, O, U)`.
    pub fn from_utilization(
        job_demand: f64,
        workstations: u32,
        owner_demand: f64,
        utilization: f64,
    ) -> Result<Self, ModelError> {
        Ok(Self::new(
            Workload::new(job_demand, workstations)?,
            OwnerParams::from_utilization(owner_demand, utilization)?,
        ))
    }

    /// The workload.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The owner parameters.
    pub fn owner(&self) -> OwnerParams {
        self.owner
    }

    /// Per-task demand `T = J / W`.
    pub fn task_demand(&self) -> f64 {
        self.workload.task_demand()
    }

    /// The paper's **task ratio**: `T / O`, parallel task demand relative
    /// to owner demand. The paper's central thesis is that this ratio
    /// determines feasibility.
    pub fn task_ratio(&self) -> f64 {
        self.task_demand() / self.owner.demand()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_from_utilization_round_trips() {
        for u in [0.01, 0.05, 0.10, 0.20, 0.5, 0.9] {
            let o = OwnerParams::from_utilization(10.0, u).unwrap();
            assert!((o.utilization() - u).abs() < 1e-12, "u={u}");
        }
    }

    #[test]
    fn paper_parameters() {
        // O = 10, U = 10% => P = 0.1 / (10 * 0.9) = 1/90.
        let o = OwnerParams::from_utilization(10.0, 0.10).unwrap();
        assert!((o.request_prob() - 1.0 / 90.0).abs() < 1e-15);
        assert!((o.mean_think_time() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn owner_rejects_bad_params() {
        assert!(OwnerParams::new(0.0, 0.5).is_err());
        assert!(OwnerParams::new(10.0, 0.0).is_err());
        assert!(OwnerParams::new(10.0, 1.0).is_err());
        assert!(OwnerParams::from_utilization(10.0, 0.0).is_err());
        assert!(OwnerParams::from_utilization(10.0, 1.0).is_err());
        assert!(OwnerParams::from_utilization(-1.0, 0.5).is_err());
    }

    #[test]
    fn utilization_unreachable_for_small_o() {
        // U = 0.9 with O = 1 needs P = 9 > 1: impossible in the
        // discrete-time model.
        assert!(OwnerParams::from_utilization(1.0, 0.9).is_err());
    }

    #[test]
    fn workload_task_demand() {
        let w = Workload::new(1000.0, 100).unwrap();
        assert_eq!(w.task_demand(), 10.0);
        assert_eq!(w.job_demand(), 1000.0);
        assert_eq!(w.workstations(), 100);
    }

    #[test]
    fn workload_rejects_bad_params() {
        assert!(Workload::new(0.0, 4).is_err());
        assert!(Workload::new(-5.0, 4).is_err());
        assert!(Workload::new(100.0, 0).is_err());
        assert!(Workload::new(f64::NAN, 4).is_err());
    }

    #[test]
    fn model_inputs_task_ratio() {
        let m = ModelInputs::from_utilization(1000.0, 10, 10.0, 0.05).unwrap();
        // T = 100, O = 10 => task ratio 10.
        assert!((m.task_ratio() - 10.0).abs() < 1e-12);
        assert_eq!(m.task_demand(), 100.0);
        assert!((m.owner().utilization() - 0.05).abs() < 1e-12);
    }
}
