//! The paper's performance metrics (§3.1).
//!
//! Beyond classic speedup/efficiency, the paper introduces *weighted*
//! variants that discount by the cycles already consumed by the
//! (higher-priority) owner processes, so they measure how well the
//! parallel job exploits the **idle** cycles specifically:
//!
//! ```text
//! speedup              = J / E_j
//! weighted speedup     = J / ((1-U) · E_j)
//! efficiency           = J / (W · E_j)
//! weighted efficiency  = J / (W · (1-U) · E_j)
//! ```

use crate::error::ModelError;
use crate::expectation::expected_job_time_for;
use crate::params::ModelInputs;

/// All of the paper's §3.1 metrics for one parameter point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Task ratio `T / O`.
    pub task_ratio: f64,
    /// Expected job completion time `E_j` (eq. 7).
    pub expected_job_time: f64,
    /// Expected task completion time `E_t` (eq. 3).
    pub expected_task_time: f64,
    /// `J / E_j`.
    pub speedup: f64,
    /// `J / ((1-U)·E_j)`.
    pub weighted_speedup: f64,
    /// `J / (W·E_j)`, in `[0, 1]` for this model.
    pub efficiency: f64,
    /// `J / (W·(1-U)·E_j)`, in `[0, 1]` for this model.
    pub weighted_efficiency: f64,
    /// Owner utilization `U` (eq. 8).
    pub owner_utilization: f64,
}

/// Evaluate every metric for the given inputs.
pub fn evaluate(inputs: &ModelInputs) -> Metrics {
    let j = inputs.workload().job_demand();
    let w = inputs.workload().workstations() as f64;
    let u = inputs.owner().utilization();
    let e_j = expected_job_time_for(inputs);
    let e_t = crate::expectation::expected_task_time(inputs.task_demand(), inputs.owner());
    Metrics {
        task_ratio: inputs.task_ratio(),
        expected_job_time: e_j,
        expected_task_time: e_t,
        speedup: j / e_j,
        weighted_speedup: j / ((1.0 - u) * e_j),
        efficiency: j / (w * e_j),
        weighted_efficiency: j / (w * (1.0 - u) * e_j),
        owner_utilization: u,
    }
}

/// A metrics evaluator with a feasibility verdict attached — the
/// question the paper poses in its title.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeasibilityMetrics {
    /// The raw metrics.
    pub metrics: Metrics,
    /// Target weighted efficiency used for the verdict (paper uses 0.80).
    pub target_weighted_efficiency: f64,
}

impl FeasibilityMetrics {
    /// The paper's feasibility bar: 80% of the possible (utilization
    /// adjusted) speedup.
    pub const PAPER_TARGET: f64 = 0.80;

    /// Evaluate with the paper's 80% target.
    pub fn evaluate(inputs: &ModelInputs) -> Self {
        Self::evaluate_with_target(inputs, Self::PAPER_TARGET)
    }

    /// Evaluate with a custom target in `(0, 1]`.
    pub fn evaluate_with_target(inputs: &ModelInputs, target: f64) -> Self {
        Self {
            metrics: evaluate(inputs),
            target_weighted_efficiency: target,
        }
    }

    /// Whether this configuration clears the target.
    pub fn is_feasible(&self) -> bool {
        self.metrics.weighted_efficiency >= self.target_weighted_efficiency
    }
}

/// Sweep helper: metrics across a range of workstation counts with the
/// job demand held fixed (the Figure 1–6 experiment shape).
pub fn fixed_size_sweep(
    job_demand: f64,
    workstations: &[u32],
    owner_demand: f64,
    utilization: f64,
) -> Result<Vec<(u32, Metrics)>, ModelError> {
    workstations
        .iter()
        .map(|&w| {
            let inputs = ModelInputs::from_utilization(job_demand, w, owner_demand, utilization)?;
            Ok((w, evaluate(&inputs)))
        })
        .collect()
}

/// Sweep helper: metrics across task ratios with `W`, `O`, `U` fixed
/// (the Figure 7–8 experiment shape). The task demand is `ratio · O`.
pub fn task_ratio_sweep(
    task_ratios: &[f64],
    workstations: u32,
    owner_demand: f64,
    utilization: f64,
) -> Result<Vec<(f64, Metrics)>, ModelError> {
    task_ratios
        .iter()
        .map(|&ratio| {
            if !ratio.is_finite() || ratio <= 0.0 {
                return Err(ModelError::InvalidParameter {
                    name: "task ratio",
                    value: ratio,
                    constraint: "must be finite and > 0",
                });
            }
            let task_demand = ratio * owner_demand;
            let job_demand = task_demand * workstations as f64;
            let inputs =
                ModelInputs::from_utilization(job_demand, workstations, owner_demand, utilization)?;
            Ok((ratio, evaluate(&inputs)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(j: f64, w: u32, o: f64, u: f64) -> ModelInputs {
        ModelInputs::from_utilization(j, w, o, u).unwrap()
    }

    #[test]
    fn metric_identities() {
        let m = evaluate(&inputs(1000.0, 20, 10.0, 0.1));
        let w = 20.0;
        let u = m.owner_utilization;
        assert!((m.efficiency - m.speedup / w).abs() < 1e-12);
        assert!((m.weighted_speedup - m.speedup / (1.0 - u)).abs() < 1e-9);
        assert!((m.weighted_efficiency - m.weighted_speedup / w).abs() < 1e-12);
    }

    #[test]
    fn weighted_dominates_unweighted() {
        let m = evaluate(&inputs(1000.0, 20, 10.0, 0.2));
        assert!(m.weighted_speedup > m.speedup);
        assert!(m.weighted_efficiency > m.efficiency);
    }

    #[test]
    fn efficiency_bounded_by_one() {
        for u in [0.01, 0.05, 0.1, 0.2] {
            for w in [1u32, 10, 60, 100] {
                let m = evaluate(&inputs(1000.0, w, 10.0, u));
                assert!(
                    m.efficiency <= 1.0 + 1e-12,
                    "eff {} at W={w} U={u}",
                    m.efficiency
                );
                assert!(
                    m.weighted_efficiency <= 1.0 + 1e-9,
                    "weff {} at W={w} U={u}",
                    m.weighted_efficiency
                );
                assert!(m.efficiency > 0.0);
            }
        }
    }

    #[test]
    fn single_station_weighted_efficiency_is_one() {
        // W=1: E_j = E_t = T/(1-U), so weighted efficiency = 1 exactly.
        for u in [0.01, 0.1, 0.2] {
            let m = evaluate(&inputs(1000.0, 1, 10.0, u));
            assert!(
                (m.weighted_efficiency - 1.0).abs() < 1e-9,
                "weff {} at U={u}",
                m.weighted_efficiency
            );
        }
    }

    #[test]
    fn speedup_declines_relative_to_perfect_as_w_grows() {
        let sweep = fixed_size_sweep(1000.0, &[1, 10, 50, 100], 10.0, 0.1).unwrap();
        let mut prev_frac = f64::INFINITY;
        for (w, m) in sweep {
            let frac = m.speedup / w as f64;
            assert!(frac <= prev_frac + 1e-12, "efficiency rose at W={w}");
            prev_frac = frac;
        }
    }

    #[test]
    fn paper_weighted_efficiency_anchors() {
        // §3.1: weighted efficiency at 100 nodes ≈ 61.5% (U=1%) and
        // ≈ 41% (U=20%) for J=1000, O=10.
        let m1 = evaluate(&inputs(1000.0, 100, 10.0, 0.01));
        assert!(
            (m1.weighted_efficiency - 0.615).abs() < 0.03,
            "weff {}",
            m1.weighted_efficiency
        );
        let m20 = evaluate(&inputs(1000.0, 100, 10.0, 0.20));
        assert!(
            (m20.weighted_efficiency - 0.41).abs() < 0.03,
            "weff {}",
            m20.weighted_efficiency
        );
    }

    #[test]
    fn task_ratio_sweep_monotone_in_ratio() {
        let sweep =
            task_ratio_sweep(&[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 60.0], 60, 10.0, 0.1).unwrap();
        let mut prev = 0.0;
        for (ratio, m) in sweep {
            assert!(
                m.weighted_efficiency >= prev - 1e-9,
                "weighted efficiency fell at ratio {ratio}"
            );
            prev = m.weighted_efficiency;
        }
    }

    #[test]
    fn task_ratio_sweep_rejects_bad_ratio() {
        assert!(task_ratio_sweep(&[0.0], 60, 10.0, 0.1).is_err());
        assert!(task_ratio_sweep(&[-1.0], 60, 10.0, 0.1).is_err());
    }

    #[test]
    fn feasibility_verdict() {
        // Large task ratio at modest utilization: feasible.
        let good = FeasibilityMetrics::evaluate(&inputs(60_000.0, 60, 10.0, 0.05));
        assert!(
            good.is_feasible(),
            "weff {}",
            good.metrics.weighted_efficiency
        );
        // Tiny task ratio at high utilization: infeasible.
        let bad = FeasibilityMetrics::evaluate(&inputs(600.0, 60, 10.0, 0.20));
        assert!(
            !bad.is_feasible(),
            "weff {}",
            bad.metrics.weighted_efficiency
        );
    }

    #[test]
    fn fixed_size_sweep_shape() {
        let sweep = fixed_size_sweep(1000.0, &[1, 2, 3], 10.0, 0.05).unwrap();
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].0, 1);
        assert_eq!(sweep[2].0, 3);
    }
}
