//! # nds-model — the paper's analytical model, exactly
//!
//! This crate implements the discrete-time analytical model of
//! Leutenegger & Sun, *Distributed Computing Feasibility in a
//! Non-Dedicated Homogeneous Distributed System* (SC '93, ICASE 93-65),
//! plus the generalizations the paper lists as future work.
//!
//! ## The model (paper §2)
//!
//! A parallel job of total demand `J` is split into `W` perfectly
//! balanced tasks of demand `T = J / W`, one per workstation. Time is
//! discrete. At each time unit a workstation's owner requests the CPU
//! with probability `P` (geometric think time, mean `1/P`); the owner
//! process runs for a deterministic `O` units with **preemptive priority**
//! over the parallel task, which then resumes and is guaranteed at least
//! one unit of progress before the next owner request.
//!
//! Consequently the number of owner interruptions a task suffers is
//! `n ~ Binomial(T, P)` and
//!
//! ```text
//! task time          = T + n·O                                   (eq. 1)
//! E_t                = T + O · Σ i·Bin(T,i,P)  = T(1 + O·P)       (eq. 3)
//! S[n]               = Σ_{i<=n} Bin(T,i,P)                       (eq. 4)
//! C[W,n]             = S[n]^W                                    (eq. 5)
//! Max[W,n]           = C[W,n] - C[W,n-1]                         (eq. 6)
//! E_j                = T + O · Σ i·Max[W,i]                      (eq. 7)
//! U                  = O / (O + 1/P)                             (eq. 8)
//! ```
//!
//! and the paper's metrics are
//!
//! ```text
//! task ratio          = T / O
//! speedup             = J / E_j
//! weighted speedup    = J / ((1-U) · E_j)
//! efficiency          = J / (W · E_j)
//! weighted efficiency = J / (W · (1-U) · E_j)
//! ```
//!
//! ## Module map
//!
//! * [`params`] — validated model parameters ([`params::OwnerParams`],
//!   [`params::ModelInputs`], [`params::Workload`]).
//! * [`binomial`] — numerically stable Binomial(T, P) pmf/cdf.
//! * [`interference`] — `S`, `C`, and `Max` (eqs. 4–6).
//! * [`expectation`] — `E_t` and `E_j` (eqs. 3 and 7), with smooth
//!   interpolation for non-integer task demands `T = J/W`.
//! * [`metrics`] — the five metrics plus task ratio (§3.1).
//! * [`distribution`] — the full job-time distribution (variance,
//!   quantiles, tail probabilities), beyond the paper's means.
//! * [`solver`] — inverse questions: required task ratio for a target
//!   weighted efficiency (the paper's 8/13/20 thresholds), required
//!   demand, maximum useful system size.
//! * [`hetero`] — heterogeneous owner parameters per workstation
//!   (`C[n] = Π_i S_i[n]`), a model generalization.
//! * [`scaled`] — memory-bounded scaleup analysis (§3.2, Figure 9).

#![forbid(unsafe_code)]

pub mod approx;
pub mod binomial;
pub mod distribution;
pub mod error;
pub mod expectation;
pub mod hetero;
pub mod interference;
pub mod metrics;
pub mod params;
pub mod scaled;
pub mod sensitivity;
pub mod solver;
pub mod variance;

pub use binomial::Binomial;
pub use distribution::JobTimeDistribution;
pub use error::ModelError;
pub use expectation::{expected_job_time, expected_task_time};
pub use interference::InterferenceProfile;
pub use metrics::{FeasibilityMetrics, Metrics};
pub use params::{ModelInputs, OwnerParams, Workload};
