//! The full distribution of the job completion time — an extension
//! beyond the paper's expectations.
//!
//! With integer task demand `T`, the job time takes values
//! `T + n·O` for `n = 0..=T` with probability `Max[W, n]` (eq. 6), so
//! the entire distribution is available in closed form. This module
//! exposes its variance, quantiles, and tail probabilities, which the
//! paper's "expectations only" analysis cannot answer (e.g. *what is the
//! 95th-percentile job time?* — the quantity a deadline-driven user
//! actually cares about).

use crate::interference::InterferenceProfile;
use crate::params::OwnerParams;

/// Distribution of the job completion time `T + O·max_i(n_i)`.
#[derive(Debug, Clone)]
pub struct JobTimeDistribution {
    task_demand: u64,
    owner_demand: f64,
    profile: InterferenceProfile,
}

impl JobTimeDistribution {
    /// Build for integer task demand `t`, `w` workstations, and the
    /// given owner parameters.
    pub fn new(t: u64, w: u32, owner: OwnerParams) -> Self {
        Self {
            task_demand: t,
            owner_demand: owner.demand(),
            profile: InterferenceProfile::new(t, owner.request_prob(), w),
        }
    }

    /// The support point for `n` interruptions: `T + n·O`.
    pub fn value(&self, n: u64) -> f64 {
        self.task_demand as f64 + n as f64 * self.owner_demand
    }

    /// `P(job time = T + n·O)`.
    pub fn pmf(&self, n: u64) -> f64 {
        self.profile.max_pmf(n)
    }

    /// Expected job time (matches eq. 7).
    pub fn mean(&self) -> f64 {
        self.task_demand as f64 + self.owner_demand * self.profile.expected_max()
    }

    /// Variance of the job time: `O² · Var(max)`.
    pub fn variance(&self) -> f64 {
        self.owner_demand * self.owner_demand * self.profile.variance_of_max()
    }

    /// Standard deviation of the job time.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// `P(job time <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < self.task_demand as f64 {
            return 0.0;
        }
        let n = ((x - self.task_demand as f64) / self.owner_demand).floor();
        self.profile.c(n as u64)
    }

    /// Smallest support point whose cdf reaches `q` (a true quantile of
    /// the discrete distribution). `q` must be in `(0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile requires q in (0,1]");
        if self.task_demand == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for n in self.profile.support_offset()..=self.profile.support_end() {
            acc += self.profile.max_pmf(n);
            if acc >= q - 1e-15 {
                return self.value(n);
            }
        }
        self.value(self.profile.support_end())
    }

    /// `P(job time > x)` — the deadline-miss probability for deadline `x`.
    pub fn tail(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Worst-case job time `T + T·O` (paper: "guaranteed ... at most
    /// T + (T × O) units").
    pub fn worst_case(&self) -> f64 {
        self.task_demand as f64 * (1.0 + self.owner_demand)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(o: f64, u: f64) -> OwnerParams {
        OwnerParams::from_utilization(o, u).unwrap()
    }

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn mean_matches_expectation_module() {
        let ow = owner(10.0, 0.1);
        let d = JobTimeDistribution::new(100, 20, ow);
        close(
            d.mean(),
            crate::expectation::expected_job_time_int(100, 20, ow),
            1e-10,
        );
    }

    #[test]
    fn support_and_worst_case() {
        let ow = owner(10.0, 0.05);
        let d = JobTimeDistribution::new(50, 5, ow);
        assert_eq!(d.value(0), 50.0);
        assert_eq!(d.value(3), 80.0);
        assert_eq!(d.worst_case(), 50.0 * 11.0);
    }

    #[test]
    fn cdf_zero_below_t_one_at_worst_case() {
        let ow = owner(10.0, 0.1);
        let d = JobTimeDistribution::new(40, 8, ow);
        assert_eq!(d.cdf(39.9), 0.0);
        close(d.cdf(d.worst_case()), 1.0, 1e-12);
        close(d.tail(d.worst_case()), 0.0, 1e-12);
    }

    #[test]
    fn cdf_nondecreasing() {
        let ow = owner(10.0, 0.2);
        let d = JobTimeDistribution::new(30, 10, ow);
        let mut prev = 0.0;
        let mut x = 25.0;
        while x < d.worst_case() + 20.0 {
            let c = d.cdf(x);
            assert!(c >= prev - 1e-15);
            prev = c;
            x += 7.3;
        }
    }

    #[test]
    fn quantile_reaches_cdf_level() {
        let ow = owner(10.0, 0.1);
        let d = JobTimeDistribution::new(60, 12, ow);
        for q in [0.1, 0.5, 0.9, 0.95, 0.99] {
            let x = d.quantile(q);
            assert!(d.cdf(x) >= q - 1e-9, "cdf({x}) = {} < {q}", d.cdf(x));
        }
    }

    #[test]
    fn median_between_mean_bounds() {
        let ow = owner(10.0, 0.1);
        let d = JobTimeDistribution::new(100, 10, ow);
        let med = d.quantile(0.5);
        assert!(med >= 100.0 && med <= d.worst_case());
    }

    #[test]
    fn variance_nonnegative_and_degenerate_cases() {
        let ow = owner(10.0, 0.1);
        let d = JobTimeDistribution::new(100, 10, ow);
        assert!(d.variance() >= 0.0);
        assert!(d.std_dev() >= 0.0);
        // Degenerate: T = 0 can never be interrupted.
        let z = JobTimeDistribution::new(0, 10, ow);
        assert_eq!(z.variance(), 0.0);
        assert_eq!(z.mean(), 0.0);
    }

    #[test]
    fn tail_decreases_with_larger_deadline() {
        let ow = owner(10.0, 0.2);
        let d = JobTimeDistribution::new(50, 20, ow);
        assert!(d.tail(50.0) >= d.tail(100.0));
        assert!(d.tail(100.0) >= d.tail(300.0));
    }

    #[test]
    fn more_workstations_shift_distribution_right() {
        let ow = owner(10.0, 0.1);
        let small = JobTimeDistribution::new(100, 2, ow);
        let large = JobTimeDistribution::new(100, 50, ow);
        assert!(large.mean() > small.mean());
        // Stochastic dominance at a few probe points.
        for x in [110.0, 130.0, 160.0] {
            assert!(large.cdf(x) <= small.cdf(x) + 1e-12);
        }
    }

    #[test]
    fn pmf_matches_profile() {
        let ow = owner(10.0, 0.1);
        let d = JobTimeDistribution::new(20, 5, ow);
        let total: f64 = (0..=20).map(|n| d.pmf(n)).sum();
        close(total, 1.0, 1e-10);
    }
}
