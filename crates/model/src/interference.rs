//! Interference order statistics: the paper's `S`, `C`, and `Max`
//! functions (eqs. 4–6).
//!
//! * `S[n]` — probability an individual task is interrupted by at most
//!   `n` owner processes (the binomial cdf).
//! * `C[W,n] = S[n]^W` — probability **all** `W` tasks are interrupted by
//!   at most `n` owner processes (independence across workstations).
//! * `Max[W,n] = C[W,n] - C[W,n-1]` — pmf of the maximum interruption
//!   count over the `W` tasks.

use crate::binomial::Binomial;

/// Distribution of the per-task and maximum interruption counts for a
/// job of integer task demand `T` on `W` workstations.
#[derive(Debug, Clone)]
pub struct InterferenceProfile {
    binomial: Binomial,
    workstations: u32,
    /// First interruption count covered by `c`/`max_pmf` (the binomial's
    /// materialized window start; counts below carry negligible mass).
    offset: u64,
    /// `C[W,n]` for `n = offset..` (windowed).
    c: Vec<f64>,
    /// `Max[W,n]` for `n = offset..` (windowed).
    max_pmf: Vec<f64>,
}

impl InterferenceProfile {
    /// Build the profile for integer task demand `t`, request probability
    /// `p`, and `w >= 1` workstations.
    pub fn new(t: u64, p: f64, w: u32) -> Self {
        assert!(w >= 1, "need at least one workstation");
        let binomial = Binomial::new(t, p);
        let offset = binomial.support_offset();
        let wf = w as f64;
        let mut c = Vec::with_capacity(binomial.cdf_slice().len());
        for &s in binomial.cdf_slice() {
            c.push(s.powf(wf));
        }
        let mut max_pmf = Vec::with_capacity(c.len());
        let mut prev = 0.0;
        for &ci in &c {
            max_pmf.push((ci - prev).max(0.0));
            prev = ci;
        }
        Self {
            binomial,
            workstations: w,
            offset,
            c,
            max_pmf,
        }
    }

    /// The per-task interruption-count distribution `Bin(T, P)`.
    pub fn per_task(&self) -> &Binomial {
        &self.binomial
    }

    /// Number of workstations `W`.
    pub fn workstations(&self) -> u32 {
        self.workstations
    }

    /// `S[n]`: probability a single task suffers at most `n` interruptions.
    pub fn s(&self, n: u64) -> f64 {
        self.binomial.cdf(n)
    }

    /// `C[W,n]`: probability every task suffers at most `n` interruptions.
    pub fn c(&self, n: u64) -> f64 {
        if n < self.offset {
            return 0.0;
        }
        let idx = (n - self.offset) as usize;
        if idx >= self.c.len() {
            1.0
        } else {
            self.c[idx]
        }
    }

    /// `Max[W,n]`: probability the maximum interruption count equals `n`.
    pub fn max_pmf(&self, n: u64) -> f64 {
        if n < self.offset {
            return 0.0;
        }
        self.max_pmf
            .get((n - self.offset) as usize)
            .copied()
            .unwrap_or(0.0)
    }

    /// First interruption count of the materialized window.
    pub fn support_offset(&self) -> u64 {
        self.offset
    }

    /// Last interruption count of the materialized window (inclusive).
    pub fn support_end(&self) -> u64 {
        self.offset + (self.max_pmf.len() as u64 - 1)
    }

    /// The materialized `Max[W,·]` pmf window; index `i` is count
    /// `support_offset() + i`.
    pub fn max_pmf_slice(&self) -> &[f64] {
        &self.max_pmf
    }

    /// Expected maximum interruption count `Σ n·Max[W,n]`.
    pub fn expected_max(&self) -> f64 {
        self.max_pmf
            .iter()
            .enumerate()
            .map(|(i, &p)| (self.offset + i as u64) as f64 * p)
            .sum()
    }

    /// Variance of the maximum interruption count.
    pub fn variance_of_max(&self) -> f64 {
        let mean = self.expected_max();
        self.max_pmf
            .iter()
            .enumerate()
            .map(|(i, &p)| ((self.offset + i as u64) as f64 - mean).powi(2) * p)
            .sum()
    }

    /// Expected per-task interruption count `T·P`.
    pub fn expected_per_task(&self) -> f64 {
        self.binomial.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn single_workstation_max_is_per_task() {
        let prof = InterferenceProfile::new(50, 0.05, 1);
        for n in 0..=50 {
            close(prof.max_pmf(n), prof.per_task().pmf(n), 1e-12);
        }
        close(prof.expected_max(), prof.expected_per_task(), 1e-9);
    }

    #[test]
    fn c_is_s_to_the_w() {
        let prof = InterferenceProfile::new(20, 0.1, 8);
        for n in 0..=20 {
            close(prof.c(n), prof.s(n).powi(8), 1e-12);
        }
    }

    #[test]
    fn max_pmf_sums_to_one() {
        for w in [1u32, 2, 10, 100] {
            let prof = InterferenceProfile::new(100, 0.02, w);
            let total: f64 = prof.max_pmf_slice().iter().sum();
            close(total, 1.0, 1e-10);
        }
    }

    #[test]
    fn expected_max_nondecreasing_in_w() {
        let mut prev = 0.0;
        for w in [1u32, 2, 4, 8, 16, 32, 64] {
            let prof = InterferenceProfile::new(100, 0.02, w);
            let em = prof.expected_max();
            assert!(em >= prev - 1e-12, "E[max] decreased at W={w}");
            prev = em;
        }
    }

    #[test]
    fn expected_max_dominates_per_task_mean() {
        let prof = InterferenceProfile::new(100, 0.02, 30);
        assert!(prof.expected_max() >= prof.expected_per_task());
    }

    #[test]
    fn zero_demand_task_never_interrupted() {
        let prof = InterferenceProfile::new(0, 0.5, 10);
        assert_eq!(prof.max_pmf(0), 1.0);
        assert_eq!(prof.expected_max(), 0.0);
    }

    #[test]
    fn beyond_support_is_certain() {
        let prof = InterferenceProfile::new(5, 0.3, 3);
        assert_eq!(prof.c(5), 1.0);
        assert_eq!(prof.c(100), 1.0);
        assert_eq!(prof.max_pmf(6), 0.0);
    }

    #[test]
    fn variance_of_max_nonnegative() {
        let prof = InterferenceProfile::new(60, 0.05, 12);
        assert!(prof.variance_of_max() >= 0.0);
    }

    #[test]
    fn two_station_max_hand_check() {
        // T=1, p=0.5, W=2: per-task is Bernoulli(0.5).
        // Max=0 with prob 0.25, Max=1 with prob 0.75.
        let prof = InterferenceProfile::new(1, 0.5, 2);
        close(prof.max_pmf(0), 0.25, 1e-12);
        close(prof.max_pmf(1), 0.75, 1e-12);
        close(prof.expected_max(), 0.75, 1e-12);
    }
}
