//! Heterogeneous-owner generalization of the model.
//!
//! The paper assumes every workstation has the same `(O, P)`. Real pools
//! do not: some owners are heavy users, some machines are nearly idle.
//! Independence still factorizes the job-time cdf:
//!
//! ```text
//! P(job ≤ T + y) = Π_i  S_i( floor(y / O_i) ),    y ≥ 0
//! ```
//!
//! where `S_i` is workstation `i`'s binomial interruption cdf. The
//! expected job time follows by integrating the survival function, which
//! is piecewise constant with breakpoints at `y = k·O_i`.
//!
//! This module is the analytical counterpart of the cluster simulator's
//! per-workstation owner configuration, and backs the `ext_hetero`
//! experiment binary.

use crate::binomial::Binomial;
use crate::error::ModelError;
use crate::params::OwnerParams;

/// A heterogeneous system: one owner parameter set per workstation, all
/// executing tasks of the same integer demand `T`.
#[derive(Debug, Clone)]
pub struct HeteroSystem {
    task_demand: u64,
    stations: Vec<OwnerParams>,
}

impl HeteroSystem {
    /// Build from a task demand and per-workstation owner parameters
    /// (at least one workstation).
    pub fn new(task_demand: u64, stations: Vec<OwnerParams>) -> Result<Self, ModelError> {
        if stations.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "stations",
                value: 0.0,
                constraint: "need at least one workstation",
            });
        }
        Ok(Self {
            task_demand,
            stations,
        })
    }

    /// Number of workstations.
    pub fn workstations(&self) -> usize {
        self.stations.len()
    }

    /// Per-task demand `T`.
    pub fn task_demand(&self) -> u64 {
        self.task_demand
    }

    /// `P(job time <= T + y)` for extra delay `y >= 0`.
    pub fn cdf_extra_delay(&self, y: f64) -> f64 {
        if y < 0.0 {
            return 0.0;
        }
        self.station_binomials()
            .iter()
            .zip(&self.stations)
            .map(|(b, ow)| b.cdf((y / ow.demand()).floor() as u64))
            .product()
    }

    /// Expected job completion time, exact up to floating point.
    pub fn expected_job_time(&self) -> f64 {
        let t = self.task_demand;
        if t == 0 {
            return 0.0;
        }
        let binomials = self.station_binomials();
        // Survival of the extra delay is piecewise constant with
        // breakpoints at every k·O_i; integrate exactly between them.
        let mut breakpoints: Vec<f64> = Vec::new();
        for ow in &self.stations {
            for k in 1..=t {
                breakpoints.push(k as f64 * ow.demand());
            }
        }
        breakpoints.sort_by(|a, b| a.total_cmp(b));
        breakpoints.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let mut expected_extra = 0.0;
        let mut prev = 0.0;
        for &bp in &breakpoints {
            let mid = 0.5 * (prev + bp);
            let cdf: f64 = binomials
                .iter()
                .zip(&self.stations)
                .map(|(b, ow)| b.cdf((mid / ow.demand()).floor() as u64))
                .product();
            expected_extra += (1.0 - cdf) * (bp - prev);
            prev = bp;
        }
        t as f64 + expected_extra
    }

    /// Mean owner utilization across the pool.
    pub fn mean_utilization(&self) -> f64 {
        self.stations.iter().map(|s| s.utilization()).sum::<f64>() / self.stations.len() as f64
    }

    /// Weighted efficiency generalized to heterogeneous pools: realized
    /// work rate `J/E_j` over the aggregate idle capacity
    /// `Σ_i (1-U_i)`.
    pub fn weighted_efficiency(&self) -> f64 {
        let e_j = self.expected_job_time();
        if e_j == 0.0 {
            return 1.0;
        }
        let j = self.task_demand as f64 * self.stations.len() as f64;
        let idle_capacity: f64 = self.stations.iter().map(|s| 1.0 - s.utilization()).sum();
        j / (idle_capacity * e_j)
    }

    fn station_binomials(&self) -> Vec<Binomial> {
        self.stations
            .iter()
            .map(|ow| Binomial::new(self.task_demand, ow.request_prob()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expectation::expected_job_time_int;

    fn owner(o: f64, u: f64) -> OwnerParams {
        OwnerParams::from_utilization(o, u).unwrap()
    }

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn homogeneous_matches_base_model() {
        let ow = owner(10.0, 0.1);
        for w in [1usize, 2, 8] {
            let sys = HeteroSystem::new(50, vec![ow; w]).unwrap();
            close(
                sys.expected_job_time(),
                expected_job_time_int(50, w as u32, ow),
                1e-6 * 50.0,
            );
        }
    }

    #[test]
    fn one_busy_station_dominates() {
        // A pool of nearly idle stations plus one heavily used one should
        // behave close to the busy station alone.
        let idle = owner(10.0, 0.01);
        let busy = owner(10.0, 0.30);
        let mixed = HeteroSystem::new(100, vec![idle, idle, idle, busy]).unwrap();
        let busy_alone = HeteroSystem::new(100, vec![busy]).unwrap();
        let idle_pool = HeteroSystem::new(100, vec![idle; 4]).unwrap();
        let m = mixed.expected_job_time();
        assert!(m >= busy_alone.expected_job_time() - 1e-9);
        assert!(m > idle_pool.expected_job_time());
    }

    #[test]
    fn cdf_extra_delay_monotone() {
        let sys = HeteroSystem::new(
            30,
            vec![owner(10.0, 0.1), owner(5.0, 0.2), owner(20.0, 0.05)],
        )
        .unwrap();
        let mut prev = 0.0;
        let mut y = 0.0;
        while y < 400.0 {
            let c = sys.cdf_extra_delay(y);
            assert!(c >= prev - 1e-12, "cdf fell at y={y}");
            assert!((0.0..=1.0 + 1e-12).contains(&c));
            prev = c;
            y += 3.7;
        }
        assert_eq!(sys.cdf_extra_delay(-1.0), 0.0);
    }

    #[test]
    fn adding_stations_never_speeds_job() {
        let base = HeteroSystem::new(60, vec![owner(10.0, 0.1); 3]).unwrap();
        let more = HeteroSystem::new(60, {
            let mut v = vec![owner(10.0, 0.1); 3];
            v.push(owner(10.0, 0.05));
            v
        })
        .unwrap();
        assert!(more.expected_job_time() >= base.expected_job_time() - 1e-9);
    }

    #[test]
    fn zero_demand_job_is_instant() {
        let sys = HeteroSystem::new(0, vec![owner(10.0, 0.2); 5]).unwrap();
        assert_eq!(sys.expected_job_time(), 0.0);
        assert_eq!(sys.weighted_efficiency(), 1.0);
    }

    #[test]
    fn mean_utilization_averages() {
        let sys = HeteroSystem::new(10, vec![owner(10.0, 0.1), owner(10.0, 0.3)]).unwrap();
        close(sys.mean_utilization(), 0.2, 1e-12);
    }

    #[test]
    fn weighted_efficiency_bounded() {
        let sys = HeteroSystem::new(
            200,
            vec![owner(10.0, 0.05), owner(10.0, 0.10), owner(10.0, 0.20)],
        )
        .unwrap();
        let we = sys.weighted_efficiency();
        assert!(we > 0.0 && we <= 1.0 + 1e-9, "weff {we}");
    }

    #[test]
    fn rejects_empty_pool() {
        assert!(HeteroSystem::new(10, vec![]).is_err());
    }

    #[test]
    fn hetero_worse_than_uniform_at_same_mean_util() {
        // Jensen-style: a 2-station pool at (5%, 15%) should be no faster
        // than a uniform pool at 10% — the max is driven by the worst
        // station.
        let uniform = HeteroSystem::new(100, vec![owner(10.0, 0.10); 2]).unwrap();
        let spread = HeteroSystem::new(100, vec![owner(10.0, 0.05), owner(10.0, 0.15)]).unwrap();
        assert!(
            spread.expected_job_time() >= uniform.expected_job_time() - 0.5,
            "spread {} vs uniform {}",
            spread.expected_job_time(),
            uniform.expected_job_time()
        );
    }
}
