//! Inverse ("feasibility design") questions.
//!
//! The paper's headline conclusion is stated in inverse form: *"the task
//! ratio should be at least 8 for a parallel job to achieve 80 percent
//! of the possible speedup ... for a utilization of 5 percent. At a
//! utilization of 10 percent the task ratio must be 13 or higher, and at
//! a utilization of 20 percent the task ratio must be 20 or greater."*
//!
//! This module answers those questions directly:
//!
//! * [`required_task_ratio`] — minimum `T/O` for a target weighted
//!   efficiency,
//! * [`required_job_demand`] — the same expressed as total demand `J`,
//! * [`max_workstations`] — largest fixed-size system that still meets
//!   the target.

use crate::error::ModelError;
use crate::expectation::expected_job_time;
use crate::params::OwnerParams;

/// Weighted efficiency for task demand `t` (real), `w` workstations.
fn weighted_efficiency(t: f64, w: u32, owner: OwnerParams) -> f64 {
    let e_j = expected_job_time(t, w, owner);
    if e_j == 0.0 {
        return 1.0;
    }
    t / ((1.0 - owner.utilization()) * e_j)
}

/// Minimum task demand `T` (real-valued) such that the weighted
/// efficiency reaches `target` on `w` workstations.
///
/// Weighted efficiency is nondecreasing in `T` for this model (longer
/// tasks amortize interruptions better), so a bracketing bisection is
/// exact up to the requested tolerance.
pub fn required_task_demand(w: u32, owner: OwnerParams, target: f64) -> Result<f64, ModelError> {
    if !(0.0..1.0).contains(&target) || target <= 0.0 {
        return Err(ModelError::InvalidParameter {
            name: "target weighted efficiency",
            value: target,
            constraint: "must be in (0, 1)",
        });
    }
    // Bracket: double T until the target is met.
    let mut hi = owner.demand().max(1.0);
    let mut tries = 0;
    while weighted_efficiency(hi, w, owner) < target {
        hi *= 2.0;
        tries += 1;
        if tries > 60 {
            return Err(ModelError::NoSolution {
                what: "required task demand (target unreachable)",
            });
        }
    }
    let mut lo = 0.0;
    // Bisection to a relative tolerance of 1e-6.
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if weighted_efficiency(mid, w, owner) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo <= 1e-6 * hi.max(1.0) {
            break;
        }
    }
    Ok(hi)
}

/// Minimum task ratio `T/O` for a target weighted efficiency on `w`
/// workstations — the paper's 8/13/20 thresholds.
pub fn required_task_ratio(w: u32, owner: OwnerParams, target: f64) -> Result<f64, ModelError> {
    Ok(required_task_demand(w, owner, target)? / owner.demand())
}

/// Minimum total job demand `J = T·W` for a target weighted efficiency.
pub fn required_job_demand(w: u32, owner: OwnerParams, target: f64) -> Result<f64, ModelError> {
    Ok(required_task_demand(w, owner, target)? * w as f64)
}

/// Largest workstation count `W` at which a **fixed-size** job of demand
/// `j` still meets the target weighted efficiency, or `None` if it fails
/// even at `W = 1`.
///
/// For fixed `J`, growing `W` shrinks `T = J/W` and (in this model)
/// monotonically lowers weighted efficiency, so binary search applies.
pub fn max_workstations(
    j: f64,
    owner: OwnerParams,
    target: f64,
    w_cap: u32,
) -> Result<Option<u32>, ModelError> {
    if !(0.0..1.0).contains(&target) || target <= 0.0 {
        return Err(ModelError::InvalidParameter {
            name: "target weighted efficiency",
            value: target,
            constraint: "must be in (0, 1)",
        });
    }
    if !j.is_finite() || j <= 0.0 {
        return Err(ModelError::InvalidParameter {
            name: "J (job demand)",
            value: j,
            constraint: "must be finite and > 0",
        });
    }
    let meets = |w: u32| weighted_efficiency(j / w as f64, w, owner) >= target;
    if !meets(1) {
        return Ok(None);
    }
    let (mut lo, mut hi) = (1u32, w_cap.max(1));
    if meets(hi) {
        return Ok(Some(hi));
    }
    // Invariant: meets(lo), !meets(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if meets(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(lo))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(u: f64) -> OwnerParams {
        OwnerParams::from_utilization(10.0, u).unwrap()
    }

    // The paper's §5 thresholds ("task ratio at least 8 at U=5%, 13 at
    // U=10%, 20 at U=20%") do not name a system size. The exact model
    // yields 7.6/11.6/17.3 at the Figure-7 size W=60 and 9.1/13.7/20.3
    // at W=100; the published integers sit between, closest to W=100.
    // We assert the W=60 values tightly and check W=100 brackets the
    // paper's integers.

    #[test]
    fn threshold_5pct_w60_and_w100() {
        let r60 = required_task_ratio(60, owner(0.05), 0.80).unwrap();
        assert!((7.0..=8.2).contains(&r60), "W=60 ratio {r60}");
        let r100 = required_task_ratio(100, owner(0.05), 0.80).unwrap();
        assert!((8.0..=10.0).contains(&r100), "W=100 ratio {r100}");
    }

    #[test]
    fn threshold_10pct_w60_and_w100() {
        let r60 = required_task_ratio(60, owner(0.10), 0.80).unwrap();
        assert!((10.8..=12.5).contains(&r60), "W=60 ratio {r60}");
        let r100 = required_task_ratio(100, owner(0.10), 0.80).unwrap();
        assert!((12.5..=14.5).contains(&r100), "W=100 ratio {r100}");
    }

    #[test]
    fn threshold_20pct_w60_and_w100() {
        let r60 = required_task_ratio(60, owner(0.20), 0.80).unwrap();
        assert!((16.0..=18.5).contains(&r60), "W=60 ratio {r60}");
        let r100 = required_task_ratio(100, owner(0.20), 0.80).unwrap();
        assert!((19.0..=21.5).contains(&r100), "W=100 ratio {r100}");
    }

    #[test]
    fn threshold_increases_with_utilization() {
        let r5 = required_task_ratio(60, owner(0.05), 0.80).unwrap();
        let r10 = required_task_ratio(60, owner(0.10), 0.80).unwrap();
        let r20 = required_task_ratio(60, owner(0.20), 0.80).unwrap();
        assert!(r5 < r10 && r10 < r20);
    }

    #[test]
    fn threshold_increases_with_system_size() {
        // Fig. 8: sensitivity to task ratio increases with system size.
        let r2 = required_task_ratio(2, owner(0.10), 0.80).unwrap();
        let r20 = required_task_ratio(20, owner(0.10), 0.80).unwrap();
        let r100 = required_task_ratio(100, owner(0.10), 0.80).unwrap();
        assert!(r2 < r20 && r20 < r100, "{r2} {r20} {r100}");
    }

    #[test]
    fn solution_actually_meets_target() {
        let ow = owner(0.10);
        let t = required_task_demand(60, ow, 0.80).unwrap();
        assert!(weighted_efficiency(t, 60, ow) >= 0.80 - 1e-6);
        // And slightly less demand must fail.
        assert!(weighted_efficiency(t * 0.98, 60, ow) < 0.80);
    }

    #[test]
    fn job_demand_is_task_demand_times_w() {
        let ow = owner(0.05);
        let t = required_task_demand(30, ow, 0.8).unwrap();
        let j = required_job_demand(30, ow, 0.8).unwrap();
        assert!((j - 30.0 * t).abs() < 1e-6 * j);
    }

    #[test]
    fn rejects_bad_target() {
        assert!(required_task_ratio(60, owner(0.05), 0.0).is_err());
        assert!(required_task_ratio(60, owner(0.05), 1.0).is_err());
        assert!(max_workstations(1000.0, owner(0.05), 1.5, 100).is_err());
    }

    #[test]
    fn max_workstations_monotone_in_demand() {
        let ow = owner(0.10);
        let small = max_workstations(1_000.0, ow, 0.80, 500).unwrap().unwrap();
        let large = max_workstations(10_000.0, ow, 0.80, 500).unwrap().unwrap();
        assert!(large > small, "{large} vs {small}");
    }

    #[test]
    fn max_workstations_boundary_is_tight() {
        let ow = owner(0.10);
        if let Some(w) = max_workstations(5_000.0, ow, 0.80, 500).unwrap() {
            assert!(weighted_efficiency(5_000.0 / w as f64, w, ow) >= 0.80);
            if w < 500 {
                assert!(
                    weighted_efficiency(5_000.0 / (w + 1) as f64, w + 1, ow) < 0.80,
                    "W+1 unexpectedly feasible"
                );
            }
        } else {
            panic!("5000-unit job should be feasible at W=1");
        }
    }

    #[test]
    fn max_workstations_none_when_infeasible_at_one() {
        // W = 1 always has weighted efficiency 1.0 in this model, so use
        // an extreme target to force None via the target check instead.
        let ow = owner(0.20);
        // Tiny job at W=1 still achieves weff ≈ 1, so feasible: Some(..).
        let r = max_workstations(1.0, ow, 0.99, 10).unwrap();
        assert!(r.is_some());
    }

    #[test]
    fn cap_respected() {
        let ow = owner(0.01);
        // Enormous job: everything up to the cap is feasible.
        let r = max_workstations(1e9, ow, 0.80, 64).unwrap();
        assert_eq!(r, Some(64));
    }
}
