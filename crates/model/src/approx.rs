//! Fast closed-form approximations of the expected maximum.
//!
//! The exact `E_j` (eq. 7) costs O(T) per evaluation. For design-space
//! sweeps over millions of configurations, this module provides O(1)
//! approximations based on extreme-value theory: the max of `W` iid
//! binomials is approximately `μ + σ·a(W)` where `a(W)` is the
//! normal-order-statistic constant. Accuracy is a few percent for
//! moderate `T·P` and large `W` — good enough to *search* a design
//! space before confirming with the exact model.

use crate::params::OwnerParams;
use nds_stats::special::inverse_normal_cdf;

/// Expected maximum of `w` iid standard normals (Blom's approximation
/// of the first order statistic: `Φ⁻¹((w - 0.375)/(w + 0.25))`).
pub fn normal_max_constant(w: u32) -> f64 {
    assert!(w >= 1, "need at least one variate");
    if w == 1 {
        return 0.0;
    }
    inverse_normal_cdf((f64::from(w) - 0.375) / (f64::from(w) + 0.25))
}

/// O(1) approximation of the expected maximum interruption count over
/// `w` workstations: `T·P + sqrt(T·P·(1-P)) · a(w)`, clamped to the
/// valid range `[T·P, T]`.
pub fn approx_expected_max(t: f64, p: f64, w: u32) -> f64 {
    assert!(t >= 0.0 && (0.0..=1.0).contains(&p), "bad parameters");
    let mean = t * p;
    let sigma = (t * p * (1.0 - p)).sqrt();
    (mean + sigma * normal_max_constant(w)).clamp(mean, t)
}

/// O(1) approximation of `E_j` (eq. 7): `T + O · approx_expected_max`.
pub fn approx_expected_job_time(t: f64, w: u32, owner: OwnerParams) -> f64 {
    t + owner.demand() * approx_expected_max(t, owner.request_prob(), w)
}

/// O(1) approximation of the weighted efficiency.
pub fn approx_weighted_efficiency(t: f64, w: u32, owner: OwnerParams) -> f64 {
    let e_j = approx_expected_job_time(t, w, owner);
    if e_j == 0.0 {
        1.0
    } else {
        t / ((1.0 - owner.utilization()) * e_j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expectation::expected_job_time_int;

    fn owner(u: f64) -> OwnerParams {
        OwnerParams::from_utilization(10.0, u).unwrap()
    }

    #[test]
    fn normal_max_constants_match_tables() {
        // Known E[max of W standard normals]: W=2 -> 0.5642, W=10 ->
        // 1.5388, W=100 -> 2.5076 (Blom is within ~1%).
        assert_eq!(normal_max_constant(1), 0.0);
        assert!((normal_max_constant(2) - 0.5642).abs() < 0.03);
        assert!((normal_max_constant(10) - 1.5388).abs() < 0.03);
        assert!((normal_max_constant(100) - 2.5076).abs() < 0.03);
    }

    #[test]
    fn constants_increase_with_w() {
        let mut prev = -1.0;
        for w in [1u32, 2, 5, 10, 50, 100, 1000] {
            let a = normal_max_constant(w);
            assert!(a > prev);
            prev = a;
        }
    }

    #[test]
    fn approx_tracks_exact_for_moderate_counts() {
        // T·P >= ~5 is where the normal approximation is trustworthy.
        for (t, u, w) in [(1000u64, 0.10, 20u32), (2000, 0.05, 60), (500, 0.20, 100)] {
            let ow = owner(u);
            let exact = expected_job_time_int(t, w, ow);
            let approx = approx_expected_job_time(t as f64, w, ow);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel < 0.05,
                "T={t} U={u} W={w}: approx {approx} vs exact {exact} (rel {rel})"
            );
        }
    }

    #[test]
    fn approx_within_model_bounds() {
        let ow = owner(0.10);
        for w in [1u32, 10, 100, 1000] {
            let e = approx_expected_job_time(100.0, w, ow);
            assert!(e >= 100.0);
            assert!(e <= 100.0 * (1.0 + ow.demand()));
        }
    }

    #[test]
    fn single_station_reduces_to_mean() {
        let ow = owner(0.10);
        let e = approx_expected_job_time(500.0, 1, ow);
        // E_t = T(1 + O·P).
        let expected = 500.0 * (1.0 + ow.demand() * ow.request_prob());
        assert!((e - expected).abs() < 1e-9);
    }

    #[test]
    fn approx_weighted_efficiency_reasonable() {
        let ow = owner(0.10);
        let we = approx_weighted_efficiency(130.0, 100, ow);
        assert!(we > 0.5 && we <= 1.0, "weff {we}");
        // Monotone in T.
        assert!(approx_weighted_efficiency(1000.0, 100, ow) > we);
    }

    #[test]
    #[should_panic(expected = "need at least one")]
    fn rejects_zero_w() {
        normal_max_constant(0);
    }
}
