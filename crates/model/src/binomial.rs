//! Numerically stable Binomial(n, p) distribution.
//!
//! The model needs the full pmf of the number of owner interruptions,
//! `Bin(T, P)` (paper eq. 2), for `T` from a handful up to 10^9 (the
//! solver probes very large demands). The pmf is computed by the
//! multiplicative recurrence seeded in log space at the mode, which is
//! stable across the whole range. For large `n` only a window of
//! `±40σ` around the mean is materialized — the truncated tail mass is
//! below 10^-300 and numerically indistinguishable from zero.

use nds_stats::special::ln_choose;

/// Number of trials above which the pmf is windowed instead of fully
/// materialized.
const FULL_MATERIALIZATION_LIMIT: u64 = 1 << 16;

/// Width of the materialized window in standard deviations on each side
/// of the mean.
const WINDOW_SIGMAS: f64 = 40.0;

/// Binomial distribution `Bin(n, p)` with a materialized (possibly
/// windowed) pmf.
#[derive(Debug, Clone)]
pub struct Binomial {
    n: u64,
    p: f64,
    /// First outcome covered by `pmf`/`cdf`. Outcomes below carry
    /// negligible (< 1e-300) probability and are treated as zero.
    offset: u64,
    pmf: Vec<f64>,
    cdf: Vec<f64>,
}

impl Binomial {
    /// Construct `Bin(n, p)` with `p in [0, 1]`.
    ///
    /// `n = 0` yields the degenerate point mass at 0 (a zero-demand task
    /// is never interrupted).
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p) && p.is_finite(),
            "binomial p must be in [0,1], got {p}"
        );
        if p == 0.0 {
            return Self {
                n,
                p,
                offset: 0,
                pmf: vec![1.0],
                cdf: vec![1.0],
            };
        }
        if p == 1.0 {
            return Self {
                n,
                p,
                offset: n,
                pmf: vec![1.0],
                cdf: vec![1.0],
            };
        }

        let nf = n as f64;
        let (lo, hi) = if n <= FULL_MATERIALIZATION_LIMIT {
            (0u64, n)
        } else {
            let mean = nf * p;
            let sigma = (nf * p * (1.0 - p)).sqrt();
            let half = (WINDOW_SIGMAS * sigma).max(64.0);
            let lo = (mean - half).floor().max(0.0) as u64;
            let hi = (mean + half).ceil().min(nf) as u64;
            (lo, hi)
        };

        let len = (hi - lo + 1) as usize;
        let mut pmf = vec![0.0f64; len];
        // Seed at the mode (clamped into the window) in log space, then
        // run the recurrence pmf[k+1]/pmf[k] = (n-k)/(k+1) · p/(1-p)
        // outward in both directions. Terms that underflow to 0 are
        // genuinely below ~1e-308 and contribute nothing.
        let mode = (((nf + 1.0) * p).floor().min(nf) as u64).clamp(lo, hi);
        // ln(1-p) via ln_1p(-p) keeps accuracy for tiny p.
        let ln_mode = ln_choose(n, mode) + mode as f64 * p.ln() + (nf - mode as f64) * (-p).ln_1p();
        let pm = ln_mode.exp();
        pmf[(mode - lo) as usize] = pm;
        let ratio = p / (1.0 - p);
        // Upward from the mode.
        let mut cur = pm;
        for k in mode..hi {
            cur *= (nf - k as f64) / (k as f64 + 1.0) * ratio;
            pmf[(k + 1 - lo) as usize] = cur;
        }
        // Downward from the mode.
        let mut cur = pm;
        for k in ((lo + 1)..=mode).rev() {
            cur *= k as f64 / ((nf - k as f64 + 1.0) * ratio);
            pmf[(k - 1 - lo) as usize] = cur;
        }
        // Normalize away the tiny truncation/rounding error so the cdf
        // tops out at exactly 1.
        let total: f64 = pmf.iter().sum();
        if total > 0.0 {
            for v in &mut pmf {
                *v /= total;
            }
        }
        let mut cdf = Vec::with_capacity(len);
        let mut acc = 0.0;
        for &v in &pmf {
            acc += v;
            cdf.push(acc.min(1.0));
        }
        // Force exact 1.0 at the top; the model's S[T] must be 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self {
            n,
            p,
            offset: lo,
            pmf,
            cdf,
        }
    }

    /// Number of trials `n`.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// Success probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// First outcome of the materialized support window.
    pub fn support_offset(&self) -> u64 {
        self.offset
    }

    /// Last outcome of the materialized support window (inclusive).
    pub fn support_end(&self) -> u64 {
        self.offset + (self.pmf.len() as u64 - 1)
    }

    /// `P(X = k)`; zero outside the materialized window (where the true
    /// mass is below 1e-300).
    pub fn pmf(&self, k: u64) -> f64 {
        if k < self.offset {
            return 0.0;
        }
        self.pmf
            .get((k - self.offset) as usize)
            .copied()
            .unwrap_or(0.0)
    }

    /// `P(X <= k)`; 0 below the window, 1 above it.
    pub fn cdf(&self, k: u64) -> f64 {
        if k < self.offset {
            return 0.0;
        }
        let idx = (k - self.offset) as usize;
        if idx >= self.cdf.len() {
            1.0
        } else {
            self.cdf[idx]
        }
    }

    /// `P(X > k)`.
    pub fn survival(&self, k: u64) -> f64 {
        1.0 - self.cdf(k)
    }

    /// The materialized pmf window; index `i` is outcome
    /// `support_offset() + i`.
    pub fn pmf_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// The materialized cdf window; index `i` is outcome
    /// `support_offset() + i`.
    pub fn cdf_slice(&self) -> &[f64] {
        &self.cdf
    }

    /// Mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n·p·(1-p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn small_exact_cases() {
        // Bin(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
        let b = Binomial::new(4, 0.5);
        close(b.pmf(0), 1.0 / 16.0, 1e-14);
        close(b.pmf(1), 4.0 / 16.0, 1e-14);
        close(b.pmf(2), 6.0 / 16.0, 1e-14);
        close(b.pmf(3), 4.0 / 16.0, 1e-14);
        close(b.pmf(4), 1.0 / 16.0, 1e-14);
        assert_eq!(b.pmf(5), 0.0);
        assert_eq!(b.support_offset(), 0);
    }

    #[test]
    fn degenerate_p_zero_and_one() {
        let z = Binomial::new(10, 0.0);
        assert_eq!(z.pmf(0), 1.0);
        assert_eq!(z.cdf(0), 1.0);
        let o = Binomial::new(10, 1.0);
        assert_eq!(o.pmf(10), 1.0);
        assert_eq!(o.cdf(9), 0.0);
        assert_eq!(o.cdf(10), 1.0);
    }

    #[test]
    fn zero_trials() {
        let b = Binomial::new(0, 0.3);
        assert_eq!(b.pmf(0), 1.0);
        assert_eq!(b.cdf(0), 1.0);
        assert_eq!(b.mean(), 0.0);
    }

    #[test]
    fn pmf_sums_to_one_various() {
        for (n, p) in [
            (10u64, 0.3),
            (100, 0.01),
            (1000, 0.001),
            (10_000, 1.0 / 90.0),
            (100_000, 0.005),
        ] {
            let b = Binomial::new(n, p);
            let total: f64 = b.pmf_slice().iter().sum();
            close(total, 1.0, 1e-12);
            assert_eq!(b.cdf(n), 1.0);
        }
    }

    #[test]
    fn mean_matches_pmf_expectation() {
        for (n, p) in [(50u64, 0.2), (1000, 0.004), (10_000, 0.0005)] {
            let b = Binomial::new(n, p);
            let off = b.support_offset();
            let ex: f64 = b
                .pmf_slice()
                .iter()
                .enumerate()
                .map(|(i, &v)| (off + i as u64) as f64 * v)
                .sum();
            close(ex, b.mean(), 1e-9 * (1.0 + b.mean()));
        }
    }

    #[test]
    fn variance_matches_pmf() {
        let b = Binomial::new(200, 0.05);
        let mean = b.mean();
        let var: f64 = b
            .pmf_slice()
            .iter()
            .enumerate()
            .map(|(k, &v)| (k as f64 - mean).powi(2) * v)
            .sum();
        close(var, b.variance(), 1e-9);
    }

    #[test]
    fn cdf_monotone_nondecreasing() {
        let b = Binomial::new(500, 0.013);
        let mut prev = 0.0;
        for k in 0..=500 {
            let c = b.cdf(k);
            assert!(c >= prev - 1e-15, "cdf decreased at {k}");
            prev = c;
        }
    }

    #[test]
    fn paper_fig1_point() {
        // J = 1000, W = 100 => T = 10; U = 1%, O = 10 => P = 1/990.
        let p = 0.01 / (10.0 * 0.99);
        let b = Binomial::new(10, p);
        // S[0] = (1-P)^10
        close(b.cdf(0), (1.0 - p).powi(10), 1e-12);
    }

    #[test]
    fn survival_is_complement() {
        let b = Binomial::new(60, 0.1);
        for k in [0u64, 3, 10, 60] {
            close(b.survival(k), 1.0 - b.cdf(k), 1e-15);
        }
    }

    #[test]
    fn tiny_p_no_underflow_in_head() {
        // Extremely small p at moderate n: pmf(0) ~ 1.
        let b = Binomial::new(60_000, 1e-9);
        close(b.pmf(0), 1.0 - 60_000.0 * 1e-9, 1e-7);
        let total: f64 = b.pmf_slice().iter().sum();
        close(total, 1.0, 1e-12);
    }

    #[test]
    fn windowed_large_n_moments() {
        // n large enough to trigger windowing.
        let n = 10_000_000u64;
        let p = 1.0 / 90.0;
        let b = Binomial::new(n, p);
        assert!(b.support_offset() > 0, "window should not start at 0");
        assert!(b.pmf_slice().len() < 100_000, "window too wide");
        let off = b.support_offset();
        let total: f64 = b.pmf_slice().iter().sum();
        close(total, 1.0, 1e-12);
        let ex: f64 = b
            .pmf_slice()
            .iter()
            .enumerate()
            .map(|(i, &v)| (off + i as u64) as f64 * v)
            .sum();
        close(ex, b.mean(), 1e-6 * b.mean());
        // cdf semantics around the window.
        assert_eq!(b.cdf(0), 0.0);
        assert_eq!(b.cdf(n), 1.0);
        close(b.cdf((b.mean()) as u64), 0.5, 0.05);
    }

    #[test]
    fn windowed_huge_n_does_not_allocate_everything() {
        let b = Binomial::new(1_000_000_000, 0.001);
        assert!(
            b.pmf_slice().len() < 6_000_000,
            "len {}",
            b.pmf_slice().len()
        );
        let total: f64 = b.pmf_slice().iter().sum();
        close(total, 1.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "binomial p must be in [0,1]")]
    fn rejects_bad_p() {
        Binomial::new(5, 1.5);
    }
}
