//! Memory-bounded scaleup analysis (paper §3.2, Figure 9).
//!
//! Under memory-bounded scaleup (Sun & Ni), the job demand grows linearly
//! with the number of workstations: `J = T₀·W`, so the per-task demand —
//! and therefore the task ratio — stays **fixed** as the system grows.
//! The paper's Figure 9 plots `E_j` against `W` for `T₀ = 100` and shows
//! response time rising by only 14/30/44/71% at `W = 100` for
//! utilizations of 1/5/10/20%.
//!
//! **Reproduction note.** The paper's prose says the percentages are
//! "relative to the response time for a problem using one workstation
//! with the same owner utilization", but the quoted numbers (and the
//! Figure 9 axis, which spans 100–180) match `E_j / T₀ - 1`, i.e.
//! inflation relative to the *dedicated* single-workstation time `T₀`
//! exactly (13.9/30.1/44.4/71.4%). We therefore report
//! [`ScaledPoint::inflation`] against the dedicated baseline — matching
//! the published numbers — and additionally expose
//! [`ScaledPoint::inflation_vs_single`] against the same-utilization
//! `W = 1` baseline the prose describes.

use crate::error::ModelError;
use crate::expectation::expected_job_time;
use crate::params::OwnerParams;

/// One point of a scaled-problem sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledPoint {
    /// System size `W`.
    pub workstations: u32,
    /// Total job demand `J = T₀·W`.
    pub job_demand: f64,
    /// Expected job completion time `E_j`.
    pub expected_job_time: f64,
    /// Inflation relative to the dedicated single-workstation time:
    /// `E_j(W)/T₀ - 1`. This is the definition that reproduces the
    /// paper's 14/30/44/71% figures.
    pub inflation: f64,
    /// Inflation relative to the same-utilization `W = 1` response time:
    /// `E_j(W)/E_j(1) - 1` (the definition the paper's prose describes).
    pub inflation_vs_single: f64,
    /// Scaled speedup `W·E_j(1)/E_j(W)` — how close the system comes to
    /// doing `W`× the work in the same time.
    pub scaled_speedup: f64,
}

/// Sweep a memory-bounded-scaleup experiment: per-node demand `t0` is
/// fixed, the job demand grows as `t0·W`.
pub fn scaled_sweep(
    t0: f64,
    workstations: &[u32],
    owner: OwnerParams,
) -> Result<Vec<ScaledPoint>, ModelError> {
    if !t0.is_finite() || t0 <= 0.0 {
        return Err(ModelError::InvalidParameter {
            name: "t0 (per-node demand)",
            value: t0,
            constraint: "must be finite and > 0",
        });
    }
    let base = expected_job_time(t0, 1, owner);
    Ok(workstations
        .iter()
        .map(|&w| {
            let e_j = expected_job_time(t0, w, owner);
            ScaledPoint {
                workstations: w,
                job_demand: t0 * w as f64,
                expected_job_time: e_j,
                inflation: e_j / t0 - 1.0,
                inflation_vs_single: e_j / base - 1.0,
                scaled_speedup: w as f64 * base / e_j,
            }
        })
        .collect())
}

/// Response-time inflation at system size `w` relative to `w = 1`
/// for a scaled problem with per-node demand `t0`.
pub fn inflation_at(t0: f64, w: u32, owner: OwnerParams) -> Result<f64, ModelError> {
    Ok(scaled_sweep(t0, &[w], owner)?[0].inflation)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(u: f64) -> OwnerParams {
        OwnerParams::from_utilization(10.0, u).unwrap()
    }

    #[test]
    fn paper_inflation_anchors() {
        // Paper §3.2: at W=100, T0=100, O=10: +14% (U=1%), +30% (U=5%),
        // +44% (U=10%), +71% (U=20%).
        let cases = [(0.01, 0.14), (0.05, 0.30), (0.10, 0.44), (0.20, 0.71)];
        for (u, expected) in cases {
            let infl = inflation_at(100.0, 100, owner(u)).unwrap();
            assert!(
                (infl - expected).abs() < 0.01,
                "U={u}: inflation {infl} vs paper {expected}"
            );
        }
    }

    #[test]
    fn inflation_at_w1() {
        let pts = scaled_sweep(100.0, &[1], owner(0.1)).unwrap();
        // Dedicated-baseline inflation at W=1 is the pure interference
        // overhead U/(1-U); the same-utilization baseline gives zero.
        assert!((pts[0].inflation - 0.1 / 0.9).abs() < 1e-9);
        assert!(pts[0].inflation_vs_single.abs() < 1e-12);
        assert!((pts[0].scaled_speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inflation_monotone_in_w() {
        let pts = scaled_sweep(100.0, &[1, 2, 5, 10, 25, 50, 100], owner(0.1)).unwrap();
        let mut prev = -1.0;
        for p in &pts {
            assert!(
                p.inflation >= prev - 1e-12,
                "inflation fell at W={}",
                p.workstations
            );
            prev = p.inflation;
        }
    }

    #[test]
    fn inflation_monotone_in_utilization() {
        let i1 = inflation_at(100.0, 100, owner(0.01)).unwrap();
        let i5 = inflation_at(100.0, 100, owner(0.05)).unwrap();
        let i20 = inflation_at(100.0, 100, owner(0.20)).unwrap();
        assert!(i1 < i5 && i5 < i20);
    }

    #[test]
    fn larger_per_node_demand_lowers_inflation() {
        // Paper: "We also considered larger job demands and found the
        // increase in response time to be even less."
        let small = inflation_at(100.0, 100, owner(0.1)).unwrap();
        let large = inflation_at(1000.0, 100, owner(0.1)).unwrap();
        assert!(large < small, "large {large} vs small {small}");
    }

    #[test]
    fn scaled_speedup_close_to_w() {
        // Scaled speedup should stay within inflation of perfect W.
        let pts = scaled_sweep(100.0, &[100], owner(0.05)).unwrap();
        let p = &pts[0];
        assert!(
            p.scaled_speedup > 100.0 / 1.4,
            "scaled speedup {}",
            p.scaled_speedup
        );
        assert!(p.scaled_speedup <= 100.0);
    }

    #[test]
    fn job_demand_scales_linearly() {
        let pts = scaled_sweep(50.0, &[1, 4, 16], owner(0.05)).unwrap();
        assert_eq!(pts[0].job_demand, 50.0);
        assert_eq!(pts[1].job_demand, 200.0);
        assert_eq!(pts[2].job_demand, 800.0);
    }

    #[test]
    fn rejects_bad_t0() {
        assert!(scaled_sweep(0.0, &[1], owner(0.1)).is_err());
        assert!(scaled_sweep(f64::NAN, &[1], owner(0.1)).is_err());
    }
}
