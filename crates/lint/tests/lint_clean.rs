//! The workspace must lint clean: `cargo test -p nds-lint` fails the
//! moment a determinism or hot-path hazard lands in a sim-visible
//! crate. This is the same check CI runs via
//! `cargo run -p nds-lint -- --check`.

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = nds_lint::find_root(here).expect("workspace root above crates/lint");
    let files = nds_lint::collect_rs_files(&nds_lint::default_paths(&root));
    assert!(
        files.len() > 20,
        "expected the sim crates' sources, found {} files",
        files.len()
    );
    let diags = nds_lint::lint_files(&root, &files);
    let rendered: Vec<String> = diags.iter().map(nds_lint::Diagnostic::compact).collect();
    assert!(
        diags.is_empty(),
        "workspace must lint clean, got {} findings:\n{}",
        diags.len(),
        rendered.join("\n")
    );
}
