//! R4 fixture: allocation inside a hot module (`pool.rs` is on the
//! HOT_FILES list).

pub struct Pool {
    slots: Vec<u64>,
}

impl Pool {
    /// Constructors are cold: allocation here is fine.
    pub fn new(n: usize) -> Self {
        Self {
            slots: Vec::with_capacity(n),
        }
    }

    /// `with_`-prefixed helpers are cold too.
    pub fn with_slots(slots: Vec<u64>) -> Self {
        let copy = slots.clone();
        Self { slots: copy }
    }

    /// A per-event handler: allocations flagged.
    pub fn admit(&mut self, id: u64) -> Vec<u64> {
        let mut scratch = Vec::new();
        scratch.push(id);
        let snapshot = self.slots.clone();
        let boxed = Box::new(id);
        scratch.push(*boxed);
        snapshot
    }

    /// Suppressed allocation inside a hot handler.
    pub fn drain(&mut self) -> Vec<u64> {
        let out = self.slots.to_vec(); // ndslint::allow(no-alloc-in-hot-path, reason = "drain runs once at end of experiment")
        self.slots.clear();
        out
    }
}
