//! Not on the HOT_FILES list: R4 stays silent here.

pub fn build_table(n: usize) -> Vec<Vec<u64>> {
    let mut rows = Vec::new();
    for i in 0..n {
        rows.push(vec![i as u64]);
    }
    rows.clone()
}
