//! A clean file full of traps: every banned name appears only inside
//! strings, comments, or doc text. Expected findings: none.
//!
//! HashMap::new(), Instant::now(), .unwrap(), .partial_cmp() — doc
//! comments never count.

/// Returns help text mentioning `HashSet` and `SystemTime::now()`.
pub fn help() -> &'static str {
    "use std::collections::HashMap; let t = Instant::now(); x.unwrap()"
}

pub fn raw_trap() -> &'static str {
    r#"a.partial_cmp(b) and Vec::new() live in a raw string "here""#
}

// Plain comment trap: SystemTime::now() .unwrap() HashSet::new()
pub fn compare(a: u64, b: u64) -> std::cmp::Ordering {
    a.cmp(&b)
}

pub fn char_trap() -> char {
    // A lifetime-lookalike and a char literal, not code to lint.
    '"'
}
