//! R1 fixture: unordered collections in sim-visible state.
use std::collections::{HashMap, HashSet};

pub struct Registry {
    by_id: HashMap<u64, String>,
    seen: HashSet<u64>,
    // Suppressed with a reason: stays silent.
    cache: HashMap<u64, u64>, // ndslint::allow(no-unordered-collections, reason = "never iterated; membership only")
}

impl Registry {
    pub fn insert(&mut self, id: u64, name: String) {
        self.by_id.insert(id, name);
        self.seen.insert(id);
        self.cache.insert(id, id);
    }
}

#[cfg(test)]
mod tests {
    // Test code is exempt from R1.
    #[test]
    fn scratch_set_is_fine() {
        let mut s = std::collections::HashSet::new();
        s.insert(1u32);
        assert!(s.contains(&1));
    }
}
