//! R3 fixture: wall-clock reads in sim-visible code.
use std::time::{Instant, SystemTime};

pub fn bad_timing() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

pub fn bad_epoch() -> SystemTime {
    SystemTime::now()
}

pub fn sanctioned() -> std::time::Instant {
    std::time::Instant::now() // ndslint::allow(no-wall-clock, reason = "profiler-only read, never observed by sim logic")
}
