//! R5 fixture: `unwrap()` and terse `expect()` in library code.

pub fn next_event(queue: &mut Vec<u64>) -> u64 {
    queue.pop().unwrap()
}

pub fn peeked(queue: &[u64]) -> u64 {
    *queue.first().expect("peeked")
}

pub fn documented(queue: &[u64]) -> u64 {
    // A real invariant message: no finding.
    *queue
        .first()
        .expect("invariant: caller checked non-empty above")
}

pub fn suppressed(queue: &mut Vec<u64>) -> u64 {
    queue.pop().unwrap() // ndslint::allow(no-unwrap-in-lib, reason = "queue seeded two lines up; cannot be empty")
}

#[cfg(test)]
mod tests {
    // Test code is exempt from R5.
    #[test]
    fn unwrap_is_fine_here() {
        let v = vec![1u64];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
