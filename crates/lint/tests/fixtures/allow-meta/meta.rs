//! Suppression meta-rule fixture: malformed and unused allows.

pub fn missing_reason(xs: &mut Vec<u64>) -> u64 {
    xs.pop().unwrap() // ndslint::allow(no-unwrap-in-lib)
}

pub fn unknown_rule(xs: &mut Vec<u64>) -> u64 {
    xs.pop().unwrap() // ndslint::allow(no-such-rule, reason = "typo in the rule id")
}

pub fn empty_reason(xs: &mut Vec<u64>) -> u64 {
    xs.pop().unwrap() // ndslint::allow(no-unwrap-in-lib, reason = "")
}

// ndslint::allow(no-wall-clock, reason = "nothing on the next line reads a clock")
pub fn nothing_to_suppress() -> u64 {
    7
}
