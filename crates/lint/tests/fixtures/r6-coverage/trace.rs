//! Trace schema for the r6 fixture.

/// Record vocabulary. `Suspend` is never constructed outside this
/// file, so the schema drifted from the engine.
pub enum SchedRecord {
    Dispatch { m: u32 },
    Suspend { m: u32 },
}

impl SchedRecord {
    pub fn example() -> Self {
        // Same-file construction does not count as emission.
        SchedRecord::Suspend { m: 0 }
    }
}

/// Filter table that drifted with the enum: `suspend` is missing, and
/// `migrate` names no variant.
pub struct RecordFilter;

impl RecordFilter {
    pub const KINDS: [&'static str; 2] = ["dispatch", "migrate"];
}
