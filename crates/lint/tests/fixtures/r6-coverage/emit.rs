//! Emitting side of the r6 fixture: `Dispatch` is recorded here, so
//! only `Suspend` drifts.

pub fn record_dispatch(m: u32) -> crate::trace::SchedRecord {
    crate::trace::SchedRecord::Dispatch { m }
}
