//! R6 fixture: an event vocabulary that drifted.

/// Calendar payloads.
pub enum SchedEvent {
    OwnerArrival { m: u32 },
    JobArrival { j: u32 },
    /// Has no EventClass twin: the profiler cannot attribute it.
    Orphan { x: u32 },
}

pub fn classify(e: &SchedEvent) -> EventClass {
    match e {
        SchedEvent::OwnerArrival { .. } => EventClass::OwnerArrival,
        SchedEvent::JobArrival { .. } => EventClass::JobArrival,
        SchedEvent::Orphan { .. } => EventClass::Dead,
    }
}

/// Profiling classes.
#[derive(Clone, Copy)]
pub enum EventClass {
    OwnerArrival,
    JobArrival,
    /// Matches no SchedEvent variant.
    Dead,
}

impl EventClass {
    /// `JobArrival` is missing from ALL: exports silently drop it.
    pub const ALL: [EventClass; 2] = [EventClass::OwnerArrival, EventClass::Dead];
}
