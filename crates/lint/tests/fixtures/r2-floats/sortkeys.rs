//! R2 fixture: `partial_cmp` on the comparison path.

pub fn sort_times(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("invariant: times are finite"));
}

pub fn sort_total(xs: &mut [f64]) {
    // The sanctioned form: no finding.
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn min_latency(xs: &[f64]) -> Option<f64> {
    // Suppressed: a documented NaN-propagating comparison.
    xs.iter()
        .copied()
        .min_by(|a, b| a.partial_cmp(b).expect("invariant: latencies are finite")) // ndslint::allow(total-order-floats, reason = "inputs pre-validated finite; NaN is a caller bug")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_not_exempt_from_r2() {
        let mut v = vec![2.0f64, 1.0];
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(v[0], 1.0);
    }
}
