//! Fixture-driven uitests: each directory under `tests/fixtures/` is
//! linted on its own, and the compact diagnostics must match the
//! checked-in `expected.txt` byte for byte.
//!
//! Regenerate expectations after an intentional rule change with
//! `NDSLINT_BLESS=1 cargo test -p nds-lint --test uitest`.

use std::path::{Path, PathBuf};

fn run_case(name: &str) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name);
    assert!(dir.is_dir(), "missing fixture dir {}", dir.display());
    let files: Vec<PathBuf> = nds_lint::collect_rs_files(std::slice::from_ref(&dir));
    assert!(!files.is_empty(), "fixture {name} has no .rs files");
    let diags = nds_lint::lint_files(&dir, &files);
    let got: String = diags.iter().map(|d| d.compact() + "\n").collect();

    let expected_path = dir.join("expected.txt");
    if std::env::var_os("NDSLINT_BLESS").is_some() {
        std::fs::write(&expected_path, &got).expect("write expected.txt");
        return;
    }
    let want = std::fs::read_to_string(&expected_path).unwrap_or_else(|_| {
        panic!(
            "missing {} (run with NDSLINT_BLESS=1)",
            expected_path.display()
        )
    });
    assert_eq!(
        got, want,
        "fixture `{name}` diverged from expected.txt \
         (NDSLINT_BLESS=1 regenerates after intentional changes)"
    );
}

#[test]
fn r1_collections() {
    run_case("r1-collections");
}

#[test]
fn r2_floats() {
    run_case("r2-floats");
}

#[test]
fn r3_wallclock() {
    run_case("r3-wallclock");
}

#[test]
fn r4_hotpath() {
    run_case("r4-hotpath");
}

#[test]
fn r5_unwrap() {
    run_case("r5-unwrap");
}

#[test]
fn r6_coverage() {
    run_case("r6-coverage");
}

#[test]
fn allow_meta() {
    run_case("allow-meta");
}

#[test]
fn clean() {
    run_case("clean");
}
