//! A small hand-rolled Rust lexer with line/column-accurate tokens.
//!
//! `nds-lint` deliberately avoids `syn` (the build has no registry
//! access) and full parsing: every rule the workspace needs can be
//! expressed over a token stream, provided the lexer gets the hard
//! cases right — strings (plain, raw, byte, C), character literals vs
//! lifetimes, nested block comments, and numeric literals adjacent to
//! range operators. Comments are not tokens; they are collected
//! separately so the suppression layer can parse
//! `// ndslint::allow(...)` annotations.

/// What a token is. Only the distinctions the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#async`).
    Ident,
    /// Lifetime (`'a`), without the quote in `text`.
    Lifetime,
    /// String literal of any flavor; `text` holds the *contents*
    /// (quotes and raw-string hashes stripped, escapes left as-is).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// A single punctuation character.
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a single punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Width of the caret underline for this token.
    pub fn width(&self) -> usize {
        match self.kind {
            // Quotes were stripped; restore a sensible visual width.
            TokKind::Str => self.text.chars().count() + 2,
            TokKind::Lifetime => self.text.chars().count() + 1,
            _ => self.text.chars().count().max(1),
        }
    }
}

/// One comment (line or block), excluded from the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// True when no code token precedes the comment on its first line.
    pub own_line: bool,
}

/// Lexer output: code tokens plus side-channel comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.i];
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn eof(&self) -> bool {
        self.i >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Never fails: unterminated
/// literals simply run to end-of-file (the compiler will reject such a
/// file anyway; the linter stays tolerant).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    // Line of the most recent code token, to classify trailing comments.
    let mut last_code_line = 0u32;

    while !cur.eof() {
        let (line, col) = (cur.line, cur.col);
        let c = cur.peek(0).expect("not at eof");
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(n) = cur.peek(0) {
                if n == '\n' {
                    break;
                }
                text.push(cur.bump());
            }
            out.comments.push(Comment {
                text,
                line,
                col,
                own_line: last_code_line != line,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            text.push(cur.bump());
            text.push(cur.bump());
            let mut depth = 1u32;
            while !cur.eof() && depth > 0 {
                if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
                    depth += 1;
                    text.push(cur.bump());
                    text.push(cur.bump());
                } else if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
                    depth -= 1;
                    text.push(cur.bump());
                    text.push(cur.bump());
                } else {
                    text.push(cur.bump());
                }
            }
            out.comments.push(Comment {
                text,
                line,
                col,
                own_line: last_code_line != line,
            });
            continue;
        }

        // String-ish literals, including prefixed forms.
        if c == '"' {
            cur.bump();
            let text = lex_plain_string(&mut cur);
            push(&mut out, &mut last_code_line, TokKind::Str, text, line, col);
            continue;
        }
        if (c == 'r' || c == 'b' || c == 'c') && string_prefix_len(&cur) > 0 {
            let skip = string_prefix_len(&cur);
            let raw = (0..skip).any(|k| cur.peek(k) == Some('r'));
            for _ in 0..skip {
                cur.bump();
            }
            let text = if raw {
                lex_raw_string(&mut cur)
            } else {
                cur.bump(); // the opening quote
                lex_plain_string(&mut cur)
            };
            push(&mut out, &mut last_code_line, TokKind::Str, text, line, col);
            continue;
        }
        // Byte char literal b'x'.
        if c == 'b' && cur.peek(1) == Some('\'') {
            cur.bump();
            cur.bump();
            let text = lex_char_body(&mut cur);
            push(
                &mut out,
                &mut last_code_line,
                TokKind::Char,
                text,
                line,
                col,
            );
            continue;
        }

        // Lifetime vs character literal.
        if c == '\'' {
            cur.bump();
            if let Some(n) = cur.peek(0) {
                if is_ident_start(n) && !char_closes_soon(&cur) {
                    let mut text = String::new();
                    while let Some(k) = cur.peek(0) {
                        if !is_ident_continue(k) {
                            break;
                        }
                        text.push(cur.bump());
                    }
                    push(
                        &mut out,
                        &mut last_code_line,
                        TokKind::Lifetime,
                        text,
                        line,
                        col,
                    );
                    continue;
                }
            }
            let text = lex_char_body(&mut cur);
            push(
                &mut out,
                &mut last_code_line,
                TokKind::Char,
                text,
                line,
                col,
            );
            continue;
        }

        // Raw identifier r#ident was not matched as a raw string above.
        if c == 'r' && cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
            cur.bump();
            cur.bump();
            let text = lex_ident(&mut cur);
            push(
                &mut out,
                &mut last_code_line,
                TokKind::Ident,
                text,
                line,
                col,
            );
            continue;
        }

        if c.is_ascii_digit() {
            let text = lex_number(&mut cur);
            push(&mut out, &mut last_code_line, TokKind::Num, text, line, col);
            continue;
        }

        if is_ident_start(c) {
            let text = lex_ident(&mut cur);
            push(
                &mut out,
                &mut last_code_line,
                TokKind::Ident,
                text,
                line,
                col,
            );
            continue;
        }

        let text = cur.bump().to_string();
        push(
            &mut out,
            &mut last_code_line,
            TokKind::Punct,
            text,
            line,
            col,
        );
    }
    out
}

fn push(
    out: &mut Lexed,
    last_code_line: &mut u32,
    kind: TokKind,
    text: String,
    line: u32,
    col: u32,
) {
    *last_code_line = line;
    out.toks.push(Tok {
        kind,
        text,
        line,
        col,
    });
}

/// Length of a string-literal prefix starting at the cursor (`r"`,
/// `r#"`, `b"`, `br#"`, `c"`, ...), or 0 when the cursor is not at a
/// string prefix. The returned length covers prefix letters only — not
/// hashes or the quote for plain strings; raw-string hash handling
/// consumes from the first `#`/`"`.
fn string_prefix_len(cur: &Cursor) -> usize {
    let c0 = cur.peek(0);
    let c1 = cur.peek(1);
    match (c0, c1) {
        (Some('r'), Some('"')) => 1,
        (Some('r'), Some('#')) => {
            // r#"..." is a raw string; r#ident is a raw identifier.
            let mut k = 2;
            while cur.peek(k) == Some('#') {
                k += 1;
            }
            if cur.peek(k) == Some('"') {
                1
            } else {
                0
            }
        }
        (Some('b' | 'c'), Some('"')) => 1,
        (Some('b'), Some('r')) if matches!(cur.peek(2), Some('"' | '#')) => 2,
        _ => 0,
    }
}

/// After the opening `"`, consume a plain string with escapes; returns
/// the contents.
fn lex_plain_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while !cur.eof() {
        let c = cur.bump();
        match c {
            '\\' => {
                text.push(c);
                if !cur.eof() {
                    text.push(cur.bump());
                }
            }
            '"' => break,
            _ => text.push(c),
        }
    }
    text
}

/// At `#...#"` or `"` (after the `r` prefix), consume a raw string.
fn lex_raw_string(cur: &mut Cursor) -> String {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        cur.bump();
        hashes += 1;
    }
    if cur.peek(0) == Some('"') {
        cur.bump();
    }
    let mut text = String::new();
    'outer: while !cur.eof() {
        let c = cur.bump();
        if c == '"' {
            for k in 0..hashes {
                if cur.peek(k) != Some('#') {
                    text.push('"');
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        text.push(c);
    }
    text
}

/// After the opening `'`, consume the body and closing quote of a
/// character literal.
fn lex_char_body(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while !cur.eof() {
        let c = cur.bump();
        match c {
            '\\' => {
                text.push(c);
                if !cur.eof() {
                    text.push(cur.bump());
                }
            }
            '\'' => break,
            _ => text.push(c),
        }
    }
    text
}

/// Does `'xyz'`-style lookahead close with a quote right after one
/// identifier character (i.e. a char literal like `'a'` rather than a
/// lifetime `'a`)? Called with the cursor on the first body character.
fn char_closes_soon(cur: &Cursor) -> bool {
    let mut k = 0;
    while let Some(c) = cur.peek(k) {
        if !is_ident_continue(c) {
            return c == '\'';
        }
        k += 1;
        if k > 64 {
            return false;
        }
    }
    false
}

fn lex_ident(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(cur.bump());
    }
    text
}

fn lex_number(cur: &mut Cursor) -> String {
    let mut text = String::new();
    // Integer part (covers 0x/0b/0o bodies and type suffixes, which
    // are all ident-continue characters).
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_alphanumeric() || c == '_' {
            text.push(cur.bump());
        } else {
            break;
        }
    }
    // Fractional part — only when the dot is followed by a digit, so
    // `0..n` and `1.max(2)` are not swallowed.
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        text.push(cur.bump());
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(cur.bump());
            } else {
                break;
            }
        }
    }
    // Exponent sign (the `e`/`E` itself was consumed above).
    if text.ends_with(['e', 'E'])
        && matches!(cur.peek(0), Some('+' | '-'))
        && cur.peek(1).is_some_and(|c| c.is_ascii_digit())
    {
        text.push(cur.bump());
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(cur.bump());
            } else {
                break;
            }
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn positions_are_line_and_column_accurate() {
        let l = lex("fn main() {\n    let x = 1;\n}\n");
        let x = l.toks.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!((x.line, x.col), (2, 9));
        let one = l.toks.iter().find(|t| t.kind == TokKind::Num).unwrap();
        assert_eq!((one.line, one.col, one.text.as_str()), (2, 13, "1"));
    }

    #[test]
    fn strings_hide_code_like_contents() {
        let l = lex(r#"let s = "HashMap::new() // not a comment"; let t = 1;"#);
        assert!(!idents(r#"let s = "HashMap::new()";"#).contains(&"HashMap".to_string()));
        let s = l.toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, "HashMap::new() // not a comment");
        assert!(l.comments.is_empty());
    }

    #[test]
    fn escaped_quotes_do_not_terminate_strings() {
        let l = lex(r#"let s = "a\"b\\"; HashMap"#);
        let s = l.toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, r#"a\"b\\"#);
        assert!(idents(r#"let s = "a\"b\\"; HashMap"#).contains(&"HashMap".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"has "quotes" and \ backslash"#; let u = r"plain";"###;
        let l = lex(src);
        let strs: Vec<&Tok> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].text, r#"has "quotes" and \ backslash"#);
        assert_eq!(strs[1].text, "plain");
    }

    #[test]
    fn byte_and_c_strings() {
        let l = lex(r##"let a = b"bytes"; let b = br#"raw bytes"#; let c = c"cstr";"##);
        let strs: Vec<String> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, ["bytes", "raw bytes", "cstr"]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still outer */ b");
        assert_eq!(
            idents("a /* outer /* inner */ still outer */ b"),
            ["a", "b"]
        );
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let q = '\\''; }");
        let lifetimes: Vec<String> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars: Vec<String> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, ["x", "\\n", "\\'"]);
    }

    #[test]
    fn longer_char_literals_are_not_lifetimes() {
        // 'static is a lifetime; b'z' is a byte char.
        let l = lex("&'static str; let b = b'z';");
        assert_eq!(
            l.toks
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            1
        );
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn numbers_and_ranges() {
        let l = lex("for i in 0..10 { let x = 1.5e-3; let h = 0xFF_u32; }");
        let nums: Vec<String> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5e-3", "0xFF_u32"]);
        // The range dots survive as punctuation.
        assert!(l.toks.iter().filter(|t| t.is_punct('.')).count() >= 2);
    }

    #[test]
    fn float_method_calls_keep_the_dot() {
        let l = lex("let y = 1.max(2);");
        let nums: Vec<String> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["1", "2"]);
        assert!(l.toks.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn raw_identifiers() {
        assert!(idents("let r#fn = 1;").contains(&"fn".to_string()));
    }

    #[test]
    fn comment_own_line_classification() {
        let l = lex("// leading\nlet x = 1; // trailing\n  // indented own line\n");
        assert_eq!(l.comments.len(), 3);
        assert!(l.comments[0].own_line);
        assert!(!l.comments[1].own_line);
        assert!(l.comments[2].own_line);
    }

    #[test]
    fn doc_comments_are_comments() {
        let l = lex("/// `x.unwrap()` in docs\n//! inner\nfn f() {}");
        assert_eq!(l.comments.len(), 2);
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
    }
}
