//! The six workspace rules.
//!
//! | id | check |
//! |----|-------|
//! | `no-unordered-collections` | `HashMap`/`HashSet` banned in sim-visible crates |
//! | `total-order-floats` | `.partial_cmp(...)` calls must be `total_cmp` |
//! | `no-wall-clock` | `Instant`/`SystemTime` forbidden outside the profiler |
//! | `no-alloc-in-hot-path` | `Vec::new`/`Box::new`/`.clone()`/`.to_vec()` in hot modules |
//! | `no-unwrap-in-lib` | `.unwrap()` (and terse `.expect("..")`) in library code |
//! | `event-coverage` | `SchedEvent` ↔ `EventClass` ↔ `SchedRecord` ↔ `RecordFilter::KINDS` consistency |
//!
//! Rules run over the lexer's token stream. "Sim-visible" means the
//! crates whose state feeds simulation outputs ([`SIM_CRATES`]); test
//! modules (`#[cfg(test)]`, `#[test]`) are exempt from the state rules
//! but not from `no-wall-clock` or `total-order-floats`.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeMap;

/// Every rule id, in documentation order.
pub const RULE_IDS: [&str; 6] = [
    "no-unordered-collections",
    "total-order-floats",
    "no-wall-clock",
    "no-alloc-in-hot-path",
    "no-unwrap-in-lib",
    "event-coverage",
];

/// Crates whose state is visible to the simulation (container iteration
/// order, float comparisons, and clocks there decide replay outputs).
pub const SIM_CRATES: [&str; 6] = ["des", "sched", "pvm", "cluster", "model", "core"];

/// Hot modules: files on the per-event path where steady-state
/// allocation is banned (see `BENCH_core.json` for why).
pub const HOT_FILES: [&str; 3] = ["calendar.rs", "simulator.rs", "pool.rs"];

/// Hot modules named by path suffix — base names that would collide
/// with cold modules elsewhere (the flight recorder and the des crate
/// both have a `trace.rs`). `core/src/sim/trace.rs` hosts the
/// synthetic-trace sampler and `sched/src/feed.rs` the chunked job
/// feed, both on the streamed-replay refill path.
pub const HOT_PATH_SUFFIXES: [&str; 2] = ["core/src/sim/trace.rs", "sched/src/feed.rs"];

/// Functions in hot modules that run at setup time, not per event.
/// Allocation there is fine without an allow.
const COLD_FN_PREFIXES: [&str; 2] = ["with_", "from_"];
const COLD_FN_NAMES: [&str; 2] = ["new", "default"];

/// One file prepared for linting.
pub struct FileCtx<'a> {
    /// Root-relative display path.
    pub file: &'a str,
    /// `crates/<name>/...` component, when the path has one.
    pub crate_name: Option<&'a str>,
    /// Path base name (`simulator.rs`).
    pub base_name: &'a str,
    pub toks: &'a [Tok],
    pub lines: &'a [&'a str],
    /// Line ranges (inclusive) covered by `#[cfg(test)]` / `#[test]`.
    pub test_spans: Vec<(u32, u32)>,
}

impl<'a> FileCtx<'a> {
    fn is_test_line(&self, line: u32) -> bool {
        self.test_spans
            .iter()
            .any(|(a, b)| (*a..=*b).contains(&line))
    }

    fn sim_visible(&self) -> bool {
        match self.crate_name {
            Some(c) => SIM_CRATES.contains(&c),
            // Paths outside `crates/<name>/` (e.g. lint fixtures) are
            // held to the full standard.
            None => true,
        }
    }

    fn is_hot(&self) -> bool {
        HOT_FILES.contains(&self.base_name)
            || HOT_PATH_SUFFIXES.iter().any(|s| self.file.ends_with(s))
    }

    fn diag(&self, tok: &Tok, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: self.file.to_string(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
            snippet: self
                .lines
                .get(tok.line as usize - 1)
                .unwrap_or(&"")
                .to_string(),
            width: tok.width(),
        }
    }
}

/// Compute the line spans covered by test-only items: any item whose
/// attributes include a `test` identifier (`#[cfg(test)] mod tests`,
/// `#[test] fn case()`), from the attribute to the item's closing brace.
pub fn test_spans(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let start_line = toks[i].line;
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut has_test = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                } else if toks[j].is_ident("test") {
                    has_test = true;
                }
                j += 1;
            }
            if !has_test {
                i = j;
                continue;
            }
            // Find the item body: first `{` (span to matching `}`) or a
            // bare `;` (span to that line). Further attributes on the
            // same item are tolerated by just scanning forward.
            let mut k = j;
            let mut end_line = start_line;
            while k < toks.len() {
                if toks[k].is_punct('{') {
                    let mut bd = 1u32;
                    k += 1;
                    while k < toks.len() && bd > 0 {
                        if toks[k].is_punct('{') {
                            bd += 1;
                        } else if toks[k].is_punct('}') {
                            bd -= 1;
                        }
                        end_line = toks[k].line;
                        k += 1;
                    }
                    break;
                }
                if toks[k].is_punct(';') {
                    end_line = toks[k].line;
                    k += 1;
                    break;
                }
                end_line = toks[k].line;
                k += 1;
            }
            spans.push((start_line, end_line));
            i = k;
            continue;
        }
        i += 1;
    }
    spans
}

/// Run every per-file rule, returning raw (pre-suppression) findings.
pub fn check_file(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ctx.sim_visible() {
        no_unordered_collections(ctx, &mut out);
        total_order_floats(ctx, &mut out);
        no_wall_clock(ctx, &mut out);
        no_unwrap_in_lib(ctx, &mut out);
    }
    if ctx.is_hot() {
        no_alloc_in_hot_path(ctx, &mut out);
    }
    out
}

/// R1: `HashMap`/`HashSet` in sim-visible, non-test code.
fn no_unordered_collections(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for t in ctx.toks {
        if t.kind != TokKind::Ident || ctx.is_test_line(t.line) {
            continue;
        }
        let replacement = match t.text.as_str() {
            "HashMap" => "BTreeMap",
            "HashSet" => "BTreeSet",
            _ => continue,
        };
        out.push(ctx.diag(
            t,
            "no-unordered-collections",
            format!(
                "`{}` iterates in nondeterministic order; sim-visible state must use \
                 `{replacement}`, `Vec`, or a slab",
                t.text
            ),
        ));
    }
}

/// R2: `.partial_cmp(` calls — f64 sort keys must use `total_cmp`.
fn total_order_floats(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for w in ctx.toks.windows(3) {
        let [a, b, c] = w else { continue };
        if a.is_punct('.') && b.is_ident("partial_cmp") && c.is_punct('(') {
            out.push(
                ctx.diag(
                    b,
                    "total-order-floats",
                    "`partial_cmp` is not a total order on floats (NaN breaks sort/heap \
                 invariants); use `f64::total_cmp` for sort keys"
                        .to_string(),
                ),
            );
        }
    }
}

/// R3: `Instant`/`SystemTime` anywhere in sim-visible crates. The one
/// sanctioned reader (the profiler's host-time attribution) carries an
/// explicit allow.
fn no_wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for t in ctx.toks {
        if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            out.push(ctx.diag(
                t,
                "no-wall-clock",
                format!(
                    "`{}` reads the host clock, which breaks replay determinism; \
                     sim code must use `SimTime` (host timing belongs to the profiler)",
                    t.text
                ),
            ));
        }
    }
}

/// R5: `.unwrap()` in non-test library code, plus `.expect("..")` whose
/// message is too terse to state an invariant.
fn no_unwrap_in_lib(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    const MIN_EXPECT_LEN: usize = 8;
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.is_test_line(toks[i].line) || !toks[i].is_punct('.') {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        if name.is_ident("unwrap")
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            out.push(
                ctx.diag(
                    name,
                    "no-unwrap-in-lib",
                    "`unwrap()` hides the violated invariant; use `expect(\"invariant: ...\")` \
                 or a typed error the caller can react to"
                        .to_string(),
                ),
            );
        }
        if name.is_ident("expect") && toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            if let Some(msg) = toks.get(i + 3) {
                if msg.kind == TokKind::Str
                    && msg.text.trim().len() < MIN_EXPECT_LEN
                    && toks.get(i + 4).is_some_and(|t| t.is_punct(')'))
                {
                    out.push(ctx.diag(
                        name,
                        "no-unwrap-in-lib",
                        format!(
                            "expect message \"{}\" is too terse to state an invariant \
                             (< {MIN_EXPECT_LEN} chars); say what must hold and why",
                            msg.text
                        ),
                    ));
                }
            }
        }
    }
}

/// R4: allocation calls inside hot modules, outside setup functions.
fn no_alloc_in_hot_path(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = ctx.toks;
    // Track the enclosing function per token via a brace-depth stack.
    let mut depth = 0u32;
    let mut nest = 0i32; // paren/bracket nesting, so `[u8; 3]` keeps a pending fn
    let mut pending_fn: Option<String> = None;
    let mut frames: Vec<(String, u32)> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("fn") {
            if let Some(name) = toks.get(i + 1) {
                if name.kind == TokKind::Ident {
                    pending_fn = Some(name.text.clone());
                }
            }
        } else if t.is_punct('{') {
            if let Some(name) = pending_fn.take() {
                frames.push((name, depth));
            }
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if frames.last().is_some_and(|(_, d)| *d == depth) {
                frames.pop();
            }
        } else if t.is_punct('(') || t.is_punct('[') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            nest -= 1;
        } else if t.is_punct(';') && nest == 0 {
            // A trait-style `fn f();` declaration never opens a body.
            pending_fn = None;
        }

        if ctx.is_test_line(t.line) {
            continue;
        }
        let Some((fn_name, _)) = frames.last() else {
            continue; // not inside a function (type/item position)
        };
        let cold = COLD_FN_NAMES.contains(&fn_name.as_str())
            || COLD_FN_PREFIXES.iter().any(|p| fn_name.starts_with(p));
        if cold {
            continue;
        }

        // Path calls: Vec::new / Box::new.
        if (t.is_ident("Vec") || t.is_ident("Box"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("new"))
        {
            out.push(ctx.diag(
                t,
                "no-alloc-in-hot-path",
                format!(
                    "`{}::new` allocates inside hot function `{fn_name}` (hot modules \
                     must stay allocation-free in steady state; preallocate in a \
                     constructor or reuse a buffer)",
                    t.text
                ),
            ));
        }
        // Method calls: .clone() / .to_vec().
        if t.is_punct('.') {
            if let Some(name) = toks.get(i + 1) {
                if (name.is_ident("clone") || name.is_ident("to_vec"))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
                {
                    out.push(ctx.diag(
                        name,
                        "no-alloc-in-hot-path",
                        format!(
                            "`.{}()` copies (and usually allocates) inside hot function \
                             `{fn_name}`; borrow or move instead",
                            name.text
                        ),
                    ));
                }
            }
        }
    }
}

/// An enum's defining file plus its variants as `(name, line, col)`.
type EnumDef = (String, Vec<(String, u32, u32)>);

/// Everything R6 needs from one file.
#[derive(Debug, Default)]
pub struct EventInfo {
    /// `enum SchedEvent` variants: name → (line, col), with file.
    pub sched_event: Option<EnumDef>,
    pub event_class: Option<EnumDef>,
    pub sched_record: Option<EnumDef>,
    /// Variant names listed in `EventClass::ALL`.
    pub all_array: Option<(String, Vec<String>, u32, u32)>,
    /// Class names listed in `RecordFilter::KINDS` (a `[&'static
    /// str; N]` of snake_case names, index i naming class i).
    pub filter_kinds: Option<(String, Vec<String>, u32, u32)>,
    /// Non-test `SchedRecord::X` / `EventClass::X` path usages, with
    /// the file they occur in.
    pub record_uses: Vec<(String, String)>,
    pub class_uses: Vec<(String, String)>,
}

/// Collect R6 facts from one file into `info`.
pub fn collect_event_info(ctx: &FileCtx<'_>, info: &mut EventInfo) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if toks[i].is_ident("enum") {
            if let Some(name) = toks.get(i + 1) {
                let slot = match name.text.as_str() {
                    "SchedEvent" => Some(&mut info.sched_event),
                    "EventClass" => Some(&mut info.event_class),
                    "SchedRecord" => Some(&mut info.sched_record),
                    _ => None,
                };
                if let Some(slot) = slot {
                    if slot.is_none() {
                        *slot = Some((ctx.file.to_string(), enum_variants(toks, i)));
                    }
                }
            }
        }
        // `ALL: [EventClass; N] = [Self::X, ...]` (or `EventClass::X`).
        if toks[i].is_ident("ALL") && info.all_array.is_none() {
            if let Some(listed) = all_array_variants(toks, i) {
                info.all_array = Some((ctx.file.to_string(), listed, toks[i].line, toks[i].col));
            }
        }
        // `KINDS: [&'static str; N] = ["...", ...]` — the record
        // filter's class-name table.
        if toks[i].is_ident("KINDS") && info.filter_kinds.is_none() {
            if let Some(listed) = kinds_array_strings(toks, i) {
                info.filter_kinds = Some((ctx.file.to_string(), listed, toks[i].line, toks[i].col));
            }
        }
        // Path usages `SchedRecord::X` / `EventClass::X` outside tests.
        if !ctx.is_test_line(toks[i].line)
            && (toks[i].is_ident("SchedRecord") || toks[i].is_ident("EventClass"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(v) = toks.get(i + 3) {
                if v.kind == TokKind::Ident && v.text.chars().next().is_some_and(char::is_uppercase)
                {
                    let uses = if toks[i].is_ident("SchedRecord") {
                        &mut info.record_uses
                    } else {
                        &mut info.class_uses
                    };
                    uses.push((ctx.file.to_string(), v.text.clone()));
                }
            }
        }
    }
}

/// Parse variant names from `enum Name { ... }` with `i` at `enum`.
fn enum_variants(toks: &[Tok], i: usize) -> Vec<(String, u32, u32)> {
    let mut out = Vec::new();
    let mut j = i + 2;
    // Skip to the opening brace (past generics, which this workspace's
    // event enums don't use anyway).
    while j < toks.len() && !toks[j].is_punct('{') {
        j += 1;
    }
    let mut depth = 0i32;
    let mut expect_variant = true;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 {
            if t.is_punct('#') {
                // Variant attribute: skip the [...] group.
                j += 1;
                if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                    let mut bd = 0i32;
                    while j < toks.len() {
                        if toks[j].is_punct('[') {
                            bd += 1;
                        } else if toks[j].is_punct(']') {
                            bd -= 1;
                            if bd == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                }
            } else if expect_variant && t.kind == TokKind::Ident {
                out.push((t.text.clone(), t.line, t.col));
                expect_variant = false;
            } else if t.is_punct(',') {
                expect_variant = true;
            }
        }
        j += 1;
    }
    out
}

/// Parse the variant names listed in `ALL: [...; N] = [ ... ]`.
fn all_array_variants(toks: &[Tok], i: usize) -> Option<Vec<String>> {
    // Require the declared element type to be EventClass.
    let mut j = i + 1;
    if !toks.get(j)?.is_punct(':') {
        return None;
    }
    let mut saw_event_class = false;
    while j < toks.len() && !toks[j].is_punct('=') {
        if toks[j].is_ident("EventClass") {
            saw_event_class = true;
        }
        j += 1;
    }
    if !saw_event_class || !toks.get(j + 1)?.is_punct('[') {
        return None;
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1
            && (t.is_ident("Self") || t.is_ident("EventClass"))
            && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(v) = toks.get(j + 3) {
                out.push(v.text.clone());
            }
        }
        j += 1;
    }
    Some(out)
}

/// Parse the string literals listed in `KINDS: [&'static str; N] =
/// ["...", ...]` with `i` at `KINDS`. Returns `None` unless the
/// declared element type mentions `str` (so unrelated `KINDS` consts
/// don't trip the rule).
fn kinds_array_strings(toks: &[Tok], i: usize) -> Option<Vec<String>> {
    let mut j = i + 1;
    if !toks.get(j)?.is_punct(':') {
        return None;
    }
    let mut saw_str = false;
    while j < toks.len() && !toks[j].is_punct('=') {
        if toks[j].is_ident("str") {
            saw_str = true;
        }
        j += 1;
    }
    if !saw_str || !toks.get(j + 1)?.is_punct('[') {
        return None;
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 && t.kind == TokKind::Str {
            out.push(t.text.clone());
        }
        j += 1;
    }
    Some(out)
}

/// `SchedRecord::SegmentStart` → `segment_start`, the naming scheme
/// both `SchedRecord::kind_name` and `RecordFilter::KINDS` follow.
fn camel_to_snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// R6: cross-file event coverage. Call once after every file has been
/// collected.
pub fn event_coverage(info: &EventInfo, lines_of: &dyn Fn(&str, u32) -> String) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let (Some((ev_file, events)), Some((cl_file, classes))) =
        (&info.sched_event, &info.event_class)
    else {
        // No event vocabulary in the linted set — rule is silent.
        return out;
    };
    let mut diag = |file: &str, line: u32, col: u32, message: String| {
        out.push(Diagnostic {
            file: file.to_string(),
            line,
            col,
            rule: "event-coverage",
            message,
            snippet: lines_of(file, line),
            width: 1,
        });
    };
    let class_names: BTreeMap<&str, ()> =
        classes.iter().map(|(n, _, _)| (n.as_str(), ())).collect();
    let event_names: BTreeMap<&str, ()> = events.iter().map(|(n, _, _)| (n.as_str(), ())).collect();

    for (name, line, col) in events {
        if !class_names.contains_key(name.as_str()) {
            diag(
                ev_file,
                *line,
                *col,
                format!(
                    "`SchedEvent::{name}` has no matching `EventClass` variant — the \
                     profiler cannot attribute it"
                ),
            );
        }
    }
    for (name, line, col) in classes {
        if !event_names.contains_key(name.as_str()) {
            diag(
                cl_file,
                *line,
                *col,
                format!("`EventClass::{name}` matches no `SchedEvent` variant (dead class)"),
            );
        }
    }
    match &info.all_array {
        Some((file, listed, line, col)) => {
            for (name, ..) in classes {
                if !listed.contains(name) {
                    diag(
                        file,
                        *line,
                        *col,
                        format!(
                            "`EventClass::ALL` is missing `{name}` — exports and \
                             profiles will silently drop it"
                        ),
                    );
                }
            }
        }
        None => {
            if let Some((_, line, col)) = classes.first() {
                diag(
                    cl_file,
                    *line,
                    *col,
                    "`EventClass` has no parseable `ALL: [EventClass; N]` array".to_string(),
                );
            }
        }
    }
    if let Some((rec_file, records)) = &info.sched_record {
        for (name, line, col) in records {
            let emitted = info
                .record_uses
                .iter()
                .any(|(f, v)| v == name && f != rec_file);
            if !emitted {
                diag(
                    rec_file,
                    *line,
                    *col,
                    format!(
                        "`SchedRecord::{name}` is never emitted outside its definition — \
                         the trace schema drifted from the engine"
                    ),
                );
            }
        }
    }
    // `RecordFilter::KINDS` must mirror the `SchedRecord` enum exactly:
    // index i names class i, so a variant added without extending the
    // filter (or vice versa) silently misroutes the mask and sampling.
    if let (Some((rec_file, records)), Some((kinds_file, kinds, kline, kcol))) =
        (&info.sched_record, &info.filter_kinds)
    {
        let snake: Vec<String> = records.iter().map(|(n, _, _)| camel_to_snake(n)).collect();
        for ((name, line, col), s) in records.iter().zip(&snake) {
            if !kinds.contains(s) {
                diag(
                    rec_file,
                    *line,
                    *col,
                    format!(
                        "`SchedRecord::{name}` is missing from `RecordFilter::KINDS` — \
                         filters cannot address it by name"
                    ),
                );
            }
        }
        for kind in kinds {
            if !snake.contains(kind) {
                diag(
                    kinds_file,
                    *kline,
                    *kcol,
                    format!(
                        "`RecordFilter::KINDS` lists `{kind}`, which matches no \
                         `SchedRecord` variant"
                    ),
                );
            }
        }
        if kinds.len() == snake.len()
            && kinds.iter().all(|k| snake.contains(k))
            && kinds.iter().zip(&snake).any(|(a, b)| a != b)
        {
            diag(
                kinds_file,
                *kline,
                *kcol,
                "`RecordFilter::KINDS` order must match `SchedRecord` declaration \
                 order (index i names class i)"
                    .to_string(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_of<'a>(
        file: &'a str,
        crate_name: Option<&'a str>,
        base: &'a str,
        toks: &'a [Tok],
        lines: &'a [&'a str],
    ) -> FileCtx<'a> {
        FileCtx {
            file,
            crate_name,
            base_name: base,
            toks,
            lines,
            test_spans: test_spans(toks),
        }
    }

    fn check(src: &str, crate_name: Option<&str>, base: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let ctx = ctx_of("f.rs", crate_name, base, &lexed.toks, &lines);
        check_file(&ctx)
    }

    #[test]
    fn r1_flags_hash_collections_in_sim_crates_only() {
        let src = "struct S { m: HashMap<u32, u32>, s: HashSet<u32> }";
        assert_eq!(check(src, Some("pvm"), "vm.rs").len(), 2);
        assert_eq!(check(src, Some("bench"), "vm.rs").len(), 0);
        assert_eq!(check(src, None, "vm.rs").len(), 2, "unknown crate = strict");
    }

    #[test]
    fn r1_skips_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(check(src, Some("des"), "x.rs").is_empty());
    }

    #[test]
    fn r2_flags_calls_not_definitions() {
        let call = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let diags = check(call, Some("model"), "x.rs");
        assert!(diags.iter().any(|d| d.rule == "total-order-floats"));
        let def = "impl PartialOrd for T { fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) } }";
        assert!(check(def, Some("des"), "x.rs")
            .iter()
            .all(|d| d.rule != "total-order-floats"));
    }

    #[test]
    fn r3_flags_wall_clock() {
        let diags = check(
            "fn f() { let t = std::time::Instant::now(); }",
            Some("sched"),
            "x.rs",
        );
        assert_eq!(
            diags.iter().filter(|d| d.rule == "no-wall-clock").count(),
            1
        );
    }

    #[test]
    fn r4_flags_hot_files_outside_cold_fns() {
        let src = "impl C {\n fn new() -> Self { let v = Vec::new(); Self { v } }\n \
                   fn pop(&mut self) { let c = self.v.clone(); let b = Box::new(c); } }";
        let hot = check(src, Some("des"), "calendar.rs");
        assert_eq!(
            hot.iter()
                .filter(|d| d.rule == "no-alloc-in-hot-path")
                .count(),
            2,
            "clone + Box::new in pop, nothing in new: {hot:?}"
        );
        assert!(check(src, Some("des"), "other.rs")
            .iter()
            .all(|d| d.rule != "no-alloc-in-hot-path"));
    }

    #[test]
    fn r5_flags_unwrap_and_terse_expect_outside_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"bad\") }\n\
                   #[cfg(test)]\nmod tests { fn g(x: Option<u32>) { x.unwrap(); } }";
        let diags = check(src, Some("cluster"), "x.rs");
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.rule == "no-unwrap-in-lib")
                .count(),
            2,
            "{diags:?}"
        );
        let good = "fn f(x: Option<u32>) -> u32 { x.expect(\"invariant: x was set by validate\") }";
        assert!(check(good, Some("cluster"), "x.rs").is_empty());
    }

    #[test]
    fn r6_detects_missing_class_and_unemitted_record() {
        let sim = "enum SchedEvent { A { m: u32 }, B { j: u32 } }\n\
                   fn emit() { let _ = SchedRecord::Used; let _ = EventClass::A; }";
        let tr = "pub enum EventClass { A }\n\
                  impl EventClass { pub const ALL: [EventClass; 1] = [Self::A]; }\n\
                  pub enum SchedRecord { Used { j: u32 }, Never }";
        let (ls, lt) = (lex(sim), lex(tr));
        let (lns_s, lns_t): (Vec<&str>, Vec<&str>) = (sim.lines().collect(), tr.lines().collect());
        let cs = ctx_of("sim.rs", None, "sim.rs", &ls.toks, &lns_s);
        let ct = ctx_of("tr.rs", None, "tr.rs", &lt.toks, &lns_t);
        let mut info = EventInfo::default();
        collect_event_info(&cs, &mut info);
        collect_event_info(&ct, &mut info);
        let diags = event_coverage(&info, &|_, _| String::new());
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("`SchedEvent::B`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("`SchedRecord::Never`")),
            "{msgs:?}"
        );
        assert_eq!(diags.len(), 2, "{msgs:?}");
    }

    #[test]
    fn r6_detects_all_array_gap() {
        let tr = "enum SchedEvent { A, B }\n\
                  pub enum EventClass { A, B }\n\
                  impl EventClass { pub const ALL: [EventClass; 1] = [Self::A]; }";
        let l = lex(tr);
        let lns: Vec<&str> = tr.lines().collect();
        let c = ctx_of("tr.rs", None, "tr.rs", &l.toks, &lns);
        let mut info = EventInfo::default();
        collect_event_info(&c, &mut info);
        let diags = event_coverage(&info, &|_, _| String::new());
        assert!(diags
            .iter()
            .any(|d| d.message.contains("`EventClass::ALL` is missing `B`")));
    }

    #[test]
    fn r6_detects_record_filter_drift() {
        // `Suspend` has no KINDS entry; `eviction` names no variant;
        // both records are emitted elsewhere so only filter drift fires.
        let tr = "pub enum SchedRecord { Dispatch { m: u32 }, Suspend { m: u32 } }\n\
                  impl RecordFilter {\n\
                  pub const KINDS: [&'static str; 2] = [\"dispatch\", \"eviction\"];\n\
                  }";
        let emit = "fn f() { let _ = SchedRecord::Dispatch; let _ = SchedRecord::Suspend; }";
        let (lt, le) = (lex(tr), lex(emit));
        let (lns_t, lns_e): (Vec<&str>, Vec<&str>) = (tr.lines().collect(), emit.lines().collect());
        let ct = ctx_of("tr.rs", None, "tr.rs", &lt.toks, &lns_t);
        let ce = ctx_of("emit.rs", None, "emit.rs", &le.toks, &lns_e);
        let mut info = EventInfo::default();
        collect_event_info(&ct, &mut info);
        collect_event_info(&ce, &mut info);
        // No SchedEvent/EventClass in this set: only the record checks run.
        info.sched_event = Some(("x.rs".into(), vec![]));
        info.event_class = Some(("x.rs".into(), vec![]));
        info.all_array = Some(("x.rs".into(), vec![], 1, 1));
        let diags = event_coverage(&info, &|_, _| String::new());
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("`SchedRecord::Suspend` is missing from")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("lists `eviction`")),
            "{msgs:?}"
        );
    }

    #[test]
    fn r6_detects_record_filter_order_drift() {
        let tr = "pub enum SchedRecord { Dispatch, Suspend }\n\
                  pub const KINDS: [&'static str; 2] = [\"suspend\", \"dispatch\"];";
        let emit = "fn f() { let _ = SchedRecord::Dispatch; let _ = SchedRecord::Suspend; }";
        let (lt, le) = (lex(tr), lex(emit));
        let (lns_t, lns_e): (Vec<&str>, Vec<&str>) = (tr.lines().collect(), emit.lines().collect());
        let ct = ctx_of("tr.rs", None, "tr.rs", &lt.toks, &lns_t);
        let ce = ctx_of("emit.rs", None, "emit.rs", &le.toks, &lns_e);
        let mut info = EventInfo::default();
        collect_event_info(&ct, &mut info);
        collect_event_info(&ce, &mut info);
        info.sched_event = Some(("x.rs".into(), vec![]));
        info.event_class = Some(("x.rs".into(), vec![]));
        info.all_array = Some(("x.rs".into(), vec![], 1, 1));
        let diags = event_coverage(&info, &|_, _| String::new());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("order must match"));
    }

    #[test]
    fn camel_to_snake_matches_kind_names() {
        assert_eq!(camel_to_snake("JobArrival"), "job_arrival");
        assert_eq!(camel_to_snake("SegmentPreempted"), "segment_preempted");
        assert_eq!(camel_to_snake("Eviction"), "eviction");
    }

    #[test]
    fn enum_variant_parser_handles_payloads_and_attrs() {
        let src = "pub enum SchedRecord {\n  #[doc = \"x\"]\n  A { m: u32, k: Kind },\n  B(u32),\n  C,\n}";
        let l = lex(src);
        let vars = enum_variants(&l.toks, 1);
        let names: Vec<&str> = vars.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }
}
