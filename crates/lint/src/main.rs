//! `nds-lint` CLI: lint the workspace (or given paths) and report.
//!
//! Exit codes: 0 = clean, 1 = findings (with `--check`), 2 = usage or
//! I/O error. Without `--check` the exit code is always 0 so the tool
//! can be used exploratorily while CI stays strict.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--help" | "-h" => {
                print!("{}", HELP);
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("nds-lint: unknown flag `{flag}` (see --help)");
                return ExitCode::from(2);
            }
            p => paths.push(PathBuf::from(p)),
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("nds-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = nds_lint::find_root(&cwd).unwrap_or_else(|| cwd.clone());
    if paths.is_empty() {
        paths = nds_lint::default_paths(&root);
        if !paths.iter().any(|p| p.is_dir()) {
            eprintln!(
                "nds-lint: no workspace crates found under {} (pass explicit paths?)",
                root.display()
            );
            return ExitCode::from(2);
        }
    }

    let files = nds_lint::collect_rs_files(&paths);
    if files.is_empty() {
        eprintln!("nds-lint: no .rs files under the given paths");
        return ExitCode::from(2);
    }
    let diags = nds_lint::lint_files(&root, &files);

    if json {
        println!("{}", nds_lint::diag::to_json_array(&diags));
    } else {
        for d in &diags {
            println!("{}\n", d.render());
        }
        println!(
            "nds-lint: {} finding{} in {} file{}",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            files.len(),
            if files.len() == 1 { "" } else { "s" },
        );
    }

    if check && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

const HELP: &str = "\
nds-lint: determinism & hot-path static analysis for the nds workspace

USAGE:
    nds-lint [OPTIONS] [PATHS...]

With no PATHS, lints the sim-visible crates (des, sched, pvm, cluster,
model, core) of the enclosing workspace.

OPTIONS:
    --check    exit nonzero when any finding is reported (CI gate)
    --json     emit findings as a JSON array instead of text
    -h, --help print this help

RULES:
    no-unordered-collections  HashMap/HashSet banned in sim-visible crates
    total-order-floats        .partial_cmp() must be f64::total_cmp
    no-wall-clock             Instant/SystemTime outside the profiler
    no-alloc-in-hot-path      Vec::new/Box::new/clone()/to_vec() in hot modules
    no-unwrap-in-lib          unwrap() (or terse expect) in library code
    event-coverage            SchedEvent/EventClass/SchedRecord consistency

SUPPRESSIONS:
    // ndslint::allow(rule-id, reason = \"why this site is sound\")
    Trailing: covers its own line. Own line: covers the next code line.
    Reasons are mandatory; unused suppressions are findings.
";
