//! `// ndslint::allow(rule-id, reason = "...")` suppressions.
//!
//! A suppression comment silences one rule on one line of code:
//!
//! * trailing after code, it covers that line:
//!   `let m = HashMap::new(); // ndslint::allow(no-unordered-collections, reason = "...")`
//! * on its own line, it covers the next line that contains code.
//!
//! The `reason` is mandatory and must be non-empty — an allow without a
//! justification is itself reported (`bad-allow`), and an allow that
//! never matches a finding is reported too (`unused-allow`), so
//! suppressions cannot silently rot.

use crate::diag::Diagnostic;
use crate::lexer::{Comment, Tok};
use crate::rules::RULE_IDS;
use std::collections::BTreeSet;

/// One parsed, well-formed suppression.
#[derive(Debug)]
pub struct Allow {
    pub rule: &'static str,
    /// The code line this allow covers.
    pub target_line: u32,
    /// Where the comment itself sits (for unused-allow reporting).
    pub line: u32,
    pub col: u32,
    pub used: bool,
}

/// Scan comments for `ndslint::allow(...)` annotations. Returns the
/// well-formed allows plus diagnostics for malformed ones.
pub fn parse_allows(
    file: &str,
    comments: &[Comment],
    toks: &[Tok],
    lines: &[&str],
) -> (Vec<Allow>, Vec<Diagnostic>) {
    let code_lines: BTreeSet<u32> = toks.iter().map(|t| t.line).collect();
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("ndslint::allow") else {
            continue;
        };
        let mut bad = |message: String| {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                col: c.col,
                rule: "bad-allow",
                message,
                snippet: lines.get(c.line as usize - 1).unwrap_or(&"").to_string(),
                width: "ndslint::allow".len(),
            });
        };
        let rest = &c.text[at + "ndslint::allow".len()..];
        let Some(body) = rest
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .map(|(body, _)| body)
        else {
            bad(
                "malformed suppression: expected `ndslint::allow(rule-id, reason = \"...\")`"
                    .to_string(),
            );
            continue;
        };
        let (rule_part, reason_part) = match body.split_once(',') {
            Some((r, rest)) => (r.trim(), rest.trim()),
            None => {
                bad(format!(
                    "suppression of `{}` is missing the mandatory `reason = \"...\"`",
                    body.trim()
                ));
                continue;
            }
        };
        let Some(rule) = RULE_IDS.iter().copied().find(|r| *r == rule_part) else {
            bad(format!(
                "unknown rule `{rule_part}` in suppression (known: {})",
                RULE_IDS.join(", ")
            ));
            continue;
        };
        let reason_ok = reason_part
            .strip_prefix("reason")
            .map(|r| r.trim_start())
            .and_then(|r| r.strip_prefix('='))
            .map(|r| r.trim())
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.strip_suffix('"'))
            .is_some_and(|r| !r.trim().is_empty());
        if !reason_ok {
            bad(format!(
                "suppression of `{rule}` needs a non-empty `reason = \"...\"`"
            ));
            continue;
        }
        let target_line = if c.own_line {
            match code_lines.range(c.line + 1..).next() {
                Some(l) => *l,
                None => {
                    bad(format!(
                        "suppression of `{rule}` has no following line of code to cover"
                    ));
                    continue;
                }
            }
        } else {
            c.line
        };
        allows.push(Allow {
            rule,
            target_line,
            line: c.line,
            col: c.col,
            used: false,
        });
    }
    (allows, diags)
}

/// Drop findings covered by an allow (marking it used); then report any
/// allow that covered nothing.
pub fn apply_allows(
    file: &str,
    mut allows: Vec<Allow>,
    findings: Vec<Diagnostic>,
    lines: &[&str],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for d in findings {
        let covered = allows
            .iter_mut()
            .find(|a| a.rule == d.rule && a.target_line == d.line);
        match covered {
            Some(a) => a.used = true,
            None => out.push(d),
        }
    }
    for a in &allows {
        if !a.used {
            out.push(Diagnostic {
                file: file.to_string(),
                line: a.line,
                col: a.col,
                rule: "unused-allow",
                message: format!(
                    "suppression of `{}` covers line {} but nothing fires there; delete it",
                    a.rule, a.target_line
                ),
                snippet: lines.get(a.line as usize - 1).unwrap_or(&"").to_string(),
                width: "ndslint::allow".len(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<Allow>, Vec<Diagnostic>) {
        let lexed = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        parse_allows("f.rs", &lexed.comments, &lexed.toks, &lines)
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let src = "let m = 1; // ndslint::allow(no-unwrap-in-lib, reason = \"test\")\n";
        let (allows, diags) = run(src);
        assert!(diags.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].target_line, 1);
    }

    #[test]
    fn own_line_allow_covers_next_code_line() {
        let src = "\n// ndslint::allow(no-wall-clock, reason = \"profiler feed\")\n// another comment\nlet t = 1;\n";
        let (allows, diags) = run(src);
        assert!(diags.is_empty());
        assert_eq!(allows[0].target_line, 4);
    }

    #[test]
    fn missing_reason_is_reported() {
        let (allows, diags) = run("// ndslint::allow(no-wall-clock)\nlet x = 1;\n");
        assert!(allows.is_empty());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "bad-allow");
        assert!(diags[0].message.contains("reason"));
    }

    #[test]
    fn empty_reason_is_reported() {
        let (allows, diags) =
            run("// ndslint::allow(no-wall-clock, reason = \"  \")\nlet x = 1;\n");
        assert!(allows.is_empty());
        assert_eq!(diags[0].rule, "bad-allow");
    }

    #[test]
    fn unknown_rule_is_reported() {
        let (allows, diags) = run("// ndslint::allow(no-such-rule, reason = \"x\")\nlet x = 1;\n");
        assert!(allows.is_empty());
        assert!(diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "let x = 1; // ndslint::allow(no-unwrap-in-lib, reason = \"y\")\n";
        let lexed = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let (allows, _) = parse_allows("f.rs", &lexed.comments, &lexed.toks, &lines);
        let out = apply_allows("f.rs", allows, Vec::new(), &lines);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unused-allow");
    }

    #[test]
    fn used_allow_suppresses_and_stays_silent() {
        let src = "let x = 1; // ndslint::allow(no-unwrap-in-lib, reason = \"y\")\n";
        let lexed = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let (allows, _) = parse_allows("f.rs", &lexed.comments, &lexed.toks, &lines);
        let finding = Diagnostic {
            file: "f.rs".into(),
            line: 1,
            col: 5,
            rule: "no-unwrap-in-lib",
            message: "x".into(),
            snippet: String::new(),
            width: 1,
        };
        let out = apply_allows("f.rs", allows, vec![finding], &lines);
        assert!(out.is_empty());
    }
}
