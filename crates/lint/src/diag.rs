//! Diagnostics: `file:line:col rule-id message` with rustc-style
//! snippets, plus machine-readable JSON.

use std::fmt::Write as _;

/// One finding, anchored to a 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the lint root, with `/` separators.
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Stable rule identifier (`no-unordered-collections`, ...).
    pub rule: &'static str,
    pub message: String,
    /// The offending source line, for the snippet (empty = no snippet).
    pub snippet: String,
    /// Caret width under the offending token(s).
    pub width: usize,
}

impl Diagnostic {
    /// The one-line machine-greppable form (also what uitest
    /// expectation files pin).
    pub fn compact(&self) -> String {
        format!(
            "{}:{}:{} {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }

    /// Full rustc-style rendering with the source snippet.
    pub fn render(&self) -> String {
        let mut out = self.compact();
        if !self.snippet.is_empty() {
            let gutter = self.line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = write!(
                out,
                "\n {pad} |\n {gutter} | {}\n {pad} | {}{}",
                self.snippet,
                " ".repeat(self.col.saturating_sub(1) as usize),
                "^".repeat(self.width.max(1)),
            );
        }
        out
    }

    /// One JSON object (no external deps — fields are simple enough to
    /// escape by hand).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_str(&self.file),
            self.line,
            self.col,
            json_str(self.rule),
            json_str(&self.message),
        )
    }
}

/// Sort diagnostics into stable reporting order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
}

/// Render a whole batch as a JSON array.
pub fn to_json_array(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.to_json());
    }
    out.push(']');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            file: "crates/pvm/src/vm.rs".into(),
            line: 48,
            col: 16,
            rule: "no-unordered-collections",
            message: "`HashMap` has nondeterministic iteration order".into(),
            snippet: "    task_host: HashMap<TaskId, usize>,".into(),
            width: 7,
        }
    }

    #[test]
    fn compact_form() {
        assert_eq!(
            diag().compact(),
            "crates/pvm/src/vm.rs:48:16 no-unordered-collections \
             `HashMap` has nondeterministic iteration order"
        );
    }

    #[test]
    fn render_carets_under_token() {
        let r = diag().render();
        let caret_line = r.lines().last().unwrap();
        assert_eq!(caret_line, "    |                ^^^^^^^");
    }

    #[test]
    fn json_escapes() {
        let mut d = diag();
        d.message = "quote \" and \\ and\nnewline".into();
        let j = d.to_json();
        assert!(j.contains("\\\""));
        assert!(j.contains("\\n"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn sort_is_by_position() {
        let mut v = vec![diag(), diag()];
        v[1].line = 2;
        sort(&mut v);
        assert_eq!(v[0].line, 2);
    }
}
