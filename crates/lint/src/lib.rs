//! # nds-lint — determinism & hot-path static analysis for the workspace
//!
//! The workspace's correctness story rests on *replay determinism*
//! (bit-for-bit oracles, shards(1) ≡ shards(N), trace byte-identity)
//! and a *zero-allocation hot path* (`BENCH_core.json`). Those are
//! dynamic properties: a test only catches the nondeterminism its
//! inputs exercise. `nds-lint` makes the underlying invariants
//! machine-checked at CI time:
//!
//! * no `HashMap`/`HashSet` in sim-visible state,
//! * no `partial_cmp` on float sort keys,
//! * no wall-clock reads outside the profiler,
//! * no allocation in declared hot modules,
//! * no `unwrap()` in library code,
//! * the `SchedEvent` / `EventClass` / `SchedRecord` vocabulary stays
//!   in sync across files.
//!
//! The tool is dependency-free (a hand-rolled lexer, no `syn` — the
//! build has no registry access) and offline. Findings can be
//! suppressed per line with
//! `// ndslint::allow(rule-id, reason = "...")`; the reason is
//! mandatory and unused suppressions are themselves findings.
//!
//! ```text
//! cargo run -p nds-lint --              # report findings
//! cargo run -p nds-lint -- --check      # CI gate: nonzero exit on findings
//! cargo run -p nds-lint -- --json       # machine-readable output
//! cargo run -p nds-lint -- path/ f.rs   # lint specific files/trees
//! ```

#![forbid(unsafe_code)]

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod rules;

pub use diag::Diagnostic;

use rules::{EventInfo, FileCtx, SIM_CRATES};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Directories linted when no paths are given: the sim-visible crates'
/// sources. (`stats`, `bench`, and the dependency shims hold no
/// sim-visible state; fixtures and tests are exercised separately.)
pub fn default_paths(root: &Path) -> Vec<PathBuf> {
    SIM_CRATES
        .iter()
        .map(|c| root.join("crates").join(c).join("src"))
        .collect()
}

/// Find the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Recursively collect `.rs` files under each path (a file path is
/// taken as-is), sorted for deterministic reporting.
pub fn collect_rs_files(paths: &[PathBuf]) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for p in paths {
        collect_into(p, &mut out);
    }
    out.sort();
    out.dedup();
    out
}

fn collect_into(p: &Path, out: &mut Vec<PathBuf>) {
    if p.is_file() {
        if p.extension().is_some_and(|e| e == "rs") {
            out.push(p.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(p) else {
        return;
    };
    let mut children: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    children.sort();
    for c in children {
        collect_into(&c, out);
    }
}

/// Lint a set of files, reporting paths relative to `root`. This is
/// the whole pipeline: lex → per-file rules → suppressions → the
/// cross-file event-coverage rule → stable ordering.
pub fn lint_files(root: &Path, files: &[PathBuf]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut info = EventInfo::default();
    let mut sources: BTreeMap<String, String> = BTreeMap::new();

    for path in files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let display = display_path(root, path);
        let lexed = lexer::lex(&src);
        let lines: Vec<&str> = src.lines().collect();
        let ctx = FileCtx {
            file: &display,
            crate_name: crate_of(&display),
            base_name: base_name(&display),
            toks: &lexed.toks,
            lines: &lines,
            test_spans: rules::test_spans(&lexed.toks),
        };
        let findings = rules::check_file(&ctx);
        rules::collect_event_info(&ctx, &mut info);
        let (allows, mut bad) = allow::parse_allows(&display, &lexed.comments, &lexed.toks, &lines);
        diags.append(&mut bad);
        diags.extend(allow::apply_allows(&display, allows, findings, &lines));
        sources.insert(display, src);
    }

    let snippet = |file: &str, line: u32| -> String {
        sources
            .get(file)
            .and_then(|s| s.lines().nth(line as usize - 1))
            .unwrap_or("")
            .to_string()
    };
    diags.extend(rules::event_coverage(&info, &snippet));

    diag::sort(&mut diags);
    diags
}

/// Path relative to `root` with forward slashes (stable across hosts).
fn display_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel.to_string_lossy().replace('\\', "/");
    s.trim_start_matches("./").to_string()
}

/// The `<name>` of a `crates/<name>/...` path, if any.
fn crate_of(display: &str) -> Option<&str> {
    let mut parts = display.split('/');
    while let Some(p) = parts.next() {
        if p == "crates" {
            return parts.next();
        }
    }
    None
}

fn base_name(display: &str) -> &str {
    display.rsplit('/').next().unwrap_or(display)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_detection() {
        assert_eq!(crate_of("crates/pvm/src/vm.rs"), Some("pvm"));
        assert_eq!(crate_of("tests/fixtures/r1/state.rs"), None);
        assert_eq!(base_name("crates/des/src/calendar.rs"), "calendar.rs");
        assert_eq!(base_name("lib.rs"), "lib.rs");
    }

    #[test]
    fn default_paths_cover_sim_crates() {
        let paths = default_paths(Path::new("/w"));
        assert_eq!(paths.len(), SIM_CRATES.len());
        assert!(paths[0].ends_with("crates/des/src"));
    }

    #[test]
    fn find_root_from_nested_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates").join("lint").is_dir());
    }
}
