//! Per-host daemons: the `pvmd` analog.
//!
//! Each workstation in the virtual machine runs a daemon that owns the
//! host's task table and interference configuration. The VM routes
//! spawn requests and messages through daemons, mirroring how PVM's
//! `pvmd` processes mediate all traffic.

use crate::error::PvmError;
use crate::task::{TaskId, TaskState};
use std::collections::BTreeMap;

/// A host daemon: task table plus host metadata.
#[derive(Debug, Clone)]
pub struct Daemon {
    host_index: usize,
    hostname: String,
    /// Ordered map: the task table is sim-visible state, so iteration
    /// order must be deterministic across runs.
    tasks: BTreeMap<TaskId, TaskState>,
}

impl Daemon {
    /// Start a daemon for host `host_index`.
    pub fn new(host_index: usize, hostname: impl Into<String>) -> Self {
        Self {
            host_index,
            hostname: hostname.into(),
            tasks: BTreeMap::new(),
        }
    }

    /// This daemon's host index within the VM.
    pub fn host_index(&self) -> usize {
        self.host_index
    }

    /// The host's name (diagnostics only).
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// Register a freshly spawned task.
    pub fn register(&mut self, id: TaskId) {
        self.tasks.insert(id, TaskState::Spawned);
    }

    /// Update a task's state.
    pub fn set_state(&mut self, id: TaskId, state: TaskState) -> Result<(), PvmError> {
        match self.tasks.get_mut(&id) {
            Some(slot) => {
                *slot = state;
                Ok(())
            }
            None => Err(PvmError::UnknownTask { id: id.0 }),
        }
    }

    /// Look up a task's state.
    pub fn state(&self, id: TaskId) -> Result<TaskState, PvmError> {
        self.tasks
            .get(&id)
            .copied()
            .ok_or(PvmError::UnknownTask { id: id.0 })
    }

    /// Tasks resident on this host.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Remove a completed task from the table (PVM `pvm_exit`).
    pub fn unregister(&mut self, id: TaskId) -> Result<(), PvmError> {
        self.tasks
            .remove(&id)
            .map(|_| ())
            .ok_or(PvmError::UnknownTask { id: id.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut d = Daemon::new(3, "elc-03");
        assert_eq!(d.host_index(), 3);
        assert_eq!(d.hostname(), "elc-03");
        let t = TaskId(7);
        d.register(t);
        assert_eq!(d.task_count(), 1);
        assert_eq!(d.state(t).unwrap(), TaskState::Spawned);
        d.set_state(
            t,
            TaskState::Done {
                execution_time: 12.5,
            },
        )
        .unwrap();
        assert_eq!(
            d.state(t).unwrap(),
            TaskState::Done {
                execution_time: 12.5
            }
        );
        d.unregister(t).unwrap();
        assert_eq!(d.task_count(), 0);
    }

    #[test]
    fn unknown_task_errors() {
        let mut d = Daemon::new(0, "h");
        let t = TaskId(1);
        assert!(d.state(t).is_err());
        assert!(d.set_state(t, TaskState::Spawned).is_err());
        assert!(d.unregister(t).is_err());
    }
}
