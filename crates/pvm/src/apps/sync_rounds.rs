//! A synchronized, multi-round computation — probing the paper's
//! scope boundary.
//!
//! The paper deliberately studies a *single-phase* job ("one single
//! parallel phase with no communication or synchronization requirements
//! other than the final synchronization"). Real iterative codes
//! synchronize every round, and each barrier turns one max-of-`W` into
//! `K` of them: interference that a single-phase job absorbs once is
//! paid per round. This app runs `K` rounds of `T/K` work with a
//! barrier (gather + broadcast over the LAN) after each, quantifying
//! how synchronization amplifies owner interference.

use crate::error::PvmError;
use crate::group::TaskGroup;
use crate::message::{Message, MessageBuffer};
use crate::vm::VirtualMachine;

/// Message tag for barrier-arrival messages.
pub const TAG_BARRIER: u32 = 21;
/// Message tag for barrier-release broadcasts.
pub const TAG_RELEASE: u32 = 22;

/// Metrics from one synchronized run.
#[derive(Debug, Clone)]
pub struct SyncRunMetrics {
    /// Number of rounds executed.
    pub rounds: u32,
    /// Total job time: sum over rounds of (max segment time + barrier).
    pub job_time: f64,
    /// Sum over rounds of the max segment computation time (no
    /// messaging) — the interference-amplification core.
    pub compute_time: f64,
    /// Total barrier messaging time.
    pub barrier_time: f64,
    /// Per-round maxima of segment times.
    pub round_maxima: Vec<f64>,
}

/// Run a `rounds`-round synchronized computation of total per-task
/// demand `task_demand` on `vm` (one worker per host).
pub fn run(
    vm: &mut VirtualMachine,
    task_demand: f64,
    rounds: u32,
    replication: u64,
) -> Result<SyncRunMetrics, PvmError> {
    if rounds == 0 {
        return Err(PvmError::InvalidConfig {
            reason: "need at least one round".into(),
        });
    }
    if !task_demand.is_finite() || task_demand <= 0.0 {
        return Err(PvmError::InvalidConfig {
            reason: format!("task demand {task_demand} must be finite and > 0"),
        });
    }
    let w = vm.hosts();
    let master = vm.spawn(0)?;
    let workers = vm.spawn_round_robin(w)?;
    let mut group = TaskGroup::new("sync-rounds");
    for &t in &workers {
        group.join(t);
    }

    let segment = task_demand / f64::from(rounds);
    let mut clock = 0.0;
    let mut compute_time = 0.0;
    let mut barrier_time = 0.0;
    let mut round_maxima = Vec::with_capacity(rounds as usize);

    for round in 0..rounds {
        // Compute phase: every worker runs its segment concurrently,
        // starting from the common release time `clock`.
        let mut arrivals = Vec::with_capacity(w);
        for &worker in &workers {
            let out = vm.compute(worker, segment, clock, replication << 8 | u64::from(round))?;
            arrivals.push(clock + out.execution_time);
        }
        let round_max = group.barrier(&arrivals)?;
        round_maxima.push(round_max - clock);
        compute_time += round_max - clock;

        // Barrier messaging: every worker reports to the master, master
        // broadcasts the release — all serialized on the shared LAN.
        let mut barrier_end: f64 = round_max;
        for (&worker, &arrive) in workers.iter().zip(&arrivals) {
            let mut body = MessageBuffer::new();
            body.pack_u64(u64::from(round));
            let delivery = vm.send(
                Message {
                    src: worker,
                    dst: master,
                    tag: TAG_BARRIER,
                    body,
                },
                arrive,
            )?;
            barrier_end = barrier_end.max(delivery);
        }
        for _ in 0..w {
            let (at, _) = vm.recv(master, Some(TAG_BARRIER), barrier_end)?;
            barrier_end = barrier_end.max(at);
        }
        for &worker in &workers {
            let mut body = MessageBuffer::new();
            body.pack_u64(u64::from(round));
            let delivery = vm.send(
                Message {
                    src: master,
                    dst: worker,
                    tag: TAG_RELEASE,
                    body,
                },
                barrier_end,
            )?;
            barrier_end = barrier_end.max(delivery);
        }
        // Workers drain their release messages.
        for &worker in &workers {
            vm.recv(worker, Some(TAG_RELEASE), barrier_end)?;
        }
        barrier_time += barrier_end - round_max;
        clock = barrier_end;
    }

    for &t in &workers {
        vm.exit(t)?;
    }
    vm.exit(master)?;

    Ok(SyncRunMetrics {
        rounds,
        job_time: clock,
        compute_time,
        barrier_time,
        round_maxima,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lan::LanModel;
    use crate::vm::InterferenceMode;
    use nds_cluster::owner::OwnerWorkload;

    fn vm(hosts: usize, u: f64) -> VirtualMachine {
        let mode = if u <= 0.0 {
            InterferenceMode::Dedicated
        } else {
            InterferenceMode::Continuous(OwnerWorkload::continuous_exponential(10.0, u).unwrap())
        };
        VirtualMachine::new(hosts, mode, LanModel::instantaneous(), 5).unwrap()
    }

    #[test]
    fn dedicated_rounds_sum_to_demand() {
        let mut v = vm(4, 0.0);
        let m = run(&mut v, 100.0, 4, 0).unwrap();
        assert_eq!(m.rounds, 4);
        assert!((m.compute_time - 100.0).abs() < 1e-9);
        assert!((m.job_time - 100.0).abs() < 1e-6, "job {}", m.job_time);
        assert_eq!(m.round_maxima.len(), 4);
    }

    #[test]
    fn more_rounds_more_interference() {
        // Same total demand, same owners: K = 16 must be slower than
        // K = 1 in expectation because each round pays its own max.
        let mut sum1 = 0.0;
        let mut sum16 = 0.0;
        for rep in 0..20 {
            let mut v = vm(8, 0.20);
            sum1 += run(&mut v, 400.0, 1, rep).unwrap().compute_time;
            let mut v = vm(8, 0.20);
            sum16 += run(&mut v, 400.0, 16, rep + 1000).unwrap().compute_time;
        }
        assert!(
            sum16 > sum1 * 1.02,
            "16 rounds {sum16} should exceed 1 round {sum1}"
        );
    }

    #[test]
    fn barrier_cost_counted_with_slow_lan() {
        let mut v = VirtualMachine::new(4, InterferenceMode::Dedicated, LanModel::new(0.1, 1e6), 1)
            .unwrap();
        let m = run(&mut v, 100.0, 5, 0).unwrap();
        assert!(m.barrier_time > 0.0);
        assert!((m.job_time - (m.compute_time + m.barrier_time)).abs() < 1e-9);
        // 5 barriers x 8 messages x 0.1 s latency = ~4 s minimum.
        assert!(m.barrier_time >= 4.0, "barrier {}", m.barrier_time);
    }

    #[test]
    fn rejects_bad_configs() {
        let mut v = vm(2, 0.0);
        assert!(run(&mut v, 100.0, 0, 0).is_err());
        assert!(run(&mut v, 0.0, 2, 0).is_err());
    }

    #[test]
    fn reproducible() {
        let a = run(&mut vm(3, 0.1), 90.0, 3, 7).unwrap();
        let b = run(&mut vm(3, 0.1), 90.0, 3, 7).unwrap();
        assert_eq!(a.job_time, b.job_time);
    }
}
