//! The paper's benchmark: a "local computation" master/worker program.
//!
//! §4: "the problem has perfect parallelism and no interprocess
//! communication. The parallel program forks W parallel tasks, one for
//! each workstation ... Each parallel task ... record\[s\] the system time
//! when it started computation and ... when completing computation.
//! Each of the parallel tasks then return their task execution time to
//! the master process which selects and reports the maximum."
//!
//! The master also experiences the spawn and collection messaging the
//! paper deliberately excludes from its metric; we report both the
//! paper's **max task execution time** and the full job response time.

use crate::error::PvmError;
use crate::group::TaskGroup;
use crate::message::{Message, MessageBuffer};
use crate::vm::VirtualMachine;

/// Message tag carrying a worker's task execution time to the master.
pub const TAG_RESULT: u32 = 11;
/// Message tag carrying the spawn/work assignment to a worker.
pub const TAG_WORK: u32 = 10;

/// Metrics from one run of the local-computation program.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Per-task execution times, indexed by worker.
    pub task_times: Vec<f64>,
    /// The paper's Figure 10 metric: max over task execution times.
    pub max_task_time: f64,
    /// Mean task execution time.
    pub mean_task_time: f64,
    /// Full job response time including spawn and collection messaging.
    pub job_response_time: f64,
    /// Total owner interruptions across workers.
    pub interruptions: u64,
}

/// Run the local-computation program on `vm` with one worker per host,
/// each computing `task_demand` units. `replication` decorrelates
/// repeated runs.
pub fn run(
    vm: &mut VirtualMachine,
    task_demand: f64,
    replication: u64,
) -> Result<RunMetrics, PvmError> {
    if !task_demand.is_finite() || task_demand <= 0.0 {
        return Err(PvmError::InvalidConfig {
            reason: format!("task demand {task_demand} must be finite and > 0"),
        });
    }
    let w = vm.hosts();
    // Master lives on host 0 alongside its worker, PVM-style.
    let master = vm.spawn(0)?;
    let workers = vm.spawn_round_robin(w)?;
    let mut group = TaskGroup::new("local-computation");
    for &t in &workers {
        group.join(t);
    }

    // Master sends a work assignment to each worker, sequentially on the
    // shared LAN.
    let mut start_times = Vec::with_capacity(w);
    let mut clock = 0.0;
    for &worker in &workers {
        let mut body = MessageBuffer::new();
        body.pack_f64(task_demand).pack_u64(replication);
        let delivery = vm.send(
            Message {
                src: master,
                dst: worker,
                tag: TAG_WORK,
                body,
            },
            clock,
        )?;
        clock = clock.max(delivery);
        start_times.push(delivery);
    }

    // Each worker receives its assignment, computes, and reports back.
    let mut task_times = Vec::with_capacity(w);
    let mut interruptions = 0u64;
    let mut result_deliveries = Vec::with_capacity(w);
    for (i, &worker) in workers.iter().enumerate() {
        let (ready_at, mut work) = vm.recv(worker, Some(TAG_WORK), start_times[i])?;
        let demand = work.body.unpack_f64()?;
        let rep = work.body.unpack_u64()?;
        let outcome = vm.compute(worker, demand, ready_at, rep)?;
        interruptions += outcome.interruptions;
        task_times.push(outcome.execution_time);
        let finished_at = ready_at + outcome.execution_time;
        let mut body = MessageBuffer::new();
        body.pack_f64(outcome.execution_time);
        let delivery = vm.send(
            Message {
                src: worker,
                dst: master,
                tag: TAG_RESULT,
                body,
            },
            finished_at,
        )?;
        result_deliveries.push(delivery);
    }

    // Master collects every result; the job ends at the final barrier.
    let mut reported = Vec::with_capacity(w);
    let mut master_clock: f64 = 0.0;
    for _ in 0..w {
        let (at, mut msg) = vm.recv(master, Some(TAG_RESULT), master_clock)?;
        master_clock = master_clock.max(at);
        reported.push(msg.body.unpack_f64()?);
    }
    let job_response_time = group.barrier(&result_deliveries)?.max(master_clock);

    // The master's view must match the workers' own records.
    let max_task_time = task_times.iter().copied().fold(0.0, f64::max);
    let max_reported = reported.iter().copied().fold(0.0, f64::max);
    debug_assert!((max_task_time - max_reported).abs() < 1e-9);

    let mean_task_time = task_times.iter().sum::<f64>() / w as f64;
    // Retire everything so the VM can be reused.
    for &t in &workers {
        vm.exit(t)?;
    }
    vm.exit(master)?;

    Ok(RunMetrics {
        task_times,
        max_task_time,
        mean_task_time,
        job_response_time,
        interruptions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lan::LanModel;
    use crate::vm::InterferenceMode;
    use nds_cluster::owner::OwnerWorkload;

    fn dedicated_vm(hosts: usize) -> VirtualMachine {
        VirtualMachine::new(
            hosts,
            InterferenceMode::Dedicated,
            LanModel::instantaneous(),
            1,
        )
        .unwrap()
    }

    #[test]
    fn dedicated_run_is_exact() {
        let mut vm = dedicated_vm(4);
        let m = run(&mut vm, 100.0, 0).unwrap();
        assert_eq!(m.task_times, vec![100.0; 4]);
        assert_eq!(m.max_task_time, 100.0);
        assert_eq!(m.mean_task_time, 100.0);
        assert_eq!(m.interruptions, 0);
        assert!(m.job_response_time >= 100.0);
    }

    #[test]
    fn interference_inflates_max() {
        let owner = OwnerWorkload::continuous_exponential(10.0, 0.2).unwrap();
        let mut vm = VirtualMachine::new(
            6,
            InterferenceMode::Continuous(owner),
            LanModel::instantaneous(),
            3,
        )
        .unwrap();
        let m = run(&mut vm, 200.0, 0).unwrap();
        assert!(m.max_task_time > 200.0);
        assert!(m.max_task_time >= m.mean_task_time);
        assert!(m.interruptions > 0);
    }

    #[test]
    fn lan_overhead_in_response_not_in_task_times() {
        // Slow LAN: response time inflates, task times do not.
        let mut vm = VirtualMachine::new(
            3,
            InterferenceMode::Dedicated,
            LanModel::new(0.5, 1000.0),
            1,
        )
        .unwrap();
        let m = run(&mut vm, 50.0, 0).unwrap();
        assert_eq!(m.max_task_time, 50.0, "paper metric excludes comm");
        assert!(
            m.job_response_time > 51.0,
            "response {} must include messaging",
            m.job_response_time
        );
    }

    #[test]
    fn vm_reusable_across_runs() {
        let mut vm = dedicated_vm(2);
        let a = run(&mut vm, 10.0, 0).unwrap();
        let b = run(&mut vm, 10.0, 1).unwrap();
        assert_eq!(a.max_task_time, b.max_task_time);
    }

    #[test]
    fn replications_differ_under_interference() {
        let owner = OwnerWorkload::continuous_exponential(10.0, 0.3).unwrap();
        let mut vm = VirtualMachine::new(
            2,
            InterferenceMode::Continuous(owner),
            LanModel::instantaneous(),
            7,
        )
        .unwrap();
        let a = run(&mut vm, 300.0, 0).unwrap();
        let b = run(&mut vm, 300.0, 1).unwrap();
        assert_ne!(a.max_task_time, b.max_task_time);
    }

    #[test]
    fn rejects_bad_demand() {
        let mut vm = dedicated_vm(1);
        assert!(run(&mut vm, 0.0, 0).is_err());
        assert!(run(&mut vm, f64::NAN, 0).is_err());
    }
}
