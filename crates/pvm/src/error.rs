//! Error type for the PVM substrate.

use std::fmt;

/// Errors from the simulated PVM layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PvmError {
    /// Referenced a task that does not exist.
    UnknownTask {
        /// The offending task id.
        id: u32,
    },
    /// Referenced a host outside the virtual machine.
    UnknownHost {
        /// The offending host index.
        index: usize,
    },
    /// `recv` found no matching message.
    NoMessage {
        /// Receiving task.
        task: u32,
        /// Tag filter that failed to match (`None` = any).
        tag: Option<u32>,
    },
    /// Unpacked past the end of a message buffer, or with the wrong type.
    UnpackMismatch {
        /// What the caller tried to unpack.
        expected: &'static str,
    },
    /// Configuration problem (empty VM, bad demand, ...).
    InvalidConfig {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for PvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PvmError::UnknownTask { id } => write!(f, "unknown task t{id}"),
            PvmError::UnknownHost { index } => write!(f, "unknown host #{index}"),
            PvmError::NoMessage { task, tag } => match tag {
                Some(t) => write!(f, "no message with tag {t} for task t{task}"),
                None => write!(f, "no message for task t{task}"),
            },
            PvmError::UnpackMismatch { expected } => {
                write!(f, "unpack mismatch: expected {expected}")
            }
            PvmError::InvalidConfig { reason } => write!(f, "invalid PVM config: {reason}"),
        }
    }
}

impl std::error::Error for PvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            PvmError::UnknownTask { id: 3 }.to_string(),
            "unknown task t3"
        );
        assert_eq!(
            PvmError::UnknownHost { index: 9 }.to_string(),
            "unknown host #9"
        );
        assert!(PvmError::NoMessage {
            task: 1,
            tag: Some(7)
        }
        .to_string()
        .contains("tag 7"));
        assert!(PvmError::NoMessage { task: 1, tag: None }
            .to_string()
            .contains("no message for"));
        assert!(PvmError::UnpackMismatch { expected: "f64" }
            .to_string()
            .contains("f64"));
        assert!(PvmError::InvalidConfig { reason: "x".into() }
            .to_string()
            .contains("invalid"));
    }
}
