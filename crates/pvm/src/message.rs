//! Typed message buffers and tagged messages.
//!
//! PVM programs marshal data with `pvm_pkint`/`pvm_pkdouble` and
//! unmarshal in the same order with `pvm_upk*`. [`MessageBuffer`] is
//! that API: a little self-describing byte buffer whose unpack calls
//! must mirror the pack calls, with type tags checked at run time.

use crate::error::PvmError;
use crate::task::TaskId;

const TAG_F64: u8 = 1;
const TAG_U64: u8 = 2;
const TAG_STR: u8 = 3;

/// A pack/unpack buffer with run-time type checking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessageBuffer {
    bytes: Vec<u8>,
    cursor: usize,
}

impl MessageBuffer {
    /// An empty buffer ready for packing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an `f64` (pvm_pkdouble).
    pub fn pack_f64(&mut self, v: f64) -> &mut Self {
        self.bytes.push(TAG_F64);
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64` (pvm_pkint's closest analog).
    pub fn pack_u64(&mut self, v: u64) -> &mut Self {
        self.bytes.push(TAG_U64);
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a UTF-8 string (pvm_pkstr).
    pub fn pack_str(&mut self, s: &str) -> &mut Self {
        self.bytes.push(TAG_STR);
        self.bytes
            .extend_from_slice(&(s.len() as u64).to_le_bytes());
        self.bytes.extend_from_slice(s.as_bytes());
        self
    }

    /// Remove the next `f64`, failing if the next item is not one.
    pub fn unpack_f64(&mut self) -> Result<f64, PvmError> {
        self.expect_tag(TAG_F64, "f64")?;
        let raw = self.take(8, "f64")?;
        Ok(f64::from_le_bytes(
            raw.try_into().expect("invariant: take(8) returned 8 bytes"),
        ))
    }

    /// Remove the next `u64`.
    pub fn unpack_u64(&mut self) -> Result<u64, PvmError> {
        self.expect_tag(TAG_U64, "u64")?;
        let raw = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(
            raw.try_into().expect("invariant: take(8) returned 8 bytes"),
        ))
    }

    /// Remove the next string.
    pub fn unpack_str(&mut self) -> Result<String, PvmError> {
        self.expect_tag(TAG_STR, "str")?;
        let len_raw = self.take(8, "str length")?;
        let len = u64::from_le_bytes(
            len_raw
                .try_into()
                .expect("invariant: take(8) returned 8 bytes"),
        ) as usize;
        let raw = self.take(len, "str bytes")?.to_vec();
        String::from_utf8(raw).map_err(|_| PvmError::UnpackMismatch {
            expected: "utf-8 str",
        })
    }

    /// Size on the wire, in bytes (drives the LAN transfer-time model).
    pub fn wire_size(&self) -> usize {
        self.bytes.len()
    }

    /// Whether everything packed has been unpacked.
    pub fn fully_consumed(&self) -> bool {
        self.cursor == self.bytes.len()
    }

    fn expect_tag(&mut self, tag: u8, expected: &'static str) -> Result<(), PvmError> {
        match self.bytes.get(self.cursor) {
            Some(&t) if t == tag => {
                self.cursor += 1;
                Ok(())
            }
            _ => Err(PvmError::UnpackMismatch { expected }),
        }
    }

    fn take(&mut self, n: usize, expected: &'static str) -> Result<&[u8], PvmError> {
        if self.cursor + n > self.bytes.len() {
            return Err(PvmError::UnpackMismatch { expected });
        }
        let slice = &self.bytes[self.cursor..self.cursor + n];
        self.cursor += n;
        Ok(slice)
    }
}

/// A tagged message in flight or in a mailbox.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sending task.
    pub src: TaskId,
    /// Receiving task.
    pub dst: TaskId,
    /// Application tag (PVM `msgtag`).
    pub tag: u32,
    /// Marshalled body.
    pub body: MessageBuffer,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_in_order() {
        let mut b = MessageBuffer::new();
        b.pack_f64(3.25).pack_u64(42).pack_str("max-task-time");
        assert_eq!(b.unpack_f64().unwrap(), 3.25);
        assert_eq!(b.unpack_u64().unwrap(), 42);
        assert_eq!(b.unpack_str().unwrap(), "max-task-time");
        assert!(b.fully_consumed());
    }

    #[test]
    fn wrong_order_rejected() {
        let mut b = MessageBuffer::new();
        b.pack_f64(1.0);
        assert_eq!(
            b.unpack_u64(),
            Err(PvmError::UnpackMismatch { expected: "u64" })
        );
        // The failed unpack must not consume the tag.
        assert_eq!(b.unpack_f64().unwrap(), 1.0);
    }

    #[test]
    fn unpack_past_end_rejected() {
        let mut b = MessageBuffer::new();
        assert!(b.unpack_f64().is_err());
        b.pack_u64(1);
        b.unpack_u64().unwrap();
        assert!(b.unpack_u64().is_err());
    }

    #[test]
    fn wire_size_grows_with_content() {
        let mut b = MessageBuffer::new();
        assert_eq!(b.wire_size(), 0);
        b.pack_f64(0.0);
        assert_eq!(b.wire_size(), 9);
        b.pack_str("ab");
        assert_eq!(b.wire_size(), 9 + 1 + 8 + 2);
    }

    #[test]
    fn message_carries_addressing() {
        let mut body = MessageBuffer::new();
        body.pack_u64(7);
        let m = Message {
            src: TaskId(1),
            dst: TaskId(2),
            tag: 99,
            body,
        };
        assert_eq!(m.src, TaskId(1));
        assert_eq!(m.dst, TaskId(2));
        assert_eq!(m.tag, 99);
    }
}
