//! The Figure 10/11 experiment driver.
//!
//! §4: 1–12 workstations; problem sizes of 1, 2, 4, 8, 16 dedicated
//! minutes; 10 runs per point, mean reported; owner utilization measured
//! at 3% via `uptime`; the paper's model curve uses `O = 10`. Speedup
//! (Figure 11) is the ratio of the mean max task execution time on one
//! workstation to that on `W` workstations.

use crate::apps::local_computation;
use crate::error::PvmError;
use crate::lan::LanModel;
use crate::vm::{InterferenceMode, VirtualMachine};
use nds_cluster::owner::OwnerWorkload;

/// Seconds per dedicated "minute" of problem demand.
pub const SECONDS_PER_MINUTE: f64 = 60.0;

/// One measured point of the validation experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationPoint {
    /// Pool size `W`.
    pub workstations: u32,
    /// Problem demand in dedicated minutes (the paper's 1/2/4/8/16).
    pub demand_minutes: u32,
    /// Mean (over replications) of the max task execution time, seconds.
    pub mean_max_task_time: f64,
    /// Mean job response time including messaging, seconds.
    pub mean_response_time: f64,
}

/// Configuration of the validation experiment.
#[derive(Debug, Clone)]
pub struct ValidationHarness {
    /// Owner utilization (paper: 0.03, measured via `uptime`).
    pub utilization: f64,
    /// Mean owner service demand in seconds (paper's model uses 10).
    pub owner_demand: f64,
    /// Replications per point (paper: 10).
    pub replications: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for ValidationHarness {
    fn default() -> Self {
        Self {
            utilization: 0.03,
            owner_demand: 10.0,
            replications: 10,
            seed: 1993,
        }
    }
}

impl ValidationHarness {
    /// Run the experiment grid: every `(W, demand)` pair.
    ///
    /// The problem is **fixed-size**: a demand of `m` dedicated minutes
    /// splits into per-task demands of `m·60/W` seconds.
    pub fn run_grid(
        &self,
        workstations: &[u32],
        demands_minutes: &[u32],
    ) -> Result<Vec<ValidationPoint>, PvmError> {
        let mut points = Vec::with_capacity(workstations.len() * demands_minutes.len());
        for &m in demands_minutes {
            for &w in workstations {
                points.push(self.run_point(w, m)?);
            }
        }
        Ok(points)
    }

    /// Run one `(W, demand)` point: `replications` runs, means reported.
    pub fn run_point(
        &self,
        workstations: u32,
        demand_minutes: u32,
    ) -> Result<ValidationPoint, PvmError> {
        if workstations == 0 {
            return Err(PvmError::InvalidConfig {
                reason: "need at least one workstation".into(),
            });
        }
        if demand_minutes == 0 {
            return Err(PvmError::InvalidConfig {
                reason: "need a positive demand".into(),
            });
        }
        let owner = OwnerWorkload::continuous_exponential(self.owner_demand, self.utilization)
            .map_err(|e| PvmError::InvalidConfig {
                reason: e.to_string(),
            })?;
        let task_demand = f64::from(demand_minutes) * SECONDS_PER_MINUTE / f64::from(workstations);
        let mut sum_max = 0.0;
        let mut sum_resp = 0.0;
        for rep in 0..self.replications {
            // A fresh VM per replication keeps the LAN medium idle at the
            // start of each run; the seed varies by (W, demand, rep).
            let seed = self.seed
                ^ (u64::from(workstations) << 48)
                ^ (u64::from(demand_minutes) << 32)
                ^ u64::from(rep);
            let mut vm = VirtualMachine::new(
                workstations as usize,
                InterferenceMode::Continuous(owner.clone()),
                LanModel::ethernet_10mbps(),
                seed,
            )?;
            let metrics = local_computation::run(&mut vm, task_demand, u64::from(rep))?;
            sum_max += metrics.max_task_time;
            sum_resp += metrics.job_response_time;
        }
        Ok(ValidationPoint {
            workstations,
            demand_minutes,
            mean_max_task_time: sum_max / f64::from(self.replications),
            mean_response_time: sum_resp / f64::from(self.replications),
        })
    }

    /// Figure 11's speedup: for each demand, `mean_max(W=1) /
    /// mean_max(W)`. The input must contain the `W = 1` point for every
    /// demand present.
    pub fn speedups(points: &[ValidationPoint]) -> Result<Vec<(u32, u32, f64)>, PvmError> {
        let mut out = Vec::new();
        for p in points {
            let base = points
                .iter()
                .find(|q| q.demand_minutes == p.demand_minutes && q.workstations == 1)
                .ok_or_else(|| PvmError::InvalidConfig {
                    reason: format!("missing W=1 baseline for demand {}", p.demand_minutes),
                })?;
            out.push((
                p.workstations,
                p.demand_minutes,
                base.mean_max_task_time / p.mean_max_task_time,
            ));
        }
        Ok(out)
    }
}

/// The analytical counterpart of a validation point: the model's
/// expected **maximum task execution time** for the same parameters
/// (the dashed curves of Figure 10). Computed here so the bench harness
/// can print measured-vs-analytic side by side without importing
/// `nds-model` (which `nds-pvm` does not depend on): for the paper's
/// model, `E[max task time] = T + O·E[max of W Binomial(T,P)]`, and we
/// reuse the cluster's discrete simulator in expectation via many
/// replications would be wasteful — instead the bench crate calls
/// `nds-model` directly. This helper only returns the **single-station**
/// closed form `T/(1-U)`, which anchors the curves.
pub fn analytic_single_station_time(
    demand_minutes: u32,
    workstations: u32,
    utilization: f64,
) -> f64 {
    let t = f64::from(demand_minutes) * SECONDS_PER_MINUTE / f64::from(workstations);
    t / (1.0 - utilization)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_harness() -> ValidationHarness {
        ValidationHarness {
            utilization: 0.03,
            owner_demand: 10.0,
            replications: 3,
            seed: 7,
        }
    }

    #[test]
    fn single_point_sane() {
        let h = quick_harness();
        let p = h.run_point(4, 2).unwrap();
        // Task demand = 120/4 = 30 s; max task time >= 30 s and far below
        // the dedicated total.
        assert!(p.mean_max_task_time >= 30.0);
        assert!(p.mean_max_task_time < 120.0);
        assert!(p.mean_response_time >= p.mean_max_task_time);
    }

    #[test]
    fn grid_covers_all_points() {
        let h = quick_harness();
        let pts = h.run_grid(&[1, 2], &[1, 2]).unwrap();
        assert_eq!(pts.len(), 4);
        assert!(pts
            .iter()
            .any(|p| p.workstations == 1 && p.demand_minutes == 1));
        assert!(pts
            .iter()
            .any(|p| p.workstations == 2 && p.demand_minutes == 2));
    }

    #[test]
    fn max_task_time_decreases_with_w_fixed_size() {
        let h = ValidationHarness {
            replications: 5,
            ..quick_harness()
        };
        let p1 = h.run_point(1, 4).unwrap();
        let p8 = h.run_point(8, 4).unwrap();
        assert!(
            p8.mean_max_task_time < p1.mean_max_task_time,
            "W=8 {} should beat W=1 {}",
            p8.mean_max_task_time,
            p1.mean_max_task_time
        );
    }

    #[test]
    fn speedups_relative_to_w1() {
        let h = ValidationHarness {
            replications: 10,
            ..quick_harness()
        };
        let pts = h.run_grid(&[1, 2, 4], &[2]).unwrap();
        let sp = ValidationHarness::speedups(&pts).unwrap();
        let s1 = sp.iter().find(|(w, _, _)| *w == 1).unwrap().2;
        let s4 = sp.iter().find(|(w, _, _)| *w == 4).unwrap().2;
        assert!((s1 - 1.0).abs() < 1e-9);
        assert!(s4 > 2.0, "speedup at W=4 was {s4}");
        // Measured speedup can fluctuate slightly past perfect at 3%
        // utilization (the W=1 baseline sees its own random bursts);
        // allow a noise margin like the paper's Figure 11 curves do.
        assert!(s4 <= 4.4, "speedup implausibly superlinear: {s4}");
    }

    #[test]
    fn speedups_missing_baseline_errors() {
        let h = quick_harness();
        let pts = h.run_grid(&[2], &[1]).unwrap();
        assert!(ValidationHarness::speedups(&pts).is_err());
    }

    #[test]
    fn analytic_anchor() {
        // 16 dedicated minutes on one 3%-utilized workstation:
        // 960 / 0.97 ≈ 989.7 s — the top of Figure 10.
        let t = analytic_single_station_time(16, 1, 0.03);
        assert!((t - 989.69).abs() < 0.1, "t = {t}");
    }

    #[test]
    fn rejects_degenerate_points() {
        let h = quick_harness();
        assert!(h.run_point(0, 1).is_err());
        assert!(h.run_point(1, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let h = quick_harness();
        let a = h.run_point(3, 1).unwrap();
        let b = h.run_point(3, 1).unwrap();
        assert_eq!(a, b);
    }
}
