//! Task identities.

use std::fmt;

/// A PVM task identifier (the `tid` of the original API).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Lifecycle state of a task inside the virtual machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskState {
    /// Spawned but not yet started computing.
    Spawned,
    /// Busy computing; carries the (simulated) completion time.
    Computing {
        /// Absolute time the computation started.
        started: f64,
        /// Absolute time it will finish.
        finishes: f64,
    },
    /// Finished; carries the measured execution time.
    Done {
        /// Task execution time (finish - start), the paper's per-task metric.
        execution_time: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        assert_eq!(TaskId(4).to_string(), "t4");
    }

    #[test]
    fn state_transitions_carry_data() {
        let s = TaskState::Computing {
            started: 1.0,
            finishes: 5.0,
        };
        if let TaskState::Computing { started, finishes } = s {
            assert_eq!(finishes - started, 4.0);
        } else {
            panic!("wrong variant");
        }
        assert_ne!(
            TaskState::Spawned,
            TaskState::Done {
                execution_time: 0.0
            }
        );
    }
}
