//! Applications written against the simulated PVM API.

pub mod local_computation;
pub mod sync_rounds;
