//! # nds-pvm — a PVM-like message-passing virtual machine (simulated)
//!
//! The paper's experimental validation (§4, Figures 10–11) runs a
//! perfectly parallel "local computation" program with PVM on up to 12
//! Sun ELC SPARCstations whose owners generate ~3% background
//! utilization. We have neither 1993 SPARCstations nor their owners, so
//! this crate rebuilds the relevant stack in simulation:
//!
//! * [`message`] — typed pack/unpack message buffers (the `pvm_pk*` /
//!   `pvm_upk*` analog) and tagged messages,
//! * [`lan`] — a latency + bandwidth LAN model with serialized delivery
//!   (10 Mb/s Ethernet-class defaults),
//! * [`task`] / [`daemon`] — task identities and per-host daemons
//!   mapping tasks to workstations,
//! * [`vm`] — the virtual machine: `spawn`, `send`, `recv`, with
//!   computation delegated to [`nds_cluster`] workstations so parallel
//!   tasks experience exactly the preemptive owner interference the
//!   paper studies ("each parallel task is niced"),
//! * [`group`] — task groups and barrier semantics,
//! * [`apps::local_computation`] — the paper's benchmark program:
//!   master forks `W` tasks, each computes independently and reports its
//!   own execution time; the master reports the **maximum task execution
//!   time**, the paper's metric, which deliberately excludes
//!   packaging/spawn overheads,
//! * [`harness`] — the Figure 10/11 experiment driver (1–12
//!   workstations, demands of 1–16 dedicated minutes, 10 replications,
//!   3% owner utilization).

#![forbid(unsafe_code)]

pub mod apps;
pub mod daemon;
pub mod error;
pub mod group;
pub mod harness;
pub mod lan;
pub mod message;
pub mod task;
pub mod vm;

pub use error::PvmError;
pub use lan::LanModel;
pub use message::{Message, MessageBuffer};
pub use task::TaskId;
pub use vm::{InterferenceMode, VirtualMachine};
