//! LAN transfer-time model.
//!
//! The paper's cluster is Ethernet-era: a shared medium where message
//! transfers serialize. We model a transfer as
//! `latency + bytes / bandwidth` and let the shared medium serialize
//! concurrent transfers (a transfer cannot start before the previous one
//! finished). The paper's metric (max task execution time) excludes
//! communication by construction, but job *response* time includes
//! spawn and result-collection messaging — this model supplies those.

/// Latency + bandwidth LAN with a serialized shared medium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LanModel {
    /// Per-message fixed cost (seconds).
    latency: f64,
    /// Payload rate (bytes per second).
    bandwidth: f64,
    /// Time the shared medium becomes free.
    busy_until: f64,
}

impl LanModel {
    /// A LAN with the given per-message latency (s) and bandwidth (B/s).
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        assert!(latency >= 0.0 && latency.is_finite(), "bad latency");
        // Infinite bandwidth is allowed (instantaneous transfers).
        assert!(bandwidth > 0.0 && !bandwidth.is_nan(), "bad bandwidth");
        Self {
            latency,
            bandwidth,
            busy_until: 0.0,
        }
    }

    /// 10 Mb/s shared Ethernet with ~1 ms software latency — the class
    /// of network under the paper's 12 Sun ELCs.
    pub fn ethernet_10mbps() -> Self {
        Self::new(1e-3, 10.0e6 / 8.0)
    }

    /// An effectively free network (for isolating computation effects).
    pub fn instantaneous() -> Self {
        Self::new(0.0, f64::INFINITY)
    }

    /// Pure transfer time of a message of `bytes`, ignoring contention.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        if self.bandwidth.is_infinite() {
            self.latency
        } else {
            self.latency + bytes as f64 / self.bandwidth
        }
    }

    /// Send a message of `bytes` at `when`: returns the delivery time
    /// after queueing behind any transfer already on the medium, and
    /// marks the medium busy until then.
    pub fn send_at(&mut self, when: f64, bytes: usize) -> f64 {
        let start = when.max(self.busy_until);
        let done = start + self.transfer_time(bytes);
        self.busy_until = done;
        done
    }

    /// Reset the medium to idle (between independent experiments).
    pub fn reset(&mut self) {
        self.busy_until = 0.0;
    }

    /// When the medium next becomes free.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_formula() {
        let lan = LanModel::new(0.001, 1_000_000.0);
        assert!((lan.transfer_time(0) - 0.001).abs() < 1e-12);
        assert!((lan.transfer_time(1_000_000) - 1.001).abs() < 1e-12);
    }

    #[test]
    fn instantaneous_lan_is_free() {
        let lan = LanModel::instantaneous();
        assert_eq!(lan.transfer_time(1 << 30), 0.0);
    }

    #[test]
    fn medium_serializes_transfers() {
        let mut lan = LanModel::new(0.0, 100.0);
        // Two 100-byte messages sent at t=0: second queues behind first.
        let d1 = lan.send_at(0.0, 100);
        let d2 = lan.send_at(0.0, 100);
        assert_eq!(d1, 1.0);
        assert_eq!(d2, 2.0);
        // A later send after the medium is free starts immediately.
        let d3 = lan.send_at(5.0, 100);
        assert_eq!(d3, 6.0);
    }

    #[test]
    fn reset_clears_backlog() {
        let mut lan = LanModel::new(0.0, 100.0);
        lan.send_at(0.0, 1000);
        assert!(lan.busy_until() > 0.0);
        lan.reset();
        assert_eq!(lan.busy_until(), 0.0);
    }

    #[test]
    fn ethernet_defaults_sane() {
        let lan = LanModel::ethernet_10mbps();
        // A 1 KiB message: ~1 ms latency + ~0.82 ms wire time.
        let t = lan.transfer_time(1024);
        assert!(t > 0.0015 && t < 0.0025, "t = {t}");
    }

    #[test]
    #[should_panic(expected = "bad bandwidth")]
    fn rejects_zero_bandwidth() {
        LanModel::new(0.0, 0.0);
    }
}
