//! The virtual machine: hosts, task spawning, messaging, computation.
//!
//! A [`VirtualMachine`] is a pool of simulated workstations joined by a
//! [`LanModel`]. Tasks are spawned onto hosts, compute under the host's
//! [`InterferenceMode`], and exchange [`Message`]s whose delivery times
//! come from the LAN model. Computation is delegated to the
//! `nds-cluster` simulators, so parallel tasks experience exactly the
//! preemptive owner interference the paper studies.

use crate::daemon::Daemon;
use crate::error::PvmError;
use crate::lan::LanModel;
use crate::message::Message;
use crate::task::{TaskId, TaskState};
use nds_cluster::continuous::ContinuousWorkstation;
use nds_cluster::discrete::DiscreteTaskSim;
use nds_cluster::owner::OwnerWorkload;
use nds_cluster::task::TaskOutcome;
use nds_stats::rng::StreamFactory;
use std::collections::BTreeMap;

/// How workstation owners interfere with computation on each host.
#[derive(Debug, Clone)]
pub enum InterferenceMode {
    /// No owners: every host is dedicated (the baseline the paper's
    /// speedup metric divides by).
    Dedicated,
    /// Continuous-time owner interference (the Figure 10/11 setting:
    /// ~3% utilization from "editing files, reading mail, news").
    Continuous(OwnerWorkload),
    /// The paper's discrete-time model semantics.
    DiscretePaper {
        /// Owner request probability per task work unit.
        request_prob: f64,
        /// Deterministic owner demand.
        owner_demand: f64,
    },
}

/// A simulated PVM: daemons, LAN, mailboxes, and computation.
#[derive(Debug, Clone)]
pub struct VirtualMachine {
    lan: LanModel,
    daemons: Vec<Daemon>,
    mode: InterferenceMode,
    streams: StreamFactory,
    next_task: u32,
    // BTreeMaps, not HashMaps: task/mailbox state is sim-visible, and
    // deterministic iteration order is what keeps replays byte-stable.
    task_host: BTreeMap<TaskId, usize>,
    mailboxes: BTreeMap<TaskId, Vec<(f64, Message)>>,
    compute_calls: u64,
}

impl VirtualMachine {
    /// Assemble a VM of `hosts` workstations with the given interference
    /// mode and LAN. `seed` drives all stochastic interference.
    pub fn new(
        hosts: usize,
        mode: InterferenceMode,
        lan: LanModel,
        seed: u64,
    ) -> Result<Self, PvmError> {
        if hosts == 0 {
            return Err(PvmError::InvalidConfig {
                reason: "need at least one host".into(),
            });
        }
        let daemons = (0..hosts)
            .map(|i| Daemon::new(i, format!("elc-{i:02}")))
            .collect();
        Ok(Self {
            lan,
            daemons,
            mode,
            streams: StreamFactory::new(seed),
            next_task: 1,
            task_host: BTreeMap::new(),
            mailboxes: BTreeMap::new(),
            compute_calls: 0,
        })
    }

    /// Number of hosts in the VM.
    pub fn hosts(&self) -> usize {
        self.daemons.len()
    }

    /// The LAN model (mutable, for direct experiments).
    pub fn lan_mut(&mut self) -> &mut LanModel {
        &mut self.lan
    }

    /// Spawn a task on a specific host.
    pub fn spawn(&mut self, host: usize) -> Result<TaskId, PvmError> {
        let daemon = self
            .daemons
            .get_mut(host)
            .ok_or(PvmError::UnknownHost { index: host })?;
        let id = TaskId(self.next_task);
        self.next_task += 1;
        daemon.register(id);
        self.task_host.insert(id, host);
        self.mailboxes.insert(id, Vec::new());
        Ok(id)
    }

    /// Spawn `n` tasks round-robin across hosts (PVM `pvm_spawn(n)`).
    pub fn spawn_round_robin(&mut self, n: usize) -> Result<Vec<TaskId>, PvmError> {
        (0..n).map(|i| self.spawn(i % self.hosts())).collect()
    }

    /// Host a task lives on.
    pub fn host_of(&self, task: TaskId) -> Result<usize, PvmError> {
        self.task_host
            .get(&task)
            .copied()
            .ok_or(PvmError::UnknownTask { id: task.0 })
    }

    /// Current lifecycle state of a task.
    pub fn task_state(&self, task: TaskId) -> Result<TaskState, PvmError> {
        let host = self.host_of(task)?;
        self.daemons[host].state(task)
    }

    /// Execute `demand` units of computation for `task` starting at
    /// absolute time `start`, under the host's interference mode.
    ///
    /// `replication` decorrelates repeated experiments while keeping
    /// each `(host, replication)` pair reproducible.
    pub fn compute(
        &mut self,
        task: TaskId,
        demand: f64,
        start: f64,
        replication: u64,
    ) -> Result<TaskOutcome, PvmError> {
        if !demand.is_finite() || demand <= 0.0 {
            return Err(PvmError::InvalidConfig {
                reason: format!("compute demand {demand} must be finite and > 0"),
            });
        }
        let host = self.host_of(task)?;
        self.compute_calls += 1;
        let label_index = (host as u64) << 40 | replication << 16 | (self.compute_calls & 0xFFFF);
        let mut rng = self.streams.labeled_stream("pvm-compute", label_index);
        let outcome = match &self.mode {
            InterferenceMode::Dedicated => TaskOutcome {
                execution_time: demand,
                demand,
                interruptions: 0,
                suspended_time: 0.0,
            },
            InterferenceMode::Continuous(owner) => {
                ContinuousWorkstation::new(owner.clone()).run_task(demand, &mut rng)
            }
            InterferenceMode::DiscretePaper {
                request_prob,
                owner_demand,
            } => DiscreteTaskSim::paper(demand.round() as u64, *request_prob, *owner_demand)
                .run_task(&mut rng),
        };
        self.daemons[host].set_state(
            task,
            TaskState::Done {
                execution_time: outcome.execution_time,
            },
        )?;
        let _ = start; // start is the caller's timeline anchor; outcome is relative
        Ok(outcome)
    }

    /// Send a message at absolute time `when`; returns its delivery time
    /// (after LAN latency, wire time, and medium contention) and
    /// deposits it in the destination mailbox.
    pub fn send(&mut self, msg: Message, when: f64) -> Result<f64, PvmError> {
        if !self.task_host.contains_key(&msg.src) {
            return Err(PvmError::UnknownTask { id: msg.src.0 });
        }
        if !self.task_host.contains_key(&msg.dst) {
            return Err(PvmError::UnknownTask { id: msg.dst.0 });
        }
        let delivery = self.lan.send_at(when, msg.body.wire_size());
        self.mailboxes
            .get_mut(&msg.dst)
            .expect("mailbox exists for every task")
            .push((delivery, msg));
        Ok(delivery)
    }

    /// Receive the earliest-delivered message for `task` matching `tag`
    /// (`None` matches any). Returns `(receive_time, message)` where
    /// `receive_time = max(now, delivery)` — a blocking `pvm_recv`.
    pub fn recv(
        &mut self,
        task: TaskId,
        tag: Option<u32>,
        now: f64,
    ) -> Result<(f64, Message), PvmError> {
        let mailbox = self
            .mailboxes
            .get_mut(&task)
            .ok_or(PvmError::UnknownTask { id: task.0 })?;
        let best = mailbox
            .iter()
            .enumerate()
            .filter(|(_, (_, m))| tag.is_none_or(|t| m.tag == t))
            .min_by(|(_, (da, _)), (_, (db, _))| da.total_cmp(db))
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                let (delivery, msg) = mailbox.remove(i);
                Ok((now.max(delivery), msg))
            }
            None => Err(PvmError::NoMessage { task: task.0, tag }),
        }
    }

    /// Number of undelivered+unread messages for a task.
    pub fn pending_messages(&self, task: TaskId) -> usize {
        self.mailboxes.get(&task).map_or(0, Vec::len)
    }

    /// Retire a finished task (PVM `pvm_exit`).
    pub fn exit(&mut self, task: TaskId) -> Result<(), PvmError> {
        let host = self.host_of(task)?;
        self.daemons[host].unregister(task)?;
        self.task_host.remove(&task);
        self.mailboxes.remove(&task);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageBuffer;

    fn vm(hosts: usize) -> VirtualMachine {
        VirtualMachine::new(
            hosts,
            InterferenceMode::Dedicated,
            LanModel::instantaneous(),
            1,
        )
        .unwrap()
    }

    #[test]
    fn spawn_round_robin_distributes() {
        let mut v = vm(3);
        let ids = v.spawn_round_robin(6).unwrap();
        assert_eq!(ids.len(), 6);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(v.host_of(*id).unwrap(), i % 3);
            assert_eq!(v.task_state(*id).unwrap(), TaskState::Spawned);
        }
    }

    #[test]
    fn dedicated_compute_is_exact() {
        let mut v = vm(1);
        let t = v.spawn(0).unwrap();
        let out = v.compute(t, 100.0, 0.0, 0).unwrap();
        assert_eq!(out.execution_time, 100.0);
        assert_eq!(out.interruptions, 0);
        assert_eq!(
            v.task_state(t).unwrap(),
            TaskState::Done {
                execution_time: 100.0
            }
        );
    }

    #[test]
    fn continuous_compute_slower_than_dedicated() {
        let owner = OwnerWorkload::continuous_exponential(10.0, 0.3).unwrap();
        let mut v = VirtualMachine::new(
            1,
            InterferenceMode::Continuous(owner),
            LanModel::instantaneous(),
            5,
        )
        .unwrap();
        let t = v.spawn(0).unwrap();
        let out = v.compute(t, 500.0, 0.0, 0).unwrap();
        assert!(out.execution_time > 500.0);
        assert!(out.is_consistent());
    }

    #[test]
    fn discrete_compute_matches_model_structure() {
        let mut v = VirtualMachine::new(
            1,
            InterferenceMode::DiscretePaper {
                request_prob: 0.1,
                owner_demand: 10.0,
            },
            LanModel::instantaneous(),
            5,
        )
        .unwrap();
        let t = v.spawn(0).unwrap();
        let out = v.compute(t, 100.0, 0.0, 0).unwrap();
        let extra = out.execution_time - 100.0;
        assert!(extra >= 0.0);
        assert!((extra / 10.0 - (extra / 10.0).round()).abs() < 1e-9);
    }

    #[test]
    fn send_recv_round_trip() {
        let mut v = vm(2);
        let a = v.spawn(0).unwrap();
        let b = v.spawn(1).unwrap();
        let mut body = MessageBuffer::new();
        body.pack_f64(123.5).pack_str("result");
        let delivery = v
            .send(
                Message {
                    src: a,
                    dst: b,
                    tag: 7,
                    body,
                },
                2.0,
            )
            .unwrap();
        assert_eq!(delivery, 2.0, "instantaneous LAN");
        assert_eq!(v.pending_messages(b), 1);
        let (at, mut msg) = v.recv(b, Some(7), 1.0).unwrap();
        assert_eq!(at, 2.0, "recv blocks until delivery");
        assert_eq!(msg.body.unpack_f64().unwrap(), 123.5);
        assert_eq!(v.pending_messages(b), 0);
    }

    #[test]
    fn recv_filters_by_tag() {
        let mut v = vm(2);
        let a = v.spawn(0).unwrap();
        let b = v.spawn(1).unwrap();
        for tag in [1u32, 2] {
            v.send(
                Message {
                    src: a,
                    dst: b,
                    tag,
                    body: MessageBuffer::new(),
                },
                0.0,
            )
            .unwrap();
        }
        assert!(v.recv(b, Some(3), 0.0).is_err());
        let (_, m) = v.recv(b, Some(2), 0.0).unwrap();
        assert_eq!(m.tag, 2);
        let (_, m) = v.recv(b, None, 0.0).unwrap();
        assert_eq!(m.tag, 1);
    }

    #[test]
    fn lan_contention_delays_delivery() {
        let mut v =
            VirtualMachine::new(2, InterferenceMode::Dedicated, LanModel::new(0.0, 10.0), 1)
                .unwrap();
        let a = v.spawn(0).unwrap();
        let b = v.spawn(1).unwrap();
        let mut big = MessageBuffer::new();
        for _ in 0..10 {
            big.pack_f64(0.0); // 90 bytes => 9 s on a 10 B/s LAN
        }
        let d1 = v
            .send(
                Message {
                    src: a,
                    dst: b,
                    tag: 0,
                    body: big.clone(),
                },
                0.0,
            )
            .unwrap();
        let d2 = v
            .send(
                Message {
                    src: a,
                    dst: b,
                    tag: 0,
                    body: big,
                },
                0.0,
            )
            .unwrap();
        assert_eq!(d1, 9.0);
        assert_eq!(d2, 18.0, "second transfer queues behind the first");
    }

    #[test]
    fn exit_retires_task() {
        let mut v = vm(1);
        let t = v.spawn(0).unwrap();
        v.exit(t).unwrap();
        assert!(v.host_of(t).is_err());
        assert!(v.exit(t).is_err());
    }

    #[test]
    fn unknown_endpoints_rejected() {
        let mut v = vm(1);
        let t = v.spawn(0).unwrap();
        let ghost = TaskId(99);
        assert!(v
            .send(
                Message {
                    src: ghost,
                    dst: t,
                    tag: 0,
                    body: MessageBuffer::new()
                },
                0.0
            )
            .is_err());
        assert!(v.recv(ghost, None, 0.0).is_err());
        assert!(v.spawn(5).is_err());
        assert!(
            VirtualMachine::new(0, InterferenceMode::Dedicated, LanModel::instantaneous(), 1)
                .is_err()
        );
    }

    #[test]
    fn compute_reproducible_per_replication() {
        let owner = OwnerWorkload::continuous_exponential(10.0, 0.2).unwrap();
        let mk = || {
            VirtualMachine::new(
                1,
                InterferenceMode::Continuous(owner.clone()),
                LanModel::instantaneous(),
                9,
            )
            .unwrap()
        };
        let mut v1 = mk();
        let mut v2 = mk();
        let t1 = v1.spawn(0).unwrap();
        let t2 = v2.spawn(0).unwrap();
        let a = v1.compute(t1, 300.0, 0.0, 4).unwrap();
        let b = v2.compute(t2, 300.0, 0.0, 4).unwrap();
        assert_eq!(a, b);
        let c = v1.compute(t1, 300.0, 0.0, 5).unwrap();
        assert_ne!(a, c, "different replications must differ");
    }
}
