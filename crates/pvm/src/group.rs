//! Task groups and barrier semantics (PVM's `pvm_joingroup` /
//! `pvm_barrier`).
//!
//! The paper's job model has exactly one synchronization point — the
//! final barrier when all tasks finish. [`TaskGroup::barrier`] computes
//! that semantic: every member leaves the barrier at the max of the
//! arrival times.

use crate::error::PvmError;
use crate::task::TaskId;

/// A named group of tasks.
#[derive(Debug, Clone)]
pub struct TaskGroup {
    name: String,
    members: Vec<TaskId>,
}

impl TaskGroup {
    /// Create an empty group.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            members: Vec::new(),
        }
    }

    /// Group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Join a task to the group (idempotent). Returns its instance
    /// number, PVM-style.
    pub fn join(&mut self, task: TaskId) -> usize {
        if let Some(pos) = self.members.iter().position(|&t| t == task) {
            return pos;
        }
        self.members.push(task);
        self.members.len() - 1
    }

    /// Remove a task from the group.
    pub fn leave(&mut self, task: TaskId) -> Result<(), PvmError> {
        match self.members.iter().position(|&t| t == task) {
            Some(pos) => {
                self.members.remove(pos);
                Ok(())
            }
            None => Err(PvmError::UnknownTask { id: task.0 }),
        }
    }

    /// Members in join order.
    pub fn members(&self) -> &[TaskId] {
        &self.members
    }

    /// Group size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Barrier: given each member's arrival time (same order as
    /// [`TaskGroup::members`]), every member departs at the max arrival.
    /// Errors if the arrival count does not match the membership.
    pub fn barrier(&self, arrivals: &[f64]) -> Result<f64, PvmError> {
        if arrivals.len() != self.members.len() {
            return Err(PvmError::InvalidConfig {
                reason: format!(
                    "barrier got {} arrivals for {} members",
                    arrivals.len(),
                    self.members.len()
                ),
            });
        }
        if arrivals.is_empty() {
            return Err(PvmError::InvalidConfig {
                reason: "barrier on empty group".into(),
            });
        }
        Ok(arrivals.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_assigns_instance_numbers() {
        let mut g = TaskGroup::new("workers");
        assert_eq!(g.join(TaskId(10)), 0);
        assert_eq!(g.join(TaskId(11)), 1);
        assert_eq!(g.join(TaskId(10)), 0, "rejoin is idempotent");
        assert_eq!(g.len(), 2);
        assert_eq!(g.name(), "workers");
    }

    #[test]
    fn leave_removes() {
        let mut g = TaskGroup::new("g");
        g.join(TaskId(1));
        g.join(TaskId(2));
        g.leave(TaskId(1)).unwrap();
        assert_eq!(g.members(), &[TaskId(2)]);
        assert!(g.leave(TaskId(1)).is_err());
    }

    #[test]
    fn barrier_is_max_arrival() {
        let mut g = TaskGroup::new("g");
        for i in 0..4 {
            g.join(TaskId(i));
        }
        let depart = g.barrier(&[3.0, 9.5, 1.0, 4.0]).unwrap();
        assert_eq!(depart, 9.5);
    }

    #[test]
    fn barrier_arity_checked() {
        let mut g = TaskGroup::new("g");
        g.join(TaskId(0));
        assert!(g.barrier(&[1.0, 2.0]).is_err());
        let empty = TaskGroup::new("e");
        assert!(empty.barrier(&[]).is_err());
        assert!(empty.is_empty());
    }
}
