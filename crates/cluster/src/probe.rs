//! Utilization measurement — the stand-in for the paper's `uptime`
//! calibration.
//!
//! The paper sets its model's utilization input to 3% by averaging Unix
//! `uptime` readings over two working days with no PVM programs running.
//! [`measure_utilization`] does the equivalent for a simulated owner:
//! run the owner's think/use cycle alone for a horizon and report the
//! busy fraction.

use crate::owner::OwnerWorkload;
use nds_stats::rng::Xoshiro256StarStar;

/// A utilization measurement over an observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSample {
    /// Fraction of the window the owner kept the CPU busy.
    pub utilization: f64,
    /// Observation window length (time units).
    pub horizon: f64,
    /// Owner bursts observed.
    pub bursts: u64,
}

/// Observe an owner's cycle for `horizon` time units and report the busy
/// fraction. A burst straddling the horizon is counted only up to the
/// horizon (as a real `uptime` average would).
pub fn measure_utilization(
    owner: &OwnerWorkload,
    horizon: f64,
    rng: &mut Xoshiro256StarStar,
) -> UtilizationSample {
    assert!(horizon > 0.0 && horizon.is_finite(), "horizon must be > 0");
    let mut t = 0.0;
    let mut busy = 0.0;
    let mut bursts = 0;
    loop {
        let think = owner.sample_think(rng);
        t += think;
        if t >= horizon {
            break;
        }
        let service = owner.sample_service(rng);
        bursts += 1;
        let end = t + service;
        busy += if end > horizon { horizon - t } else { service };
        t = end;
        if t >= horizon {
            break;
        }
    }
    UtilizationSample {
        utilization: busy / horizon,
        horizon,
        bursts,
    }
}

/// Average several independent measurements (the paper averaged over two
/// working days of readings).
pub fn mean_utilization(
    owner: &OwnerWorkload,
    horizon: f64,
    replications: u32,
    rng: &mut Xoshiro256StarStar,
) -> f64 {
    assert!(replications > 0, "need at least one replication");
    (0..replications)
        .map(|_| measure_utilization(owner, horizon, rng).utilization)
        .sum::<f64>()
        / f64::from(replications)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_paper_owner_near_target() {
        let owner = OwnerWorkload::paper_from_utilization(10.0, 0.10).unwrap();
        let mut rng = Xoshiro256StarStar::new(1);
        let u = mean_utilization(&owner, 100_000.0, 5, &mut rng);
        assert!((u - 0.10).abs() < 0.01, "measured {u}");
    }

    #[test]
    fn measures_continuous_owner_near_target() {
        let owner = OwnerWorkload::continuous_exponential(10.0, 0.03).unwrap();
        let mut rng = Xoshiro256StarStar::new(2);
        let u = mean_utilization(&owner, 200_000.0, 5, &mut rng);
        assert!((u - 0.03).abs() < 0.005, "measured {u}");
    }

    #[test]
    fn sample_fields_consistent() {
        let owner = OwnerWorkload::continuous_exponential(10.0, 0.2).unwrap();
        let mut rng = Xoshiro256StarStar::new(3);
        let s = measure_utilization(&owner, 10_000.0, &mut rng);
        assert!(s.utilization >= 0.0 && s.utilization <= 1.0);
        assert_eq!(s.horizon, 10_000.0);
        assert!(s.bursts > 0);
    }

    #[test]
    fn zero_ish_utilization_owner_rarely_busy() {
        let owner = OwnerWorkload::continuous_exponential(1.0, 1e-5).unwrap();
        let mut rng = Xoshiro256StarStar::new(4);
        let s = measure_utilization(&owner, 10_000.0, &mut rng);
        assert!(s.utilization < 0.01);
    }

    #[test]
    fn straddling_burst_clamped() {
        // Long-job owner: a burst can straddle the horizon; utilization
        // must stay within [0, 1].
        let owner = OwnerWorkload::with_long_jobs(1.0, 10_000.0, 0.5, 0.5).unwrap();
        let mut rng = Xoshiro256StarStar::new(5);
        for _ in 0..20 {
            let s = measure_utilization(&owner, 100.0, &mut rng);
            assert!(s.utilization <= 1.0, "utilization {}", s.utilization);
        }
    }

    #[test]
    #[should_panic(expected = "horizon must be > 0")]
    fn rejects_bad_horizon() {
        let owner = OwnerWorkload::continuous_exponential(10.0, 0.1).unwrap();
        measure_utilization(&owner, 0.0, &mut Xoshiro256StarStar::new(1));
    }
}
