//! Whole-job runs across `W` workstations.
//!
//! The paper's job model: `W` perfectly balanced tasks, no communication,
//! one final synchronization — job time = max task time. Each
//! workstation gets an independent RNG stream derived from the master
//! seed, so growing the pool does not perturb the other stations' sample
//! paths.

use crate::continuous::ContinuousWorkstation;
use crate::discrete::DiscreteTaskSim;
use crate::owner::OwnerWorkload;
use crate::task::TaskOutcome;
use nds_stats::rng::StreamFactory;

/// Result of one parallel-job execution.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Per-task outcomes, indexed by workstation.
    pub tasks: Vec<TaskOutcome>,
}

impl JobResult {
    /// Job completion time: the paper's final-synchronization semantics,
    /// the max of the task execution times.
    pub fn job_time(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.execution_time)
            .fold(0.0, f64::max)
    }

    /// The paper's Figure 10 metric: maximum task execution time
    /// (identical to [`JobResult::job_time`] in this model, named for
    /// the experiment).
    pub fn max_task_time(&self) -> f64 {
        self.job_time()
    }

    /// Mean task execution time across workstations.
    pub fn mean_task_time(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks.iter().map(|t| t.execution_time).sum::<f64>() / self.tasks.len() as f64
    }

    /// Total owner interruptions across all tasks.
    pub fn total_interruptions(&self) -> u64 {
        self.tasks.iter().map(|t| t.interruptions).sum()
    }

    /// Number of workstations that ran a task.
    pub fn workstations(&self) -> usize {
        self.tasks.len()
    }
}

/// Runs parallel jobs on a pool of workstations, in either discrete
/// (model-exact) or continuous (generalized) mode.
#[derive(Debug, Clone)]
pub struct JobRunner {
    streams: StreamFactory,
}

impl JobRunner {
    /// Create a runner with a master seed.
    pub fn new(master_seed: u64) -> Self {
        Self {
            streams: StreamFactory::new(master_seed),
        }
    }

    /// Run one job of `w` tasks under the **discrete-time** model with
    /// per-task demand `sim.task_demand`. Workstation `i` uses the
    /// stable stream `("ws", i)` xored with `replication`.
    pub fn run_discrete_job(&self, sim: &DiscreteTaskSim, w: u32, replication: u64) -> JobResult {
        let tasks = (0..w)
            .map(|i| {
                let mut rng = self
                    .streams
                    .labeled_stream("ws-discrete", u64::from(i) << 32 | replication);
                sim.run_task(&mut rng)
            })
            .collect();
        JobResult { tasks }
    }

    /// Run one job of `w` tasks of the given demand under the
    /// **continuous-time** simulator with homogeneous owner behaviour.
    pub fn run_continuous_job(
        &self,
        owner: &OwnerWorkload,
        task_demand: f64,
        w: u32,
        replication: u64,
    ) -> JobResult {
        let ws = ContinuousWorkstation::new(owner.clone());
        let tasks = (0..w)
            .map(|i| {
                let mut rng = self
                    .streams
                    .labeled_stream("ws-continuous", u64::from(i) << 32 | replication);
                ws.run_task(task_demand, &mut rng)
            })
            .collect();
        JobResult { tasks }
    }

    /// Run a continuous-time job on a **heterogeneous** pool: one owner
    /// workload per workstation.
    pub fn run_hetero_job(
        &self,
        owners: &[OwnerWorkload],
        task_demand: f64,
        replication: u64,
    ) -> JobResult {
        let tasks = owners
            .iter()
            .enumerate()
            .map(|(i, owner)| {
                let ws = ContinuousWorkstation::new(owner.clone());
                let mut rng = self
                    .streams
                    .labeled_stream("ws-hetero", (i as u64) << 32 | replication);
                ws.run_task(task_demand, &mut rng)
            })
            .collect();
        JobResult { tasks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_time_is_max() {
        let runner = JobRunner::new(11);
        let sim = DiscreteTaskSim::paper(100, 0.05, 10.0);
        let job = runner.run_discrete_job(&sim, 8, 0);
        assert_eq!(job.workstations(), 8);
        let max = job
            .tasks
            .iter()
            .map(|t| t.execution_time)
            .fold(0.0, f64::max);
        assert_eq!(job.job_time(), max);
        assert_eq!(job.max_task_time(), max);
        assert!(job.job_time() >= job.mean_task_time());
    }

    #[test]
    fn replications_differ_stations_reproducible() {
        let runner = JobRunner::new(11);
        let sim = DiscreteTaskSim::paper(100, 0.1, 10.0);
        let a0 = runner.run_discrete_job(&sim, 4, 0);
        let a0_again = runner.run_discrete_job(&sim, 4, 0);
        let a1 = runner.run_discrete_job(&sim, 4, 1);
        assert_eq!(a0.job_time(), a0_again.job_time());
        assert_ne!(
            a0.tasks.iter().map(|t| t.interruptions).collect::<Vec<_>>(),
            a1.tasks.iter().map(|t| t.interruptions).collect::<Vec<_>>()
        );
    }

    #[test]
    fn growing_pool_preserves_existing_sample_paths() {
        // Common random numbers: workstation i's task outcome must not
        // change when more stations are added.
        let runner = JobRunner::new(5);
        let sim = DiscreteTaskSim::paper(200, 0.05, 10.0);
        let small = runner.run_discrete_job(&sim, 3, 7);
        let large = runner.run_discrete_job(&sim, 10, 7);
        for i in 0..3 {
            assert_eq!(small.tasks[i], large.tasks[i], "station {i} changed");
        }
        assert!(large.job_time() >= small.job_time());
    }

    #[test]
    fn continuous_job_runs() {
        let runner = JobRunner::new(3);
        let owner = OwnerWorkload::continuous_exponential(10.0, 0.05).unwrap();
        let job = runner.run_continuous_job(&owner, 50.0, 4, 0);
        assert_eq!(job.workstations(), 4);
        for t in &job.tasks {
            assert!(t.execution_time >= 50.0);
            assert!(t.is_consistent());
        }
    }

    #[test]
    fn hetero_job_uses_each_owner() {
        let runner = JobRunner::new(9);
        let owners = vec![
            OwnerWorkload::continuous_exponential(10.0, 0.01).unwrap(),
            OwnerWorkload::continuous_exponential(10.0, 0.4).unwrap(),
        ];
        // Average over replications: the busy station should dominate.
        let mut busy_slower = 0;
        for rep in 0..30 {
            let job = runner.run_hetero_job(&owners, 100.0, rep);
            if job.tasks[1].execution_time > job.tasks[0].execution_time {
                busy_slower += 1;
            }
        }
        assert!(busy_slower > 20, "busy station slower in {busy_slower}/30");
    }

    #[test]
    fn empty_job_result_defaults() {
        let r = JobResult { tasks: vec![] };
        assert_eq!(r.job_time(), 0.0);
        assert_eq!(r.mean_task_time(), 0.0);
        assert_eq!(r.total_interruptions(), 0);
    }
}
