//! Batch-means experiment driver — the paper's §2.2 validation rerun.
//!
//! "We duplicated the experiment found in figure 1 of this paper and the
//! simulation results were identical to the analysis thus verifying the
//! correctness of analysis code" — with "confidence intervals of 1
//! percent or less at a 90 percent confidence level ... batch means with
//! 20 batches per simulation run and a batch size of 1000 samples."
//!
//! [`JobTimeExperiment`] reruns exactly that: it simulates job
//! completion times with the discrete-time (model-exact) simulator,
//! groups them into batches, and checks the analytical `E_j` falls
//! inside the confidence interval.

use crate::discrete::DiscreteTaskSim;
use crate::error::ClusterError;
use crate::job::JobRunner;
use nds_stats::autocorr::{check_batch_independence, BatchDiagnostic};
use nds_stats::batch_means::{BatchMeans, BatchMeansReport, PAPER_BATCHES, PAPER_BATCH_SIZE};

/// A batch-means experiment measuring mean job completion time.
#[derive(Debug, Clone)]
pub struct JobTimeExperiment {
    /// The per-task simulator (defines `T`, `P`, `O`, discipline).
    pub sim: DiscreteTaskSim,
    /// Number of workstations `W`.
    pub workstations: u32,
    /// Batches to run (paper: 20).
    pub batches: usize,
    /// Job samples per batch (paper: 1000).
    pub batch_size: usize,
    /// Confidence level for the interval (paper: 0.90).
    pub confidence: f64,
    /// Master seed for the runner's independent streams.
    pub seed: u64,
}

impl JobTimeExperiment {
    /// The paper's exact configuration: 20 batches × 1000 samples, 90%.
    pub fn paper_configuration(sim: DiscreteTaskSim, workstations: u32, seed: u64) -> Self {
        Self {
            sim,
            workstations,
            batches: PAPER_BATCHES,
            batch_size: PAPER_BATCH_SIZE,
            confidence: 0.90,
            seed,
        }
    }

    /// A smaller configuration for quick runs (tests, smoke checks).
    pub fn quick(sim: DiscreteTaskSim, workstations: u32, seed: u64) -> Self {
        Self {
            sim,
            workstations,
            batches: 10,
            batch_size: 100,
            confidence: 0.90,
            seed,
        }
    }

    /// Run the experiment and return the confidence interval on the mean
    /// job completion time.
    pub fn run(&self) -> Result<BatchMeansReport, ClusterError> {
        Ok(self.run_with_diagnostic()?.0)
    }

    /// Run the experiment and also return the batch-independence
    /// diagnostic (lag-1 autocorrelation of the batch means — the Law &
    /// Kelton check that the batch size is large enough for the
    /// interval to be trustworthy). Since each job sample here is an
    /// independent replication, the diagnostic should virtually always
    /// accept; it exists to guard future steady-state experiments.
    pub fn run_with_diagnostic(&self) -> Result<(BatchMeansReport, BatchDiagnostic), ClusterError> {
        let runner = JobRunner::new(self.seed);
        let mut collector = BatchMeans::new(self.batch_size)?;
        let total = (self.batches * self.batch_size) as u64;
        for rep in 0..total {
            let job = runner.run_discrete_job(&self.sim, self.workstations, rep);
            collector.push(job.job_time());
        }
        let report = collector.report(self.confidence)?;
        let diagnostic = check_batch_independence(collector.batch_means())?;
        Ok((report, diagnostic))
    }

    /// Run the experiment and compare against an analytical prediction
    /// (the model's `E_j` for the same parameters).
    pub fn validate_against(&self, analytic: f64) -> Result<ValidationOutcome, ClusterError> {
        let report = self.run()?;
        Ok(ValidationOutcome::new(report, analytic))
    }
}

/// Outcome of comparing simulation to analysis.
#[derive(Debug, Clone, Copy)]
pub struct ValidationOutcome {
    /// The simulation's confidence interval.
    pub report: BatchMeansReport,
    /// The analytical prediction being validated.
    pub analytic: f64,
    /// Whether the prediction falls inside the interval.
    pub within_interval: bool,
    /// `|simulated - analytic| / analytic`.
    pub relative_error: f64,
}

impl ValidationOutcome {
    /// Build from a report and a prediction.
    pub fn new(report: BatchMeansReport, analytic: f64) -> Self {
        Self {
            report,
            analytic,
            within_interval: report.contains(analytic),
            relative_error: if analytic != 0.0 {
                (report.mean - analytic).abs() / analytic.abs()
            } else {
                f64::INFINITY
            },
        }
    }

    /// The paper's acceptance statement: analysis within the interval,
    /// or in any case within 1% relatively (its CI precision criterion).
    pub fn agrees(&self) -> bool {
        self.within_interval || self.relative_error <= 0.01
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_validation_fig1_point() {
        // J = 1000, W = 10 => T = 100; U = 10%, O = 10.
        let p = 0.10 / (10.0 * 0.90);
        let sim = DiscreteTaskSim::paper(100, p, 10.0);
        let exp = JobTimeExperiment::quick(sim, 10, 42);
        // Analytic E_j from the model crate's formula, computed inline:
        // use nds-model in integration tests; here just sanity-bound.
        let report = exp.run().unwrap();
        assert!(report.mean > 100.0, "E_j must exceed T");
        assert!(report.mean < 100.0 + 100.0 * 10.0, "E_j below worst case");
        assert_eq!(report.batches, 10);
    }

    #[test]
    fn validation_outcome_logic() {
        let report = BatchMeansReport {
            mean: 100.0,
            half_width: 2.0,
            confidence: 0.9,
            batches: 20,
            batch_size: 1000,
        };
        let good = ValidationOutcome::new(report, 101.0);
        assert!(good.within_interval);
        assert!(good.agrees());
        let near = ValidationOutcome::new(report, 102.5);
        assert!(!near.within_interval);
        // 2.5/102.5 = 2.4% > 1%: disagrees.
        assert!(!near.agrees());
        let close = ValidationOutcome::new(report, 100.5);
        assert!(close.agrees());
    }

    #[test]
    fn reproducible_runs() {
        let sim = DiscreteTaskSim::paper(50, 0.01, 10.0);
        let a = JobTimeExperiment::quick(sim, 4, 7).run().unwrap();
        let b = JobTimeExperiment::quick(sim, 4, 7).run().unwrap();
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.half_width, b.half_width);
    }

    #[test]
    fn different_seeds_different_estimates() {
        let sim = DiscreteTaskSim::paper(50, 0.05, 10.0);
        let a = JobTimeExperiment::quick(sim, 4, 1).run().unwrap();
        let b = JobTimeExperiment::quick(sim, 4, 2).run().unwrap();
        assert_ne!(a.mean, b.mean);
    }

    #[test]
    fn diagnostic_accepts_independent_replications() {
        let sim = DiscreteTaskSim::paper(50, 0.05, 10.0);
        let (report, diag) = JobTimeExperiment::quick(sim, 4, 5)
            .run_with_diagnostic()
            .unwrap();
        assert!(report.mean > 50.0);
        assert!(
            diag.acceptable,
            "independent replications must pass: lag1 {} vs threshold {}",
            diag.lag1, diag.threshold
        );
    }

    #[test]
    fn paper_configuration_fields() {
        let sim = DiscreteTaskSim::paper(10, 0.01, 10.0);
        let exp = JobTimeExperiment::paper_configuration(sim, 10, 0);
        assert_eq!(exp.batches, 20);
        assert_eq!(exp.batch_size, 1000);
        assert_eq!(exp.confidence, 0.90);
    }
}
