//! Exact discrete-time replica of the paper's model (§2.1).
//!
//! Time advances in integer units. While the parallel task computes, the
//! owner requests the CPU with probability `P` after each unit of task
//! work; a request suspends the task for a deterministic `O` units. With
//! the paper's progress guarantee, the owner cannot re-request until the
//! task has completed one more unit — so interruptions per task are
//! `Binomial(T, P)`, exactly the analysis. [`ProgressGuarantee::None`]
//! removes that guarantee (the paper's third "optimism bullet"): the
//! owner re-requests immediately with probability `P` after finishing,
//! compounding delays geometrically.

use crate::task::TaskOutcome;
use nds_stats::rng::Xoshiro256StarStar;

/// Whether the task is guaranteed one unit of progress between owner
/// requests (the paper's assumption) or not (the pessimistic variant the
/// paper lists among its optimistic simplifications).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressGuarantee {
    /// Paper semantics: at most one owner request per unit of task work;
    /// interruptions ~ Binomial(T, P).
    Guaranteed,
    /// No guarantee: after an owner burst completes, the owner may
    /// immediately request again (probability `P` per opportunity).
    None,
}

/// Discrete-time simulator of one parallel task on one workstation.
#[derive(Debug, Clone, Copy)]
pub struct DiscreteTaskSim {
    /// Integer task demand `T`.
    pub task_demand: u64,
    /// Owner request probability per unit of task work, `P in [0, 1)`.
    pub request_prob: f64,
    /// Owner service demand `O` (time units, deterministic).
    pub owner_demand: f64,
    /// Progress-guarantee discipline.
    pub guarantee: ProgressGuarantee,
}

impl DiscreteTaskSim {
    /// Paper-faithful simulator (progress guaranteed).
    pub fn paper(task_demand: u64, request_prob: f64, owner_demand: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&request_prob),
            "P must be in [0,1), got {request_prob}"
        );
        assert!(
            owner_demand > 0.0 && owner_demand.is_finite(),
            "O must be finite and > 0"
        );
        Self {
            task_demand,
            request_prob,
            owner_demand,
            guarantee: ProgressGuarantee::Guaranteed,
        }
    }

    /// Same parameters without the progress guarantee.
    pub fn without_guarantee(mut self) -> Self {
        self.guarantee = ProgressGuarantee::None;
        self
    }

    /// Simulate one task, returning its outcome.
    ///
    /// With [`ProgressGuarantee::Guaranteed`] the result satisfies
    /// `execution_time = T + n·O` with `n ~ Binomial(T, P)` — the
    /// paper's eq. 1 exactly.
    pub fn run_task(&self, rng: &mut Xoshiro256StarStar) -> TaskOutcome {
        let interruptions: u64 = match self.guarantee {
            ProgressGuarantee::Guaranteed => {
                // Exact Binomial(T, P) sample in O(successes): jump
                // between successes with geometric gaps instead of
                // running T Bernoulli trials.
                if self.request_prob == 0.0 || self.task_demand == 0 {
                    0
                } else {
                    let gap = nds_stats::distributions::Geometric::new(self.request_prob)
                        .expect("P validated at construction");
                    let mut pos: u64 = 0;
                    let mut n: u64 = 0;
                    loop {
                        pos = pos.saturating_add(gap.sample_int(rng));
                        if pos > self.task_demand {
                            break;
                        }
                        n += 1;
                    }
                    n
                }
            }
            ProgressGuarantee::None => {
                // The owner may issue several back-to-back bursts after
                // each unit of task progress.
                let mut n = 0;
                for _ in 0..self.task_demand {
                    while rng.bernoulli(self.request_prob) {
                        n += 1;
                    }
                }
                n
            }
        };
        let suspended = interruptions as f64 * self.owner_demand;
        TaskOutcome {
            execution_time: self.task_demand as f64 + suspended,
            demand: self.task_demand as f64,
            interruptions,
            suspended_time: suspended,
        }
    }

    /// Simulate a whole job of `w` perfectly parallel tasks (one per
    /// workstation); the job time is the max task time (the paper's
    /// final-synchronization assumption). Each workstation consumes from
    /// the same RNG stream; for independent streams use
    /// [`crate::job::JobRunner`].
    pub fn run_job(&self, w: u32, rng: &mut Xoshiro256StarStar) -> f64 {
        (0..w)
            .map(|_| self.run_task(rng).execution_time)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_stats::summary::RunningStats;

    #[test]
    fn zero_prob_means_dedicated() {
        let sim = DiscreteTaskSim::paper(100, 0.0, 10.0);
        let mut rng = Xoshiro256StarStar::new(1);
        let out = sim.run_task(&mut rng);
        assert_eq!(out.execution_time, 100.0);
        assert_eq!(out.interruptions, 0);
        assert!(out.is_consistent());
    }

    #[test]
    fn task_time_structure() {
        // execution_time - T must be a multiple of O.
        let sim = DiscreteTaskSim::paper(50, 0.2, 10.0);
        let mut rng = Xoshiro256StarStar::new(2);
        for _ in 0..100 {
            let out = sim.run_task(&mut rng);
            let extra = out.execution_time - 50.0;
            assert!(extra >= 0.0);
            let n = extra / 10.0;
            assert!((n - n.round()).abs() < 1e-12);
            assert_eq!(n as u64, out.interruptions);
            assert!(out.is_consistent());
            // Paper bound: at most T + T·O.
            assert!(out.execution_time <= 50.0 + 50.0 * 10.0);
        }
    }

    #[test]
    fn mean_interruptions_matches_binomial() {
        let sim = DiscreteTaskSim::paper(100, 0.05, 10.0);
        let mut rng = Xoshiro256StarStar::new(3);
        let mut stats = RunningStats::new();
        for _ in 0..20_000 {
            stats.push(sim.run_task(&mut rng).interruptions as f64);
        }
        // E[n] = T·P = 5, Var = T·P·(1-P) = 4.75.
        assert!((stats.mean() - 5.0).abs() < 0.1, "mean {}", stats.mean());
        assert!(
            (stats.variance() - 4.75).abs() < 0.3,
            "var {}",
            stats.variance()
        );
    }

    #[test]
    fn mean_task_time_matches_closed_form() {
        // E_t = T(1 + O·P).
        let sim = DiscreteTaskSim::paper(200, 0.01, 10.0);
        let mut rng = Xoshiro256StarStar::new(4);
        let mut stats = RunningStats::new();
        for _ in 0..20_000 {
            stats.push(sim.run_task(&mut rng).execution_time);
        }
        let expected = 200.0 * (1.0 + 10.0 * 0.01);
        assert!(
            (stats.mean() - expected).abs() < 0.5,
            "mean {} vs {expected}",
            stats.mean()
        );
    }

    #[test]
    fn job_time_is_max_of_tasks() {
        let sim = DiscreteTaskSim::paper(50, 0.1, 5.0);
        let mut rng_a = Xoshiro256StarStar::new(9);
        let mut rng_b = Xoshiro256StarStar::new(9);
        let job = sim.run_job(4, &mut rng_a);
        let tasks: Vec<f64> = (0..4)
            .map(|_| sim.run_task(&mut rng_b).execution_time)
            .collect();
        let max = tasks.iter().cloned().fold(0.0, f64::max);
        assert_eq!(job, max);
        assert!(job >= 50.0);
    }

    #[test]
    fn no_guarantee_is_slower_on_average() {
        let base = DiscreteTaskSim::paper(100, 0.1, 10.0);
        let worse = base.without_guarantee();
        let mut r1 = Xoshiro256StarStar::new(5);
        let mut r2 = Xoshiro256StarStar::new(5);
        let mut s1 = RunningStats::new();
        let mut s2 = RunningStats::new();
        for _ in 0..5_000 {
            s1.push(base.run_task(&mut r1).execution_time);
            s2.push(worse.run_task(&mut r2).execution_time);
        }
        assert!(
            s2.mean() > s1.mean(),
            "no-guarantee {} should exceed guaranteed {}",
            s2.mean(),
            s1.mean()
        );
        // Without the guarantee, expected bursts per unit = P/(1-P),
        // so E_t = T(1 + O·P/(1-P)).
        let expected = 100.0 * (1.0 + 10.0 * 0.1 / 0.9);
        assert!(
            (s2.mean() - expected).abs() < 3.0,
            "no-guarantee mean {} vs {expected}",
            s2.mean()
        );
    }

    #[test]
    fn no_guarantee_can_exceed_paper_bound() {
        // The T + T·O bound only holds WITH the guarantee; without it,
        // some sample must eventually exceed it for aggressive P.
        let sim = DiscreteTaskSim::paper(5, 0.6, 10.0).without_guarantee();
        let mut rng = Xoshiro256StarStar::new(6);
        let bound = 5.0 + 5.0 * 10.0;
        let exceeded = (0..5_000).any(|_| sim.run_task(&mut rng).execution_time > bound);
        assert!(exceeded, "expected some run beyond the guarantee bound");
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = DiscreteTaskSim::paper(100, 0.1, 10.0);
        let a = sim
            .run_task(&mut Xoshiro256StarStar::new(42))
            .execution_time;
        let b = sim
            .run_task(&mut Xoshiro256StarStar::new(42))
            .execution_time;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "P must be in [0,1)")]
    fn rejects_p_one() {
        DiscreteTaskSim::paper(10, 1.0, 10.0);
    }
}
