//! Owner workload generators.
//!
//! A workstation owner alternates *thinking* (idle, from the parallel
//! task's perspective) and *using* the machine. The paper's model makes
//! the think time geometric (parameter `P`, discrete time) and the use
//! time a deterministic `O`; the extensions here swap in higher-variance
//! service demands (exponential, hyperexponential, long-job mixtures) —
//! exactly the future work the paper motivates with Sauer & Chandy's
//! observation that real process demands "experience a much larger
//! variance".

use crate::error::ClusterError;
use nds_stats::distributions::{
    ClosedForm, Deterministic, Distribution, Exponential, Geometric, Hyperexponential, Mixture,
};
use nds_stats::rng::Xoshiro256StarStar;
use std::sync::Arc;

/// An owner's stochastic behaviour: think times and service demands.
///
/// Cheap to clone (distributions are shared). Distributions with a
/// [`ClosedForm`] recipe are cached at construction so the scheduler's
/// hot loop samples them inline — bit-identical draws, no virtual call
/// per owner event.
#[derive(Debug, Clone)]
pub struct OwnerWorkload {
    think: Arc<dyn Distribution>,
    service: Arc<dyn Distribution>,
    think_fast: Option<ClosedForm>,
    service_fast: Option<ClosedForm>,
    label: String,
}

impl OwnerWorkload {
    /// Build from explicit distributions.
    pub fn new(
        think: Arc<dyn Distribution>,
        service: Arc<dyn Distribution>,
        label: impl Into<String>,
    ) -> Self {
        let think_fast = think.closed_form();
        let service_fast = service.closed_form();
        Self {
            think,
            service,
            think_fast,
            service_fast,
            label: label.into(),
        }
    }

    /// The paper's discrete-time owner: geometric think time with
    /// per-step request probability `p`, deterministic demand `o`.
    pub fn paper(p: f64, o: f64) -> Result<Self, ClusterError> {
        let think = Geometric::new(p)?;
        let service = Deterministic::new(o)?;
        Ok(Self::new(
            Arc::new(think),
            Arc::new(service),
            format!("paper(P={p}, O={o})"),
        ))
    }

    /// The paper's owner parameterized by `(O, U)` via eq. 8.
    pub fn paper_from_utilization(o: f64, utilization: f64) -> Result<Self, ClusterError> {
        if !(0.0..1.0).contains(&utilization) || utilization <= 0.0 {
            return Err(ClusterError::InvalidConfig {
                field: "utilization",
                reason: format!("{utilization} not in (0,1)"),
            });
        }
        let p = utilization / (o * (1.0 - utilization));
        if p >= 1.0 {
            return Err(ClusterError::InvalidConfig {
                field: "utilization",
                reason: format!("implied P = {p} >= 1 for O = {o}"),
            });
        }
        Self::paper(p, o)
    }

    /// Continuous-time owner calibrated to a target utilization:
    /// exponential think time with mean `o·(1-u)/u` and exponential
    /// service with mean `o`. Long-run owner utilization is `u`.
    pub fn continuous_exponential(o: f64, utilization: f64) -> Result<Self, ClusterError> {
        if !(0.0..1.0).contains(&utilization) || utilization <= 0.0 {
            return Err(ClusterError::InvalidConfig {
                field: "utilization",
                reason: format!("{utilization} not in (0,1)"),
            });
        }
        let think_mean = o * (1.0 - utilization) / utilization;
        Ok(Self::new(
            Arc::new(Exponential::with_mean(think_mean)?),
            Arc::new(Exponential::with_mean(o)?),
            format!("exp(O={o}, U={utilization})"),
        ))
    }

    /// High-variance owner demands: hyperexponential service with the
    /// given squared coefficient of variation (`cv2 >= 1`), think time
    /// exponential, calibrated to utilization `u`.
    pub fn high_variance(o: f64, utilization: f64, cv2: f64) -> Result<Self, ClusterError> {
        if !(0.0..1.0).contains(&utilization) || utilization <= 0.0 {
            return Err(ClusterError::InvalidConfig {
                field: "utilization",
                reason: format!("{utilization} not in (0,1)"),
            });
        }
        let think_mean = o * (1.0 - utilization) / utilization;
        Ok(Self::new(
            Arc::new(Exponential::with_mean(think_mean)?),
            Arc::new(Hyperexponential::fit(o, cv2)?),
            format!("h2(O={o}, U={utilization}, cv2={cv2})"),
        ))
    }

    /// The "long-running owner jobs" extension (paper §5): a fraction
    /// `long_prob` of owner demands are `long_demand` long, the rest are
    /// short exponential bursts of mean `short_demand`. Think time is
    /// exponential, calibrated so the long-run utilization is `u`.
    pub fn with_long_jobs(
        short_demand: f64,
        long_demand: f64,
        long_prob: f64,
        utilization: f64,
    ) -> Result<Self, ClusterError> {
        if !(0.0..1.0).contains(&long_prob) {
            return Err(ClusterError::InvalidConfig {
                field: "long_prob",
                reason: format!("{long_prob} not in [0,1)"),
            });
        }
        if !(0.0..1.0).contains(&utilization) || utilization <= 0.0 {
            return Err(ClusterError::InvalidConfig {
                field: "utilization",
                reason: format!("{utilization} not in (0,1)"),
            });
        }
        let service = Mixture::new(vec![
            (
                1.0 - long_prob,
                Box::new(Exponential::with_mean(short_demand)?) as Box<dyn Distribution>,
            ),
            (long_prob, Box::new(Deterministic::new(long_demand)?)),
        ])?;
        let mean_service = service.mean();
        let think_mean = mean_service * (1.0 - utilization) / utilization;
        Ok(Self::new(
            Arc::new(Exponential::with_mean(think_mean)?),
            Arc::new(service),
            format!(
                "long-jobs(short={short_demand}, long={long_demand}, p={long_prob}, U={utilization})"
            ),
        ))
    }

    /// Sample a think time.
    #[inline]
    pub fn sample_think(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        match self.think_fast {
            Some(fast) => fast.sample(rng),
            None => self.think.sample(rng),
        }
    }

    /// Sample a service demand (strictly positive; zero-demand samples
    /// are clamped to a tiny epsilon so facilities accept them).
    #[inline]
    pub fn sample_service(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        let sample = match self.service_fast {
            Some(fast) => fast.sample(rng),
            None => self.service.sample(rng),
        };
        sample.max(1e-9)
    }

    /// Mean think time.
    pub fn mean_think(&self) -> f64 {
        self.think.mean()
    }

    /// Mean service demand (the model's `O`).
    pub fn mean_service(&self) -> f64 {
        self.service.mean()
    }

    /// Long-run owner utilization implied by the means:
    /// `E[service] / (E[service] + E[think])`.
    pub fn utilization(&self) -> f64 {
        let s = self.mean_service();
        s / (s + self.mean_think())
    }

    /// Squared coefficient of variation of the service demand.
    pub fn service_cv2(&self) -> f64 {
        self.service.cv2()
    }

    /// Diagnostic label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_owner_matches_eq8() {
        let w = OwnerWorkload::paper(1.0 / 90.0, 10.0).unwrap();
        // U = O/(O + 1/P) = 10/(10+90) = 0.1
        assert!((w.utilization() - 0.1).abs() < 1e-12);
        assert_eq!(w.mean_service(), 10.0);
        assert_eq!(w.service_cv2(), 0.0);
    }

    #[test]
    fn paper_from_utilization_round_trip() {
        for u in [0.01, 0.03, 0.05, 0.10, 0.20] {
            let w = OwnerWorkload::paper_from_utilization(10.0, u).unwrap();
            assert!((w.utilization() - u).abs() < 1e-12, "u={u}");
        }
    }

    #[test]
    fn continuous_owner_hits_utilization() {
        let w = OwnerWorkload::continuous_exponential(10.0, 0.03).unwrap();
        assert!((w.utilization() - 0.03).abs() < 1e-12);
        assert!((w.mean_service() - 10.0).abs() < 1e-12);
        assert!((w.service_cv2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn high_variance_owner() {
        let w = OwnerWorkload::high_variance(10.0, 0.1, 9.0).unwrap();
        assert!((w.utilization() - 0.1).abs() < 1e-9);
        assert!((w.service_cv2() - 9.0).abs() < 1e-6);
    }

    #[test]
    fn long_jobs_utilization_calibrated() {
        let w = OwnerWorkload::with_long_jobs(5.0, 600.0, 0.01, 0.05).unwrap();
        assert!((w.utilization() - 0.05).abs() < 1e-9);
        // Mean service = 0.99*5 + 0.01*600 = 10.95
        assert!((w.mean_service() - 10.95).abs() < 1e-9);
        assert!(w.service_cv2() > 1.0, "long jobs must add variance");
    }

    #[test]
    fn samples_positive() {
        let w = OwnerWorkload::continuous_exponential(10.0, 0.1).unwrap();
        let mut rng = Xoshiro256StarStar::new(1);
        for _ in 0..1000 {
            assert!(w.sample_think(&mut rng) > 0.0);
            assert!(w.sample_service(&mut rng) > 0.0);
        }
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(OwnerWorkload::paper_from_utilization(10.0, 0.0).is_err());
        assert!(OwnerWorkload::paper_from_utilization(10.0, 1.0).is_err());
        assert!(OwnerWorkload::paper_from_utilization(1.0, 0.9).is_err());
        assert!(OwnerWorkload::continuous_exponential(10.0, -0.1).is_err());
        assert!(OwnerWorkload::high_variance(10.0, 0.1, 0.5).is_err());
        assert!(OwnerWorkload::with_long_jobs(5.0, 600.0, 1.5, 0.05).is_err());
    }

    #[test]
    fn empirical_utilization_of_paper_owner() {
        // Simulate the owner's own busy/idle cycle and check the busy
        // fraction approaches U.
        let w = OwnerWorkload::paper_from_utilization(10.0, 0.10).unwrap();
        let mut rng = Xoshiro256StarStar::new(7);
        let mut busy = 0.0;
        let mut total = 0.0;
        for _ in 0..20_000 {
            let think = w.sample_think(&mut rng);
            let service = w.sample_service(&mut rng);
            busy += service;
            total += think + service;
        }
        let u = busy / total;
        assert!((u - 0.10).abs() < 0.01, "empirical utilization {u}");
    }
}
