//! Multiprocessor (SMP) workstations — an extension beyond the paper's
//! single-CPU model.
//!
//! With `k` CPUs per workstation, an owner burst occupies one CPU and
//! only preempts the parallel task when **every** CPU is busy. Since
//! the paper's workload has one owner and one task per workstation, a
//! second CPU absorbs essentially all interference; the module also
//! supports multiple owner streams per machine (a shared departmental
//! server), where contention reappears.

use crate::owner::OwnerWorkload;
use crate::task::TaskOutcome;
use nds_des::resource::MultiFacility;
use nds_des::{Engine, EventId, Request, RequestId, RequestOutcome, SimTime};
use nds_stats::rng::Xoshiro256StarStar;
use std::cell::RefCell;
use std::rc::Rc;

const OWNER_PRIORITY: i32 = 10;
const TASK_PRIORITY: i32 = 0;
const TASK_REQ: RequestId = 0;
const OWNER_BASE: RequestId = 1 << 32;

struct SmpState {
    facility: MultiFacility,
    owners: Vec<OwnerWorkload>,
    rng: Xoshiro256StarStar,
    task_completion: Option<EventId>,
    task_done: Option<SimTime>,
    interruptions: u64,
    next_owner_req: RequestId,
    /// Which owner stream issued each live owner request. Ordered map
    /// so any future iteration over live requests stays deterministic.
    req_owner: std::collections::BTreeMap<RequestId, usize>,
}

/// A workstation with `cpus` identical CPUs, one parallel task, and one
/// or more independent owner streams.
#[derive(Debug, Clone)]
pub struct SmpWorkstation {
    cpus: usize,
    owners: Vec<OwnerWorkload>,
}

impl SmpWorkstation {
    /// A `cpus`-CPU workstation with a single owner.
    pub fn new(cpus: usize, owner: OwnerWorkload) -> Self {
        Self::with_owners(cpus, vec![owner])
    }

    /// A `cpus`-CPU machine shared by several independent owners
    /// (each with their own think/use cycle).
    pub fn with_owners(cpus: usize, owners: Vec<OwnerWorkload>) -> Self {
        assert!(cpus >= 1, "need at least one CPU");
        assert!(!owners.is_empty(), "need at least one owner");
        Self { cpus, owners }
    }

    /// CPU count.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// Run one parallel task to completion under the machine's owner
    /// interference.
    pub fn run_task(&self, task_demand: f64, rng: &mut Xoshiro256StarStar) -> TaskOutcome {
        assert!(
            task_demand > 0.0 && task_demand.is_finite(),
            "task demand must be finite and > 0"
        );
        let mut engine = Engine::new();
        let state = Rc::new(RefCell::new(SmpState {
            facility: MultiFacility::new("smp", self.cpus),
            owners: self.owners.clone(),
            rng: Xoshiro256StarStar::new(rng.next()),
            task_completion: None,
            task_done: None,
            interruptions: 0,
            next_owner_req: OWNER_BASE,
            req_owner: std::collections::BTreeMap::new(),
        }));

        // Submit the task.
        {
            let mut guard = state.borrow_mut();
            let st = &mut *guard;
            let (outcome, _) = st
                .facility
                .submit(
                    SimTime::ZERO,
                    Request {
                        id: TASK_REQ,
                        priority: TASK_PRIORITY,
                        demand: task_demand,
                    },
                )
                .expect("fresh facility accepts the task");
            let RequestOutcome::Started { completion } = outcome else {
                unreachable!("empty facility starts immediately");
            };
            let sc = state.clone();
            let ev = engine
                .schedule(completion, move |e| smp_task_complete(e, &sc))
                .expect("schedule task completion");
            st.task_completion = Some(ev);
        }
        // One arrival process per owner.
        for owner_idx in 0..self.owners.len() {
            let think = {
                let mut guard = state.borrow_mut();
                let st = &mut *guard;
                st.owners[owner_idx].sample_think(&mut st.rng)
            };
            let sc = state.clone();
            engine
                .schedule(SimTime::new(think), move |e| {
                    smp_owner_arrival(e, &sc, owner_idx)
                })
                .expect("schedule first owner arrival");
        }
        engine.run_to_quiescence(None);

        let st = state.borrow();
        let done = st
            .task_done
            .expect("task completes once the calendar drains")
            .as_f64();
        TaskOutcome {
            execution_time: done,
            demand: task_demand,
            interruptions: st.interruptions,
            suspended_time: done - task_demand,
        }
    }
}

fn smp_owner_arrival(engine: &mut Engine, state: &Rc<RefCell<SmpState>>, owner_idx: usize) {
    let now = engine.now();
    let mut guard = state.borrow_mut();
    let st = &mut *guard;
    if st.task_done.is_some() {
        return;
    }
    let demand = st.owners[owner_idx].sample_service(&mut st.rng);
    let id = st.next_owner_req;
    st.next_owner_req += 1;
    st.req_owner.insert(id, owner_idx);
    let (outcome, preempted) = st
        .facility
        .submit(
            now,
            Request {
                id,
                priority: OWNER_PRIORITY,
                demand,
            },
        )
        .expect("owner demand positive");
    if preempted.is_some() {
        st.interruptions += 1;
        if let Some(ev) = st.task_completion.take() {
            engine.cancel(ev);
        }
    }
    match outcome {
        RequestOutcome::Started { completion } => {
            let sc = state.clone();
            drop(guard);
            engine
                .schedule(completion, move |e| smp_owner_complete(e, &sc, id))
                .expect("schedule owner completion");
        }
        RequestOutcome::Queued => {
            // All CPUs hold owners already; this burst waits its turn.
            // Its completion event is scheduled when a completion
            // handler promotes it out of the queue.
        }
    }
}

fn smp_owner_complete(engine: &mut Engine, state: &Rc<RefCell<SmpState>>, id: RequestId) {
    let now = engine.now();
    let mut guard = state.borrow_mut();
    let st = &mut *guard;
    let owner_idx = st
        .req_owner
        .remove(&id)
        .expect("every owner request is tracked");
    let promoted = st
        .facility
        .complete(now, id)
        .expect("owner burst was in service");
    if let Some((rid, completion)) = promoted {
        if rid == TASK_REQ {
            let sc = state.clone();
            let ev = engine
                .schedule(completion, move |e| smp_task_complete(e, &sc))
                .expect("schedule resumed task");
            st.task_completion = Some(ev);
        } else {
            // A queued owner burst reaches a server; schedule its
            // completion (its stream is recovered from req_owner then).
            let sc = state.clone();
            engine
                .schedule(completion, move |e| smp_owner_complete(e, &sc, rid))
                .expect("schedule promoted owner completion");
        }
    }
    // The finishing burst's owner starts thinking again.
    if st.task_done.is_none() {
        let think = st.owners[owner_idx].sample_think(&mut st.rng);
        let sc = state.clone();
        drop(guard);
        engine
            .schedule(now + SimTime::new(think), move |e| {
                smp_owner_arrival(e, &sc, owner_idx)
            })
            .expect("schedule next owner arrival");
    }
}

fn smp_task_complete(engine: &mut Engine, state: &Rc<RefCell<SmpState>>) {
    let now = engine.now();
    let mut guard = state.borrow_mut();
    let st = &mut *guard;
    st.facility
        .complete(now, TASK_REQ)
        .expect("task was in service");
    st.task_completion = None;
    st.task_done = Some(now);
    let _ = engine;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(u: f64) -> OwnerWorkload {
        OwnerWorkload::continuous_exponential(10.0, u).unwrap()
    }

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(seed)
    }

    fn mean_time(ws: &SmpWorkstation, t: f64, reps: u32, seed: u64) -> f64 {
        let mut r = rng(seed);
        (0..reps)
            .map(|_| ws.run_task(t, &mut r).execution_time)
            .sum::<f64>()
            / f64::from(reps)
    }

    #[test]
    fn single_cpu_matches_interference_rate() {
        let ws = SmpWorkstation::new(1, owner(0.2));
        let mean = mean_time(&ws, 500.0, 200, 1);
        let expected = 500.0 / 0.8;
        assert!(
            (mean - expected).abs() / expected < 0.06,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn second_cpu_absorbs_single_owner() {
        let ws = SmpWorkstation::new(2, owner(0.3));
        let mean = mean_time(&ws, 300.0, 100, 2);
        assert!(
            (mean - 300.0).abs() < 2.0,
            "dual-CPU task should run nearly dedicated, got {mean}"
        );
    }

    #[test]
    fn shared_server_brings_contention_back() {
        // 2 CPUs but 4 independent owners at 30% each: the task often
        // finds both CPUs owner-occupied.
        let busy = SmpWorkstation::with_owners(2, vec![owner(0.3); 4]);
        let mean = mean_time(&busy, 300.0, 100, 3);
        assert!(mean > 315.0, "4 owners on 2 CPUs must interfere: {mean}");
        // And 4 CPUs absorb those same owners much better.
        let roomy = SmpWorkstation::with_owners(4, vec![owner(0.3); 4]);
        let mean4 = mean_time(&roomy, 300.0, 100, 3);
        assert!(mean4 < mean, "more CPUs must help: {mean4} vs {mean}");
    }

    #[test]
    fn outcome_consistent() {
        let ws = SmpWorkstation::new(1, owner(0.2));
        let mut r = rng(4);
        for _ in 0..20 {
            let out = ws.run_task(100.0, &mut r);
            assert!(out.is_consistent());
            assert!(out.execution_time >= 100.0);
        }
    }

    #[test]
    fn reproducible() {
        let ws = SmpWorkstation::new(2, owner(0.1));
        let a = ws.run_task(200.0, &mut rng(5));
        let b = ws.run_task(200.0, &mut rng(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "need at least one CPU")]
    fn rejects_zero_cpus() {
        SmpWorkstation::new(0, owner(0.1));
    }
}
