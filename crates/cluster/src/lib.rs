//! # nds-cluster — the non-dedicated workstation cluster simulator
//!
//! This crate simulates the system the paper studies: `W` homogeneous
//! workstations, each privately owned, executing one perfectly parallel
//! job whose tasks run at low priority beneath the owner's processes.
//!
//! Two simulators are provided:
//!
//! * [`discrete`] — an **exact replica of the analytical model**
//!   (discrete time, geometric owner requests, deterministic owner
//!   demand, ≥1 unit of guaranteed task progress). This is the
//!   counterpart of the paper's CSIM program, whose sole purpose was to
//!   validate the analysis; [`experiment`] reruns that validation with
//!   the paper's exact batch-means procedure.
//! * [`continuous`] — a continuous-time generalization built on the
//!   [`nds_des`] engine and its preemptive-priority [`nds_des::Facility`]:
//!   arbitrary think-time and service-demand distributions
//!   (exponential, hyperexponential, long-job mixtures...), which the
//!   paper lists as future work. This simulator also backs the PVM
//!   validation experiments (Figures 10–11), where owner interference is
//!   continuous-time at ~3% utilization.
//!
//! Supporting modules: [`owner`] (owner workload generators), [`job`]
//! (multi-workstation job runs), [`probe`] (utilization measurement, the
//! stand-in for the paper's `uptime` calibration), [`experiment`]
//! (batch-means drivers), and [`config`] (scenario descriptions).

#![forbid(unsafe_code)]

pub mod config;
pub mod continuous;
pub mod discrete;
pub mod error;
pub mod experiment;
pub mod job;
pub mod multi;
pub mod owner;
pub mod probe;
pub mod smp;
pub mod task;

pub use config::ClusterConfig;
pub use continuous::ContinuousWorkstation;
pub use discrete::{DiscreteTaskSim, ProgressGuarantee};
pub use error::ClusterError;
pub use experiment::{JobTimeExperiment, ValidationOutcome};
pub use job::{JobResult, JobRunner};
pub use owner::OwnerWorkload;
pub use task::TaskOutcome;
