//! Scenario configuration for cluster experiments.

use crate::error::ClusterError;
use crate::owner::OwnerWorkload;

/// A complete non-dedicated-cluster scenario: pool size, per-station
/// owner behaviour, and the parallel job's demand.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    workstations: u32,
    owners: Vec<OwnerWorkload>,
    job_demand: f64,
}

impl ClusterConfig {
    /// A homogeneous pool (the paper's setting): every station has the
    /// same owner behaviour.
    pub fn homogeneous(
        workstations: u32,
        owner: OwnerWorkload,
        job_demand: f64,
    ) -> Result<Self, ClusterError> {
        if workstations == 0 {
            return Err(ClusterError::InvalidConfig {
                field: "workstations",
                reason: "must be >= 1".into(),
            });
        }
        if !job_demand.is_finite() || job_demand <= 0.0 {
            return Err(ClusterError::InvalidConfig {
                field: "job_demand",
                reason: format!("{job_demand} must be finite and > 0"),
            });
        }
        Ok(Self {
            workstations,
            owners: vec![owner; workstations as usize],
            job_demand,
        })
    }

    /// A heterogeneous pool: one owner workload per station.
    pub fn heterogeneous(
        owners: Vec<OwnerWorkload>,
        job_demand: f64,
    ) -> Result<Self, ClusterError> {
        if owners.is_empty() {
            return Err(ClusterError::InvalidConfig {
                field: "owners",
                reason: "need at least one workstation".into(),
            });
        }
        if !job_demand.is_finite() || job_demand <= 0.0 {
            return Err(ClusterError::InvalidConfig {
                field: "job_demand",
                reason: format!("{job_demand} must be finite and > 0"),
            });
        }
        Ok(Self {
            workstations: owners.len() as u32,
            owners,
            job_demand,
        })
    }

    /// Number of workstations.
    pub fn workstations(&self) -> u32 {
        self.workstations
    }

    /// Per-station owner workloads.
    pub fn owners(&self) -> &[OwnerWorkload] {
        &self.owners
    }

    /// Total parallel job demand `J`.
    pub fn job_demand(&self) -> f64 {
        self.job_demand
    }

    /// Per-task demand `T = J / W`.
    pub fn task_demand(&self) -> f64 {
        self.job_demand / f64::from(self.workstations)
    }

    /// Task ratio `T / mean owner demand`, averaged across stations.
    pub fn task_ratio(&self) -> f64 {
        let mean_o =
            self.owners.iter().map(|o| o.mean_service()).sum::<f64>() / self.owners.len() as f64;
        self.task_demand() / mean_o
    }

    /// Mean owner utilization across the pool.
    pub fn mean_utilization(&self) -> f64 {
        self.owners.iter().map(|o| o.utilization()).sum::<f64>() / self.owners.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_config() {
        let owner = OwnerWorkload::paper_from_utilization(10.0, 0.1).unwrap();
        let c = ClusterConfig::homogeneous(10, owner, 1000.0).unwrap();
        assert_eq!(c.workstations(), 10);
        assert_eq!(c.task_demand(), 100.0);
        assert!((c.task_ratio() - 10.0).abs() < 1e-12);
        assert!((c.mean_utilization() - 0.1).abs() < 1e-12);
        assert_eq!(c.owners().len(), 10);
    }

    #[test]
    fn heterogeneous_config() {
        let owners = vec![
            OwnerWorkload::continuous_exponential(10.0, 0.05).unwrap(),
            OwnerWorkload::continuous_exponential(10.0, 0.15).unwrap(),
        ];
        let c = ClusterConfig::heterogeneous(owners, 200.0).unwrap();
        assert_eq!(c.workstations(), 2);
        assert!((c.mean_utilization() - 0.10).abs() < 1e-9);
        assert_eq!(c.task_demand(), 100.0);
    }

    #[test]
    fn rejects_bad_configs() {
        let owner = OwnerWorkload::paper_from_utilization(10.0, 0.1).unwrap();
        assert!(ClusterConfig::homogeneous(0, owner.clone(), 100.0).is_err());
        assert!(ClusterConfig::homogeneous(4, owner.clone(), 0.0).is_err());
        assert!(ClusterConfig::homogeneous(4, owner, f64::NAN).is_err());
        assert!(ClusterConfig::heterogeneous(vec![], 100.0).is_err());
    }
}
