//! Multiple parallel jobs sharing the pool — the paper's "more complex
//! workloads" future work (§5).
//!
//! The paper assumes "one parallel job being executed on the system at
//! a time". Here several jobs coexist: each workstation runs one task
//! per job at the same low priority (FIFO within the class, preempted
//! by owners as always), and each job completes when its last task
//! does. The experiment quantifies how co-scheduled jobs stretch each
//! other — interference now comes from owners *and* rival tasks.

use crate::owner::OwnerWorkload;
use nds_des::{Engine, EventId, Facility, Request, RequestId, RequestOutcome, SimTime};
use nds_stats::rng::{StreamFactory, Xoshiro256StarStar};
use std::cell::RefCell;
use std::rc::Rc;

/// Priority of owner processes (preempts tasks).
const OWNER_PRIORITY: i32 = 10;
/// Priority of parallel tasks.
const TASK_PRIORITY: i32 = 0;
/// Owner request ids start here; below are task indices.
const OWNER_BASE: RequestId = 1 << 32;

/// One parallel job in a multi-job workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Per-task demand (the job is perfectly balanced, paper-style).
    pub task_demand: f64,
    /// Absolute arrival time of the job.
    pub arrival: f64,
}

/// Outcome of one job in a multi-job run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobOutcome {
    /// When the job's last task finished.
    pub completion: f64,
    /// Completion minus arrival.
    pub response_time: f64,
    /// Response time the job would have had running alone on dedicated
    /// machines (its task demand).
    pub dedicated_time: f64,
}

impl JobOutcome {
    /// Stretch relative to dedicated execution.
    pub fn slowdown(&self) -> f64 {
        self.response_time / self.dedicated_time
    }
}

struct MState {
    facility: Facility,
    owner: OwnerWorkload,
    rng: Xoshiro256StarStar,
    /// Completion event for whatever is in service.
    completion_ev: Option<EventId>,
    /// Completion time per task (index = task id).
    done: Vec<Option<f64>>,
    remaining: usize,
    next_owner_req: RequestId,
}

/// Simulate one workstation running several tasks (one per job) that
/// arrive at the given times, under owner interference. Returns the
/// absolute completion time of each task.
pub fn run_station_tasks(
    owner: &OwnerWorkload,
    jobs: &[JobSpec],
    rng: &mut Xoshiro256StarStar,
) -> Vec<f64> {
    assert!(!jobs.is_empty(), "need at least one job");
    for j in jobs {
        assert!(
            j.task_demand > 0.0 && j.task_demand.is_finite() && j.arrival >= 0.0,
            "bad job spec {j:?}"
        );
    }
    let mut engine = Engine::new();
    let state = Rc::new(RefCell::new(MState {
        facility: Facility::new("cpu"),
        owner: owner.clone(),
        rng: Xoshiro256StarStar::new(rng.next()),
        completion_ev: None,
        done: vec![None; jobs.len()],
        remaining: jobs.len(),
        next_owner_req: OWNER_BASE,
    }));

    // Task arrivals.
    for (i, job) in jobs.iter().enumerate() {
        let sc = state.clone();
        let demand = job.task_demand;
        engine
            .schedule(SimTime::new(job.arrival), move |e| {
                task_arrival(e, &sc, i as RequestId, demand)
            })
            .expect("schedule task arrival");
    }
    // First owner arrival.
    {
        let think = {
            let mut guard = state.borrow_mut();
            let st = &mut *guard;
            st.owner.sample_think(&mut st.rng)
        };
        let sc = state.clone();
        engine
            .schedule(SimTime::new(think), move |e| owner_arrival(e, &sc))
            .expect("schedule first owner arrival");
    }
    engine.run_to_quiescence(None);

    let st = state.borrow();
    st.done
        .iter()
        .map(|d| d.expect("all tasks complete when the calendar drains"))
        .collect()
}

fn task_arrival(engine: &mut Engine, state: &Rc<RefCell<MState>>, id: RequestId, demand: f64) {
    let now = engine.now();
    let mut guard = state.borrow_mut();
    let st = &mut *guard;
    let (outcome, preempted) = st
        .facility
        .submit(
            now,
            Request {
                id,
                priority: TASK_PRIORITY,
                demand,
            },
        )
        .expect("task demand is positive");
    debug_assert!(preempted.is_none(), "a task never preempts anything");
    if let RequestOutcome::Started { completion } = outcome {
        let sc = state.clone();
        let ev = engine
            .schedule(completion, move |e| service_complete(e, &sc))
            .expect("schedule task completion");
        st.completion_ev = Some(ev);
    }
}

fn owner_arrival(engine: &mut Engine, state: &Rc<RefCell<MState>>) {
    let now = engine.now();
    let mut guard = state.borrow_mut();
    let st = &mut *guard;
    if st.remaining == 0 {
        return;
    }
    let demand = st.owner.sample_service(&mut st.rng);
    let id = st.next_owner_req;
    st.next_owner_req += 1;
    let (outcome, preempted) = st
        .facility
        .submit(
            now,
            Request {
                id,
                priority: OWNER_PRIORITY,
                demand,
            },
        )
        .expect("owner demand is positive");
    let RequestOutcome::Started { completion } = outcome else {
        unreachable!("owner outranks tasks and no other owner is active");
    };
    if preempted.is_some() {
        if let Some(ev) = st.completion_ev.take() {
            engine.cancel(ev);
        }
    }
    let sc = state.clone();
    drop(guard);
    let ev = engine
        .schedule(completion, move |e| service_complete(e, &sc))
        .expect("schedule owner completion");
    state.borrow_mut().completion_ev = Some(ev);
}

fn service_complete(engine: &mut Engine, state: &Rc<RefCell<MState>>) {
    let now = engine.now();
    let mut guard = state.borrow_mut();
    let st = &mut *guard;
    st.completion_ev = None;
    let (finished, next) = st
        .facility
        .complete_current(now)
        .expect("something was in service");
    if finished < OWNER_BASE {
        // A task finished.
        st.done[finished as usize] = Some(now.as_f64());
        st.remaining -= 1;
    } else if st.remaining > 0 {
        // An owner burst finished: think, then come back.
        let think = st.owner.sample_think(&mut st.rng);
        let sc = state.clone();
        engine
            .schedule(now + SimTime::new(think), move |e| owner_arrival(e, &sc))
            .expect("schedule next owner arrival");
    }
    if let Some((_, completion)) = next {
        let sc = state.clone();
        let ev = engine
            .schedule(completion, move |e| service_complete(e, &sc))
            .expect("schedule resumed completion");
        st.completion_ev = Some(ev);
    }
}

/// A multi-job workload across a homogeneous pool.
#[derive(Debug, Clone)]
pub struct MultiJobExperiment {
    /// The co-scheduled jobs.
    pub jobs: Vec<JobSpec>,
    /// Pool size (each job runs one task per station).
    pub workstations: u32,
    /// Owner behaviour (homogeneous).
    pub owner: OwnerWorkload,
    /// Master seed.
    pub seed: u64,
}

impl MultiJobExperiment {
    /// Run once; returns one outcome per job.
    pub fn run(&self, replication: u64) -> Vec<JobOutcome> {
        assert!(self.workstations >= 1, "need at least one workstation");
        let streams = StreamFactory::new(self.seed);
        // Per-station task completion times.
        let mut completions = vec![f64::NEG_INFINITY; self.jobs.len()];
        for station in 0..self.workstations {
            let mut rng =
                streams.labeled_stream("multi-job", u64::from(station) << 32 | replication);
            let times = run_station_tasks(&self.owner, &self.jobs, &mut rng);
            for (j, &t) in times.iter().enumerate() {
                completions[j] = completions[j].max(t);
            }
        }
        self.jobs
            .iter()
            .zip(&completions)
            .map(|(spec, &completion)| JobOutcome {
                completion,
                response_time: completion - spec.arrival,
                dedicated_time: spec.task_demand,
            })
            .collect()
    }

    /// Mean outcomes over several replications (means of response times).
    pub fn mean_response_times(&self, replications: u64) -> Vec<f64> {
        assert!(replications >= 1);
        let mut acc = vec![0.0; self.jobs.len()];
        for rep in 0..replications {
            for (slot, out) in acc.iter_mut().zip(self.run(rep)) {
                *slot += out.response_time;
            }
        }
        for slot in &mut acc {
            *slot /= replications as f64;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(u: f64) -> OwnerWorkload {
        OwnerWorkload::continuous_exponential(10.0, u).unwrap()
    }

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(seed)
    }

    #[test]
    fn single_task_matches_continuous_workstation_semantics() {
        let ow = owner(1e-9);
        let jobs = [JobSpec {
            task_demand: 100.0,
            arrival: 0.0,
        }];
        let times = run_station_tasks(&ow, &jobs, &mut rng(1));
        assert!((times[0] - 100.0).abs() < 0.5, "time {}", times[0]);
    }

    #[test]
    fn two_tasks_serialize_on_one_cpu() {
        let ow = owner(1e-9);
        let jobs = [
            JobSpec {
                task_demand: 50.0,
                arrival: 0.0,
            },
            JobSpec {
                task_demand: 50.0,
                arrival: 0.0,
            },
        ];
        let times = run_station_tasks(&ow, &jobs, &mut rng(2));
        // FIFO: first finishes ~50, second ~100.
        assert!((times[0] - 50.0).abs() < 1.0, "{times:?}");
        assert!((times[1] - 100.0).abs() < 1.0, "{times:?}");
    }

    #[test]
    fn later_arrival_queues_behind() {
        let ow = owner(1e-9);
        let jobs = [
            JobSpec {
                task_demand: 100.0,
                arrival: 0.0,
            },
            JobSpec {
                task_demand: 10.0,
                arrival: 30.0,
            },
        ];
        let times = run_station_tasks(&ow, &jobs, &mut rng(3));
        assert!((times[0] - 100.0).abs() < 1.0);
        // Second task waits for the first: finishes ~110, not ~40.
        assert!((times[1] - 110.0).abs() < 1.0, "{times:?}");
    }

    #[test]
    fn owners_still_preempt_everything() {
        let ow = owner(0.3);
        let jobs = [
            JobSpec {
                task_demand: 100.0,
                arrival: 0.0,
            },
            JobSpec {
                task_demand: 100.0,
                arrival: 0.0,
            },
        ];
        let times = run_station_tasks(&ow, &jobs, &mut rng(4));
        // Both tasks stretched well beyond their serialized 200 total.
        assert!(times[1] > 220.0, "{times:?}");
    }

    #[test]
    fn experiment_jobs_slow_each_other() {
        let base = MultiJobExperiment {
            jobs: vec![JobSpec {
                task_demand: 100.0,
                arrival: 0.0,
            }],
            workstations: 8,
            owner: owner(0.05),
            seed: 42,
        };
        let solo = base.mean_response_times(10)[0];
        let shared = MultiJobExperiment {
            jobs: vec![
                JobSpec {
                    task_demand: 100.0,
                    arrival: 0.0,
                },
                JobSpec {
                    task_demand: 100.0,
                    arrival: 0.0,
                },
            ],
            ..base
        };
        let both = shared.mean_response_times(10);
        // FIFO within the task class: the first-submitted job is
        // untouched, the one queued behind it roughly doubles.
        assert!(
            (both[0] - solo).abs() < 1e-9,
            "first job {} should match solo {}",
            both[0],
            solo
        );
        assert!(
            both[1] > solo * 1.8,
            "queued job {} should roughly double solo {}",
            both[1],
            solo
        );
    }

    #[test]
    fn outcome_accounting() {
        let exp = MultiJobExperiment {
            jobs: vec![
                JobSpec {
                    task_demand: 50.0,
                    arrival: 0.0,
                },
                JobSpec {
                    task_demand: 50.0,
                    arrival: 100.0,
                },
            ],
            workstations: 4,
            owner: owner(0.05),
            seed: 7,
        };
        for out in exp.run(0) {
            assert!(out.response_time > 0.0);
            assert!(out.completion >= out.response_time);
            assert!(out.slowdown() >= 1.0);
        }
    }

    #[test]
    fn reproducible_per_replication() {
        let exp = MultiJobExperiment {
            jobs: vec![JobSpec {
                task_demand: 80.0,
                arrival: 0.0,
            }],
            workstations: 3,
            owner: owner(0.1),
            seed: 9,
        };
        assert_eq!(exp.run(1), exp.run(1));
        assert_ne!(exp.run(1), exp.run(2));
    }

    #[test]
    #[should_panic(expected = "need at least one job")]
    fn rejects_empty_jobs() {
        run_station_tasks(&owner(0.1), &[], &mut rng(1));
    }
}
