//! Continuous-time workstation simulation on the DES engine.
//!
//! One workstation is one preemptive-priority [`Facility`] (its CPU).
//! The parallel task is a low-priority request for `T` units of service;
//! the owner alternates think/use cycles drawn from an
//! [`OwnerWorkload`], each use burst preempting the task instantly —
//! the paper's interference assumption transplanted to continuous time
//! with arbitrary distributions (its stated future work).

use crate::owner::OwnerWorkload;
use crate::task::TaskOutcome;
use nds_des::{Engine, EventId, Facility, Request, RequestOutcome, SimTime};
use nds_stats::rng::Xoshiro256StarStar;
use std::cell::RefCell;
use std::rc::Rc;

/// Priority of owner processes (preempts tasks).
pub const OWNER_PRIORITY: i32 = 10;
/// Priority of parallel tasks ("niced" in the paper's PVM experiment).
pub const TASK_PRIORITY: i32 = 0;

/// The task's facility request id (owners use ids from 1 upward).
const TASK_REQ: u64 = 0;

struct WsState {
    facility: Facility,
    owner: OwnerWorkload,
    rng: Xoshiro256StarStar,
    task_completion: Option<EventId>,
    task_done: Option<SimTime>,
    interruptions: u64,
    next_owner_req: u64,
}

/// A single non-dedicated workstation executing one parallel task under
/// continuous-time owner interference.
#[derive(Debug, Clone)]
pub struct ContinuousWorkstation {
    owner: OwnerWorkload,
}

impl ContinuousWorkstation {
    /// Create a workstation with the given owner behaviour.
    pub fn new(owner: OwnerWorkload) -> Self {
        Self { owner }
    }

    /// The owner workload.
    pub fn owner(&self) -> &OwnerWorkload {
        &self.owner
    }

    /// Execute one parallel task of the given demand to completion and
    /// report its outcome. The caller's RNG seeds an internal stream, so
    /// successive calls with the same RNG state are reproducible.
    pub fn run_task(&self, task_demand: f64, rng: &mut Xoshiro256StarStar) -> TaskOutcome {
        assert!(
            task_demand > 0.0 && task_demand.is_finite(),
            "task demand must be finite and > 0"
        );
        let mut engine = Engine::new();
        let state = Rc::new(RefCell::new(WsState {
            facility: Facility::new("cpu"),
            owner: self.owner.clone(),
            rng: Xoshiro256StarStar::new(rng.next()),
            task_completion: None,
            task_done: None,
            interruptions: 0,
            next_owner_req: 1,
        }));

        // Submit the task at t = 0.
        {
            let mut st = state.borrow_mut();
            let (outcome, _) = st
                .facility
                .submit(
                    SimTime::ZERO,
                    Request {
                        id: TASK_REQ,
                        priority: TASK_PRIORITY,
                        demand: task_demand,
                    },
                )
                .expect("fresh facility accepts the task");
            let RequestOutcome::Started { completion } = outcome else {
                unreachable!("idle facility starts immediately");
            };
            let sc = state.clone();
            let ev = engine
                .schedule(completion, move |e| task_complete(e, &sc))
                .expect("schedule task completion");
            st.task_completion = Some(ev);
        }

        // First owner arrival after one think period.
        {
            let think = {
                let mut guard = state.borrow_mut();
                let st = &mut *guard;
                st.owner.sample_think(&mut st.rng)
            };
            let sc = state.clone();
            engine
                .schedule(SimTime::new(think), move |e| owner_arrival(e, &sc))
                .expect("schedule first owner arrival");
        }

        engine.run_to_quiescence(None);

        let st = state.borrow();
        let done = st
            .task_done
            .expect("task must complete once the calendar drains")
            .as_f64();
        TaskOutcome {
            execution_time: done,
            demand: task_demand,
            interruptions: st.interruptions,
            suspended_time: done - task_demand,
        }
    }
}

fn owner_arrival(engine: &mut Engine, state: &Rc<RefCell<WsState>>) {
    let now = engine.now();
    let mut guard = state.borrow_mut();
    let st = &mut *guard;
    if st.task_done.is_some() {
        // The job is over; stop generating interference so the run ends.
        return;
    }
    let demand = st.owner.sample_service(&mut st.rng);
    let req_id = st.next_owner_req;
    st.next_owner_req += 1;
    let (outcome, preempted) = st
        .facility
        .submit(
            now,
            Request {
                id: req_id,
                priority: OWNER_PRIORITY,
                demand,
            },
        )
        .expect("owner demand is positive");
    let RequestOutcome::Started { completion } = outcome else {
        unreachable!("owner always outranks the running task");
    };
    if preempted.is_some() {
        st.interruptions += 1;
        if let Some(ev) = st.task_completion.take() {
            engine.cancel(ev);
        }
    }
    let sc = state.clone();
    drop(guard);
    engine
        .schedule(completion, move |e| owner_complete(e, &sc))
        .expect("schedule owner completion");
}

fn owner_complete(engine: &mut Engine, state: &Rc<RefCell<WsState>>) {
    let now = engine.now();
    let mut guard = state.borrow_mut();
    let st = &mut *guard;
    let (_owner_id, resumed) = st
        .facility
        .complete_current(now)
        .expect("owner burst was in service");
    if let Some((id, completion)) = resumed {
        debug_assert_eq!(id, TASK_REQ, "only the task can be resumed");
        let sc = state.clone();
        let ev = engine
            .schedule(completion, move |e| task_complete(e, &sc))
            .expect("schedule resumed task completion");
        st.task_completion = Some(ev);
    }
    // Next owner cycle: think, then use again.
    if st.task_done.is_none() {
        let think = st.owner.sample_think(&mut st.rng);
        let sc = state.clone();
        drop(guard);
        engine
            .schedule(now + SimTime::new(think), move |e| owner_arrival(e, &sc))
            .expect("schedule next owner arrival");
    }
}

fn task_complete(engine: &mut Engine, state: &Rc<RefCell<WsState>>) {
    let now = engine.now();
    let mut st = state.borrow_mut();
    let (id, next) = st
        .facility
        .complete_current(now)
        .expect("task was in service");
    debug_assert_eq!(id, TASK_REQ);
    debug_assert!(next.is_none(), "no owner can be waiting behind the task");
    st.task_completion = None;
    st.task_done = Some(now);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_stats::summary::RunningStats;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(seed)
    }

    #[test]
    fn dedicated_machine_runs_at_demand() {
        // Utilization so low the task almost never sees interference.
        let ws =
            ContinuousWorkstation::new(OwnerWorkload::continuous_exponential(1.0, 1e-6).unwrap());
        let out = ws.run_task(100.0, &mut rng(1));
        assert!(
            (out.execution_time - 100.0).abs() < 1.0,
            "time {}",
            out.execution_time
        );
        assert!(out.is_consistent());
    }

    #[test]
    fn outcome_consistency_under_interference() {
        let ws =
            ContinuousWorkstation::new(OwnerWorkload::continuous_exponential(10.0, 0.2).unwrap());
        let mut r = rng(2);
        for _ in 0..50 {
            let out = ws.run_task(50.0, &mut r);
            assert!(out.is_consistent());
            assert!(out.execution_time >= 50.0);
            assert_eq!(out.demand, 50.0);
        }
    }

    #[test]
    fn mean_slowdown_matches_utilization() {
        // Under preempt-resume with owner utilization U, the task sees
        // the CPU at rate (1-U) in the long run: E[time] ≈ T/(1-U).
        let u = 0.2;
        let ws = ContinuousWorkstation::new(OwnerWorkload::continuous_exponential(5.0, u).unwrap());
        let mut r = rng(3);
        let mut stats = RunningStats::new();
        for _ in 0..300 {
            stats.push(ws.run_task(500.0, &mut r).execution_time);
        }
        let expected = 500.0 / (1.0 - u);
        let rel = (stats.mean() - expected).abs() / expected;
        assert!(
            rel < 0.05,
            "mean {} vs expected {expected} (rel err {rel})",
            stats.mean()
        );
    }

    #[test]
    fn higher_utilization_slows_tasks() {
        let mut means = Vec::new();
        for u in [0.01, 0.1, 0.3] {
            let ws =
                ContinuousWorkstation::new(OwnerWorkload::continuous_exponential(10.0, u).unwrap());
            let mut r = rng(4);
            let mut stats = RunningStats::new();
            for _ in 0..200 {
                stats.push(ws.run_task(200.0, &mut r).execution_time);
            }
            means.push(stats.mean());
        }
        assert!(means[0] < means[1] && means[1] < means[2], "{means:?}");
    }

    #[test]
    fn interruptions_counted() {
        let ws =
            ContinuousWorkstation::new(OwnerWorkload::continuous_exponential(5.0, 0.3).unwrap());
        let mut r = rng(5);
        let out = ws.run_task(1000.0, &mut r);
        assert!(out.interruptions > 0, "high utilization must interrupt");
        assert!(out.suspended_time > 0.0);
    }

    #[test]
    fn reproducible_from_seed() {
        let ws =
            ContinuousWorkstation::new(OwnerWorkload::continuous_exponential(10.0, 0.1).unwrap());
        let a = ws.run_task(100.0, &mut rng(7));
        let b = ws.run_task(100.0, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn long_job_owner_stalls_task() {
        // A long-running owner job (paper §5's open problem) can pin the
        // task for its full duration.
        let ws = ContinuousWorkstation::new(
            OwnerWorkload::with_long_jobs(2.0, 500.0, 0.05, 0.10).unwrap(),
        );
        let mut r = rng(8);
        let mut worst: f64 = 0.0;
        for _ in 0..100 {
            let out = ws.run_task(50.0, &mut r);
            worst = worst.max(out.execution_time);
        }
        assert!(
            worst > 300.0,
            "expected some run stalled by a long owner job, worst {worst}"
        );
    }

    #[test]
    #[should_panic(expected = "task demand must be finite and > 0")]
    fn rejects_zero_demand() {
        let ws =
            ContinuousWorkstation::new(OwnerWorkload::continuous_exponential(10.0, 0.1).unwrap());
        ws.run_task(0.0, &mut rng(1));
    }
}
