//! Task-level result types shared by the discrete and continuous
//! simulators.

/// What happened to one parallel task during its tenure on a
/// workstation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskOutcome {
    /// Wall-clock execution time: from the moment the task started
    /// computing to the moment it finished its demand (the quantity the
    /// paper's PVM experiment records per task).
    pub execution_time: f64,
    /// Pure computation demand the task carried.
    pub demand: f64,
    /// Number of owner bursts that interrupted the task.
    pub interruptions: u64,
    /// Total time spent suspended beneath owner processes.
    pub suspended_time: f64,
}

impl TaskOutcome {
    /// Interference overhead relative to the dedicated execution time:
    /// `execution_time / demand - 1`.
    pub fn overhead(&self) -> f64 {
        if self.demand == 0.0 {
            0.0
        } else {
            self.execution_time / self.demand - 1.0
        }
    }

    /// Consistency check: execution time must equal demand plus
    /// suspension (there is no other source of delay in this model).
    pub fn is_consistent(&self) -> bool {
        (self.execution_time - self.demand - self.suspended_time).abs()
            <= 1e-9 * self.execution_time.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_computation() {
        let t = TaskOutcome {
            execution_time: 120.0,
            demand: 100.0,
            interruptions: 2,
            suspended_time: 20.0,
        };
        assert!((t.overhead() - 0.2).abs() < 1e-12);
        assert!(t.is_consistent());
    }

    #[test]
    fn zero_demand_task() {
        let t = TaskOutcome {
            execution_time: 0.0,
            demand: 0.0,
            interruptions: 0,
            suspended_time: 0.0,
        };
        assert_eq!(t.overhead(), 0.0);
        assert!(t.is_consistent());
    }

    #[test]
    fn inconsistent_detected() {
        let t = TaskOutcome {
            execution_time: 130.0,
            demand: 100.0,
            interruptions: 2,
            suspended_time: 20.0,
        };
        assert!(!t.is_consistent());
    }
}
