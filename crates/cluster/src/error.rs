//! Error type for the cluster simulator.

use std::fmt;

/// Errors from cluster configuration or simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A configuration value was out of range.
    InvalidConfig {
        /// Field name.
        field: &'static str,
        /// Explanation.
        reason: String,
    },
    /// An underlying statistics error.
    Stats(nds_stats::StatsError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidConfig { field, reason } => {
                write!(f, "invalid cluster config: {field}: {reason}")
            }
            ClusterError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nds_stats::StatsError> for ClusterError {
    fn from(e: nds_stats::StatsError) -> Self {
        ClusterError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ClusterError::InvalidConfig {
            field: "workstations",
            reason: "must be >= 1".into(),
        };
        assert!(e.to_string().contains("workstations"));
        let s: ClusterError = nds_stats::StatsError::InsufficientData { needed: 2, got: 1 }.into();
        assert!(s.to_string().contains("statistics error"));
        use std::error::Error;
        assert!(s.source().is_some());
    }
}
