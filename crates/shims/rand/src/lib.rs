//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this in-tree shim
//! provides exactly the API surface the workspace consumes: the
//! [`RngCore`] trait (implemented by `nds-stats`' own generators) and
//! the [`Error`] type its `try_fill_bytes` signature mentions. The trait
//! signatures match rand 0.8 so swapping in the real crate is a
//! one-line manifest change.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type matching `rand::Error`'s role in `try_fill_bytes`.
///
/// The deterministic generators in this workspace are infallible, so
/// values of this type are never constructed in practice.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Create an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generation trait (rand 0.8 signature set).
pub trait RngCore {
    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; infallible generators simply delegate.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn default_try_fill_bytes_delegates() {
        let mut c = Counter(0);
        let mut buf = [0u8; 4];
        c.try_fill_bytes(&mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn trait_object_through_mut_ref() {
        let mut c = Counter(10);
        let r: &mut dyn RngCore = &mut c;
        assert_eq!(r.next_u64(), 11);
    }
}
