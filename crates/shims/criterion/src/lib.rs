//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access. This shim keeps the
//! workspace's `benches/` compiling and *running* (each benchmark body
//! executes a few timed iterations and prints a one-line summary), so
//! `cargo bench` still exercises every benchmarked code path. Swap the
//! manifest entry for the real crate to get statistical rigor back.

#![forbid(unsafe_code)]
// A benchmark harness exists to read the wall clock.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark (the real criterion decides
/// adaptively; the shim keeps it small and fixed).
const ITERS: u32 = 10;

/// Opaque-value hint, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement context handed to benchmark bodies.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Time `f` over a fixed number of iterations.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = ITERS;
    }
}

/// Identifies a parameterized benchmark, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(&mut self) {}

    /// Accepted for API compatibility; the shim ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.total / b.iters
        } else {
            Duration::ZERO
        };
        println!(
            "bench {label:<50} {per_iter:>12.2?}/iter ({} iters)",
            b.iters
        );
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) -> &mut Self {
        self.run_one(label, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }
}

/// Mirrors `criterion_group!`: defines a function running each listed
/// benchmark with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c = $crate::Criterion::default();
                $target(&mut c);
            )+
        }
    };
}

/// Mirrors `criterion_main!`: a `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_body() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, ITERS);
    }

    #[test]
    fn group_labels_compose() {
        let id = BenchmarkId::new("f", 42);
        assert_eq!(id.to_string(), "f/42");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
