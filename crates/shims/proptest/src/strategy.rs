//! Value-generation strategies: ranges, tuples, and the `prop_filter` /
//! `prop_map` combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// `generate` returns `None` when a sample is rejected (e.g. by
/// [`Strategy::prop_filter`]); the runner draws again without counting
/// the case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value, or `None` if this sample was rejected.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Keep only samples satisfying `pred`.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Transform generated values with `f`.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        let v = self.inner.generate(rng)?;
        (self.pred)(&v).then_some(v)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate(rng).map(&self.f)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        debug_assert!(self.start < self.end, "empty f64 range");
        Some(self.start + rng.next_f64() * (self.end - self.start))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    debug_assert!(self.start < self.end, "empty integer range");
                    let span = (self.end as u64) - (self.start as u64);
                    Some(self.start + rng.next_bounded(span) as $t)
                }
            }
        )+
    };
}

impl_int_range_strategy!(u8, u16, u32, u64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        )+
    };
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_range_in_bounds() {
        let mut rng = TestRng::for_test("f64");
        let s = 2.0f64..5.0;
        for _ in 0..1000 {
            let v = s.generate(&mut rng).unwrap();
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_and_bound() {
        let mut rng = TestRng::for_test("ints");
        let s = 3u32..7;
        let mut seen = [false; 7];
        for _ in 0..200 {
            let v = s.generate(&mut rng).unwrap();
            assert!((3..7).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen[3..7].iter().all(|&b| b));
    }

    #[test]
    fn full_u64_range_works() {
        let mut rng = TestRng::for_test("full");
        let s = 0u64..u64::MAX;
        for _ in 0..100 {
            assert!(s.generate(&mut rng).unwrap() < u64::MAX);
        }
    }

    #[test]
    fn tuple_combines_components() {
        let mut rng = TestRng::for_test("tuple");
        let s = (0u64..10, 0.0f64..1.0);
        let (n, x) = s.generate(&mut rng).unwrap();
        assert!(n < 10 && (0.0..1.0).contains(&x));
    }

    #[test]
    fn filter_rejects() {
        let mut rng = TestRng::for_test("filter");
        let s = (0u64..10).prop_filter("never", |_| false);
        assert!(s.generate(&mut rng).is_none());
    }
}
