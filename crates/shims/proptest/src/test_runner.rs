//! Test-runner support types: configuration, case errors, and the
//! deterministic generation RNG.

use std::fmt;

/// Per-test configuration (only the `cases` knob is supported).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted samples per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(256)
    }
}

/// Why a property-test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` / `prop_filter`.
    Reject(String),
    /// The case genuinely failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }

    /// Whether this is a rejection (discard) rather than a failure.
    pub fn is_rejection(&self) -> bool {
        matches!(self, Self::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Reject(r) => write!(f, "rejected: {r}"),
            Self::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// SplitMix64-based generation RNG, seeded from the test's name so every
/// run of a given property draws the same sample sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 uniformly distributed bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift (Lemire, without the rejection refinement —
        // bias is negligible for test-input generation).
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}
