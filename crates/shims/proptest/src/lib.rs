//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim
//! implements the subset the workspace's property tests use: range and
//! tuple strategies, `prop_filter` / `prop_map` combinators, and the
//! `proptest!` / `prop_assert!` / `prop_assume!` macros. Unlike the
//! real crate there is no shrinking — a failing case reports its inputs
//! but is not minimized. Generation is deterministic per test name, so
//! failures reproduce exactly.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (the real crate's `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.next_bounded(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob import the real crate recommends.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Fails the current case (early-returns an error from the case body).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Discards the current case without counting it against the case
/// budget (used for sparse preconditions).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                while accepted < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts < u64::from(cfg.cases) * 1000 + 10_000,
                        "proptest {}: too many rejected samples ({attempts} attempts \
                         for {} accepted cases)",
                        stringify!($name),
                        accepted,
                    );
                    $(
                        let $arg = match $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut rng,
                        ) {
                            ::std::option::Option::Some(v) => v,
                            ::std::option::Option::None => continue,
                        };
                    )+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match result {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(e) if e.is_rejection() => {}
                        ::std::result::Result::Err(e) => {
                            panic!(
                                "proptest {} failed after {} cases: {}\ninputs: {}",
                                stringify!($name),
                                accepted,
                                e,
                                concat!($(stringify!($arg), " "),+),
                            );
                        }
                    }
                }
            }
        )*
    };
    // Default configuration (256 cases).
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::with_cases(256))]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.0f64..2.0, n in 3u64..9, k in 1u32..4) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!((1..4).contains(&k));
        }

        #[test]
        fn filter_and_map_compose(v in (0u64..100).prop_filter("even", |n| n % 2 == 0)
                                       .prop_map(|n| n + 1)) {
            prop_assert!(v % 2 == 1, "v = {v}");
        }

        #[test]
        fn assume_discards(n in 0u64..10) {
            prop_assume!(n > 4);
            prop_assert!(n >= 5);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let mut c = TestRng::for_test("other");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(n in 0u64..10) {
                prop_assert!(n > 100, "n = {n}");
            }
        }
        always_fails();
    }
}
