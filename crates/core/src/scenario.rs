//! The paper's named experiments, parameterized exactly once.
//!
//! Benches, examples, tests, and EXPERIMENTS.md all refer to these
//! definitions, so "Figure 7" means the same parameters everywhere.

/// Default owner demand used throughout the paper's analysis section.
pub const OWNER_DEMAND: f64 = 10.0;
/// The utilizations swept in Figures 1–7 and 9.
pub const UTILIZATIONS: [f64; 4] = [0.01, 0.05, 0.10, 0.20];
/// The paper's feasibility bar: 80% of the possible speedup.
pub const TARGET_WEIGHTED_EFFICIENCY: f64 = 0.80;

/// A named experiment from the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum Scenario {
    /// Figures 1–4: fixed-size job, `J = 1000`, `W` swept 1..=100.
    FixedSize1K,
    /// Figures 5–6: fixed-size job, `J = 10_000`.
    FixedSize10K,
    /// Figure 7: task-ratio sweep at `W = 60`.
    TaskRatioAt60,
    /// Figure 8: task-ratio sweep at `U = 10%` over several pool sizes.
    TaskRatioBySize,
    /// Figure 9: memory-bounded scaleup, `T₀ = 100`.
    Scaled,
    /// Figures 10–11: PVM validation at 3% utilization, 1–12 stations.
    PvmValidation,
    /// Extension (§5 future work): a Condor-style cycle-stealing pool
    /// scheduler — eviction policies swept against owner utilizations
    /// on a 16-station pool (see the `nds-sched` crate and the
    /// `ext_sched_policies` binary).
    SchedulerPool,
}

impl Scenario {
    /// Workstation counts swept by this scenario.
    pub fn workstations(&self) -> Vec<u32> {
        match self {
            Scenario::FixedSize1K | Scenario::FixedSize10K | Scenario::Scaled => {
                let mut v = vec![1u32];
                v.extend((5..=100).step_by(5));
                v
            }
            Scenario::TaskRatioAt60 => vec![60],
            Scenario::TaskRatioBySize => vec![2, 4, 8, 20, 60, 100],
            Scenario::PvmValidation => (1..=12).collect(),
            Scenario::SchedulerPool => vec![16],
        }
    }

    /// Owner utilizations swept by this scenario.
    pub fn utilizations(&self) -> Vec<f64> {
        match self {
            Scenario::TaskRatioBySize => vec![0.10],
            Scenario::PvmValidation => vec![0.03],
            Scenario::SchedulerPool => vec![0.05, 0.10, 0.20],
            _ => UTILIZATIONS.to_vec(),
        }
    }

    /// Total job demand, if the scenario fixes one.
    pub fn job_demand(&self) -> Option<f64> {
        match self {
            Scenario::FixedSize1K => Some(1_000.0),
            Scenario::FixedSize10K => Some(10_000.0),
            _ => None,
        }
    }

    /// Task ratios swept (Figures 7–8).
    pub fn task_ratios(&self) -> Vec<f64> {
        match self {
            Scenario::TaskRatioAt60 | Scenario::TaskRatioBySize => {
                (1..=60).map(f64::from).collect()
            }
            _ => vec![],
        }
    }

    /// Per-node demand for scaled problems (Figure 9).
    pub fn per_node_demand(&self) -> Option<f64> {
        match self {
            Scenario::Scaled => Some(100.0),
            _ => None,
        }
    }

    /// Problem demands in dedicated minutes (Figures 10–11).
    pub fn demand_minutes(&self) -> Vec<u32> {
        match self {
            Scenario::PvmValidation => vec![1, 2, 4, 8, 16],
            _ => vec![],
        }
    }

    /// Human-readable figure label.
    pub fn figure_label(&self) -> &'static str {
        match self {
            Scenario::FixedSize1K => "Figures 1-4 (J = 1000)",
            Scenario::FixedSize10K => "Figures 5-6 (J = 10,000)",
            Scenario::TaskRatioAt60 => "Figure 7 (W = 60)",
            Scenario::TaskRatioBySize => "Figure 8 (U = 10%)",
            Scenario::Scaled => "Figure 9 (T0 = 100)",
            Scenario::PvmValidation => "Figures 10-11 (PVM, U = 3%)",
            Scenario::SchedulerPool => "Extension (scheduler pool, W = 16)",
        }
    }

    /// Per-task demand for the scheduler workload, if the scenario
    /// defines one.
    pub fn sched_task_demand(&self) -> Option<f64> {
        match self {
            Scenario::SchedulerPool => Some(120.0),
            _ => None,
        }
    }

    /// Multi-job workload shape `(jobs, tasks_per_job, inter_arrival)`
    /// for scheduler scenarios.
    pub fn sched_job_mix(&self) -> Option<(u32, u32, f64)> {
        match self {
            Scenario::SchedulerPool => Some((4, 16, 50.0)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_size_sweeps_reach_100() {
        let w = Scenario::FixedSize1K.workstations();
        assert_eq!(*w.first().unwrap(), 1);
        assert_eq!(*w.last().unwrap(), 100);
        assert_eq!(Scenario::FixedSize1K.job_demand(), Some(1000.0));
        assert_eq!(Scenario::FixedSize10K.job_demand(), Some(10_000.0));
    }

    #[test]
    fn task_ratio_scenarios() {
        assert_eq!(Scenario::TaskRatioAt60.workstations(), vec![60]);
        assert_eq!(Scenario::TaskRatioAt60.task_ratios().len(), 60);
        assert_eq!(
            Scenario::TaskRatioBySize.workstations(),
            vec![2, 4, 8, 20, 60, 100]
        );
        assert_eq!(Scenario::TaskRatioBySize.utilizations(), vec![0.10]);
    }

    #[test]
    fn pvm_scenario_matches_paper() {
        let s = Scenario::PvmValidation;
        assert_eq!(s.workstations(), (1..=12).collect::<Vec<_>>());
        assert_eq!(s.demand_minutes(), vec![1, 2, 4, 8, 16]);
        assert_eq!(s.utilizations(), vec![0.03]);
    }

    #[test]
    fn scaled_scenario() {
        assert_eq!(Scenario::Scaled.per_node_demand(), Some(100.0));
        assert!(Scenario::Scaled.job_demand().is_none());
    }

    #[test]
    fn scheduler_scenario_parameters() {
        let s = Scenario::SchedulerPool;
        assert_eq!(s.workstations(), vec![16]);
        assert_eq!(s.utilizations(), vec![0.05, 0.10, 0.20]);
        assert_eq!(s.sched_task_demand(), Some(120.0));
        assert_eq!(s.sched_job_mix(), Some((4, 16, 50.0)));
        assert!(s.job_demand().is_none());
        assert!(Scenario::FixedSize1K.sched_task_demand().is_none());
        assert!(Scenario::FixedSize1K.sched_job_mix().is_none());
    }

    #[test]
    fn labels_unique() {
        let all = [
            Scenario::FixedSize1K,
            Scenario::FixedSize10K,
            Scenario::TaskRatioAt60,
            Scenario::TaskRatioBySize,
            Scenario::Scaled,
            Scenario::PvmValidation,
            Scenario::SchedulerPool,
        ];
        let labels: std::collections::HashSet<_> = all.iter().map(|s| s.figure_label()).collect();
        assert_eq!(labels.len(), all.len());
    }
}
